"""Shared lightweight type aliases and small value objects.

The library models entities in a heterogeneous network with plain hashable
identifiers.  Using aliases (instead of bare ``str``/``int`` everywhere)
documents intent at call sites without imposing a heavyweight class
hierarchy on hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Tuple

#: Identifier of a node inside one heterogeneous network.
NodeId = Hashable

#: Identifier of an attribute *value* (e.g. one location cell, one time bin).
AttributeValue = Hashable

#: An anchor link candidate: (user id in network 1, user id in network 2).
LinkPair = Tuple[NodeId, NodeId]


@dataclass(frozen=True, slots=True)
class Labeled:
    """An anchor-link candidate together with its binary label.

    Attributes
    ----------
    pair:
        The ``(user_in_g1, user_in_g2)`` candidate.
    label:
        ``1`` if the two accounts belong to the same natural person,
        ``0`` otherwise.  The paper uses the label set ``{0, +1}``.
    """

    pair: LinkPair
    label: int

    def __post_init__(self) -> None:
        if self.label not in (0, 1):
            raise ValueError(f"label must be 0 or 1, got {self.label!r}")
