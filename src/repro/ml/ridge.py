"""Closed-form ridge regression (internal iteration step 1-1).

The paper fixes labels ``y`` and solves

    min_w  (c/2) ||Xw - y||² + (1/2) ||w||²

whose optimum is ``w = c (I + c XᵀX)⁻¹ Xᵀ y``.  Because the alternating
optimization re-solves this with a new ``y`` every internal iteration but
the *same* ``X``, :class:`RidgeSolver` prefactorizes
``H = c (I + c XᵀX)⁻¹ Xᵀ`` once (via a Cholesky factorization, not an
explicit inverse) and each subsequent solve is a cheap matrix-vector
product — exactly the constant-matrix trick the paper describes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import linalg

from repro.exceptions import ModelError


class GramRidgeSolver:
    """Ridge solve from a precomputed Gram matrix ``XᵀΩX``.

    The streamed fit path never materializes ``X``; it accumulates the
    d x d Gram matrix block by block and hands it here.  The solver
    factorizes ``I + c · gram`` once and then maps any right-hand side
    ``XᵀΩy`` (also block-accumulated) to
    ``w = c (I + c XᵀΩX)⁻¹ XᵀΩy``.

    Parameters
    ----------
    gram:
        The (weighted) Gram matrix, shape ``(d, d)``.
    c:
        Loss weight (the paper's ``c``).
    """

    def __init__(self, gram: np.ndarray, c: float = 1.0) -> None:
        gram = np.asarray(gram, dtype=np.float64)
        if gram.ndim != 2 or gram.shape[0] != gram.shape[1]:
            raise ModelError(f"gram matrix must be square, got {gram.shape}")
        if c <= 0:
            raise ModelError(f"loss weight c must be > 0, got {c}")
        self.c = float(c)
        self.n_features = gram.shape[0]
        system = np.eye(self.n_features) + self.c * gram
        try:
            self._cho = linalg.cho_factor(system, lower=True)
        except linalg.LinAlgError as error:  # pragma: no cover - defensive
            raise ModelError(f"ridge system is singular: {error}") from error

    def solve_rhs(self, xty: np.ndarray) -> np.ndarray:
        """Return ``w`` for a right-hand side ``XᵀΩy``."""
        xty = np.asarray(xty, dtype=np.float64).ravel()
        if xty.shape[0] != self.n_features:
            raise ModelError(
                f"right-hand side length {xty.shape[0]} does not match "
                f"{self.n_features} features"
            )
        return linalg.cho_solve(self._cho, self.c * xty)


class RidgeSolver:
    """Reusable ridge solver for a fixed design matrix.

    Parameters
    ----------
    X:
        Design matrix of shape ``(n_samples, n_features)``.
    c:
        Loss weight (the paper's ``c``; equivalently ``1/gamma`` for the
        L2 strength ``gamma`` used in the joint objective).
    sample_weight:
        Optional per-sample weights Ω; the solve becomes
        ``w = c (I + c XᵀΩX)⁻¹ XᵀΩ y``.  Used by the PU models to
        up-weight the scarce trusted positives.
    """

    def __init__(
        self,
        X: np.ndarray,
        c: float = 1.0,
        sample_weight: Optional[np.ndarray] = None,
    ) -> None:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError("X must be a 2-D array")
        if c <= 0:
            raise ModelError(f"loss weight c must be > 0, got {c}")
        self.X = X
        self.c = float(c)
        if sample_weight is None:
            self._weights = None
            self._weighted_Xt = X.T
        else:
            weights = np.asarray(sample_weight, dtype=np.float64).ravel()
            if weights.shape[0] != X.shape[0]:
                raise ModelError(
                    f"{weights.shape[0]} weights for {X.shape[0]} samples"
                )
            if np.any(weights < 0):
                raise ModelError("sample weights must be >= 0")
            self._weights = weights
            self._weighted_Xt = X.T * weights
        self._gram_solver = GramRidgeSolver(self._weighted_Xt @ X, c=self.c)

    def solve(self, y: np.ndarray) -> np.ndarray:
        """Return ``w = c (I + c XᵀΩX)⁻¹ XᵀΩ y`` for the given labels."""
        y = np.asarray(y, dtype=np.float64).ravel()
        if y.shape[0] != self.X.shape[0]:
            raise ModelError(
                f"label vector length {y.shape[0]} does not match "
                f"{self.X.shape[0]} samples"
            )
        return self._gram_solver.solve_rhs(self._weighted_Xt @ y)

    def predict(self, w: np.ndarray, X: np.ndarray = None) -> np.ndarray:
        """Raw scores ``ŷ = Xw`` (training X by default)."""
        design = self.X if X is None else np.asarray(X, dtype=np.float64)
        w = np.asarray(w, dtype=np.float64).ravel()
        if design.shape[1] != w.shape[0]:
            raise ModelError(
                f"weight length {w.shape[0]} does not match "
                f"{design.shape[1]} features"
            )
        return design @ w


def ridge_fit(X: np.ndarray, y: np.ndarray, c: float = 1.0) -> np.ndarray:
    """One-shot ridge fit (see :class:`RidgeSolver` for the reusable form)."""
    return RidgeSolver(X, c=c).solve(y)
