"""From-scratch machine learning primitives.

Closed-form ridge regression (the paper's internal step 1-1), linear
SVMs for the SVM-MP / SVM-MPMD baselines, feature scaling and the four
evaluation metrics.
"""

from repro.ml.kernels import LinearMap, PolynomialMap, RandomFourierMap
from repro.ml.metrics import (
    ClassificationReport,
    ConfusionCounts,
    accuracy_score,
    classification_report,
    confusion_counts,
    f1_score,
    precision_score,
    recall_score,
)
from repro.ml.ranking import (
    average_precision,
    mean_reciprocal_rank,
    precision_at_k,
    ranking_report,
    recall_at_k,
    roc_auc,
)
from repro.ml.ridge import GramRidgeSolver, RidgeSolver, ridge_fit
from repro.ml.scaling import StandardScaler
from repro.ml.svm import LinearSVC, PegasosSVC

__all__ = [
    "ClassificationReport",
    "ConfusionCounts",
    "GramRidgeSolver",
    "LinearMap",
    "LinearSVC",
    "PegasosSVC",
    "PolynomialMap",
    "RandomFourierMap",
    "RidgeSolver",
    "StandardScaler",
    "accuracy_score",
    "average_precision",
    "classification_report",
    "confusion_counts",
    "f1_score",
    "mean_reciprocal_rank",
    "precision_at_k",
    "precision_score",
    "ranking_report",
    "recall_at_k",
    "recall_score",
    "roc_auc",
    "ridge_fit",
]
