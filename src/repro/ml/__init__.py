"""From-scratch machine learning primitives.

Closed-form ridge regression (the paper's internal step 1-1), linear
SVMs for the SVM-MP / SVM-MPMD baselines, explicit kernel feature maps
(including the streamed-fittable Nyström landmark map), feature scaling,
the four evaluation metrics — and :mod:`repro.ml.backends`, the
model-backend seam through which every model trains and scores from
block streams.
"""

from repro.ml.backends import (
    BACKEND_NAMES,
    DenseBlockSource,
    LinearModelState,
    ModelBackend,
    RidgeBackend,
    StreamedLinearSVC,
    SVMBackend,
    apply_model_state,
    as_block_source,
    gather_rows,
    make_backend,
)
from repro.ml.kernels import (
    FEATURE_MAP_NAMES,
    LinearMap,
    NystroemMap,
    PolynomialMap,
    RandomFourierMap,
    feature_map_from_state,
    make_feature_map,
)
from repro.ml.metrics import (
    ClassificationReport,
    ConfusionCounts,
    accuracy_score,
    classification_report,
    confusion_counts,
    f1_score,
    precision_score,
    recall_score,
)
from repro.ml.ranking import (
    average_precision,
    mean_reciprocal_rank,
    precision_at_k,
    ranking_report,
    recall_at_k,
    roc_auc,
)
from repro.ml.ridge import GramRidgeSolver, RidgeSolver, ridge_fit
from repro.ml.scaling import StandardScaler
from repro.ml.svm import LinearSVC, PegasosSVC

__all__ = [
    "BACKEND_NAMES",
    "ClassificationReport",
    "ConfusionCounts",
    "DenseBlockSource",
    "FEATURE_MAP_NAMES",
    "GramRidgeSolver",
    "LinearMap",
    "LinearModelState",
    "LinearSVC",
    "ModelBackend",
    "NystroemMap",
    "PegasosSVC",
    "PolynomialMap",
    "RandomFourierMap",
    "RidgeBackend",
    "RidgeSolver",
    "SVMBackend",
    "StandardScaler",
    "StreamedLinearSVC",
    "apply_model_state",
    "as_block_source",
    "feature_map_from_state",
    "gather_rows",
    "make_backend",
    "make_feature_map",
    "accuracy_score",
    "average_precision",
    "classification_report",
    "confusion_counts",
    "f1_score",
    "mean_reciprocal_rank",
    "precision_at_k",
    "precision_score",
    "ranking_report",
    "recall_at_k",
    "recall_score",
    "roc_auc",
    "ridge_fit",
]
