"""The model-backend seam: every model trains and scores from blocks.

Before this module, the streamed fit path was linear-ridge-only: the
alternating engine hardwired Gram accumulation, the SVM baselines
demanded a materialized ``|H| x d`` matrix, and kernel feature maps
could only be applied to a dense ``X``.  :class:`ModelBackend` is the
protocol that unifies them — a backend *trains* and *scores* by
consuming block iterators, so any model rides the whole scaling stack
(block streaming, thread/process executors, the mmap arena,
checkpoint/resume) without the dense matrix ever existing.

A backend binds to a **block source** — any object exposing

* ``n_candidates`` — number of rows |H|,
* ``n_features`` — raw feature dimensionality d,
* ``feature_blocks()`` — an ordered iterator of ``(offset, X_block)``;

:class:`~repro.engine.streaming.StreamedAlignmentTask` is the canonical
source (its extraction already fans out across the session's executor,
threads or processes alike); :class:`DenseBlockSource` adapts a
materialized matrix as the trivial one-block stream so the dense paths
run through the very same backend code.

Three backends implement the protocol:

* :class:`RidgeBackend` — the existing closed-form ridge, rehomed: the
  block-accumulated Gram system of
  :class:`~repro.ml.ridge.GramRidgeSolver`, byte-identical to the
  previous hardwired path (it delegates to the source's own
  ``gram``/``xt_dot``/``scores`` fast paths when no feature map is
  configured, preserving the dirty-block score cache);
* :class:`SVMBackend` — a soft-margin linear SVM over streamed blocks,
  trained by :class:`StreamedLinearSVC`: the same LIBLINEAR dual
  coordinate descent as :class:`~repro.ml.svm.LinearSVC` but
  block-resident rather than matrix-resident — bit-identical given the
  seed and the concatenated row order;
* either backend composed with a **feature map** (``feature_map=``):
  :class:`~repro.ml.kernels.NystroemMap` fits its landmarks from a
  streamed reservoir sample, the other explicit maps need only the
  input dimensionality; blocks are mapped on the fly, so kernelized
  fits stream exactly like linear ones.

Scoring ships a :class:`LinearModelState` — plain arrays: optional map
state, optional scaler statistics, coefficients — which is picklable
and therefore crosses process boundaries as-is
(:func:`repro.store.procwork.model_score_block_job`); the worker-side
and in-process paths both call :func:`apply_model_state`, so a
process-pool score sweep is byte-identical to the inline one.

Backends expose :meth:`ModelBackend.state_dict` /
:meth:`ModelBackend.load_state_dict` so their sticky state — dual
coefficients, the landmark sample, map statistics — enters session
checkpoints and resume stays byte-identical for non-ridge models too.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ModelError, NotFittedError
from repro.ml.kernels import (
    FEATURE_MAP_NAMES,
    feature_map_from_state,
    make_feature_map,
)
from repro.ml.ridge import GramRidgeSolver
from repro.ml.scaling import StandardScaler
from repro.ml.svm import _unshrink_verify, dual_coordinate_descent
from repro.obs.metrics import global_registry

#: Model backends addressable by name (CLI / MethodSpec knobs).
BACKEND_NAMES = ("ridge", "svm", "svm-pu")


# ----------------------------------------------------------------------
# Block sources
# ----------------------------------------------------------------------
class DenseBlockSource:
    """A materialized matrix served as the trivial one-block stream.

    Wraps either a plain array or any object with a mutable ``X``
    attribute (an :class:`~repro.core.base.AlignmentTask`, whose ``X``
    the active loop rewrites in place between rounds) — the block is
    read at iteration time, so refreshes are always visible.
    """

    def __init__(self, X) -> None:
        self._holder = X if hasattr(X, "X") else None
        self._X = None if self._holder is not None else np.asarray(X, dtype=np.float64)

    @property
    def X(self) -> np.ndarray:
        """The live matrix (re-read from the holder each access)."""
        if self._holder is not None:
            return np.asarray(self._holder.X, dtype=np.float64)
        return self._X

    @property
    def n_candidates(self) -> int:
        """Number of rows."""
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        """Raw feature dimensionality."""
        return int(self.X.shape[1])

    def feature_blocks(self) -> Iterator[Tuple[int, np.ndarray]]:
        """The whole matrix as one ``(0, X)`` block."""
        yield 0, self.X

    def block_spans(self) -> List[Tuple[int, int]]:
        """Partition map: the single block's ``(offset, length)``."""
        return [(0, self.n_candidates)]

    def selected_feature_blocks(
        self, block_indices: Sequence[int]
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Selective pass over the trivial one-block partition."""
        for b in block_indices:
            if int(b) != 0:
                raise ModelError(f"block index {b} out of range")
            yield 0, self.X


def _source_spans(source) -> List[Tuple[int, int]]:
    """``(offset, length)`` partition of a block source.

    Sources exposing :meth:`block_spans` (the streamed task, the dense
    adapter) answer without reading features; anything else pays one
    metadata-only pass over ``feature_blocks()``.
    """
    if hasattr(source, "block_spans"):
        return [(int(o), int(n)) for o, n in source.block_spans()]
    return [
        (int(offset), int(X.shape[0]))
        for offset, X in source.feature_blocks()
    ]


def _selected_blocks(source, block_indices, spans):
    """Selective block pass with a filtered-sweep fallback.

    Sources without :meth:`selected_feature_blocks` stream everything
    and drop unrequested blocks — correct, just without the read
    savings.  Requested blocks are yielded in stream order either way.
    """
    wanted = sorted(int(b) for b in block_indices)
    if not wanted:
        return
    if hasattr(source, "selected_feature_blocks"):
        yield from source.selected_feature_blocks(wanted)
        return
    offsets = {spans[b][0] for b in wanted}
    for offset, X in source.feature_blocks():
        if int(offset) in offsets:
            yield offset, X


def as_block_source(task_or_X) -> object:
    """Coerce a task or matrix into a block source (ducks pass through)."""
    if hasattr(task_or_X, "feature_blocks"):
        return task_or_X
    return DenseBlockSource(task_or_X)


def gather_rows(source, indices: np.ndarray) -> np.ndarray:
    """Collect ``X[indices]`` from a block source in one streamed pass.

    Row values are copied verbatim from their home blocks, so the
    result is bit-identical to fancy-indexing the materialized matrix.
    The output row order follows ``indices`` (duplicates included).
    """
    indices = np.asarray(indices, dtype=np.int64)
    out = np.empty((indices.shape[0], source.n_features), dtype=np.float64)
    if indices.size == 0:
        return out
    order = np.argsort(indices, kind="stable")
    sorted_indices = indices[order]
    if sorted_indices[0] < 0 or sorted_indices[-1] >= source.n_candidates:
        raise ModelError("row index out of range for the block source")
    filled = 0
    for offset, X in source.feature_blocks():
        lo = int(np.searchsorted(sorted_indices, offset, side="left"))
        hi = int(
            np.searchsorted(sorted_indices, offset + X.shape[0], side="left")
        )
        if hi > lo:
            out[order[lo:hi]] = X[sorted_indices[lo:hi] - offset]
            filled += hi - lo
    if filled != indices.size:  # pragma: no cover - defensive
        raise ModelError("block stream did not cover every requested row")
    return out


# ----------------------------------------------------------------------
# Picklable scoring state
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinearModelState:
    """Everything needed to score a feature block, as plain arrays.

    The picklable work-unit payload of the model seam: an optional
    fitted feature-map state (:func:`~repro.ml.kernels.feature_map_from_state`),
    optional scaler statistics, and the linear coefficients of the
    fitted model in the mapped/scaled space.
    """

    coef: np.ndarray
    intercept: float = 0.0
    map_state: Optional[Dict] = None
    scaler_mean: Optional[np.ndarray] = None
    scaler_scale: Optional[np.ndarray] = None


def apply_model_state(state: LinearModelState, X: np.ndarray) -> np.ndarray:
    """Score one raw feature block: map, scale, then the linear form.

    Shared verbatim by the in-process scoring loop and the process-pool
    job (:func:`repro.store.procwork.model_score_block_job`), so the
    two paths are byte-identical on byte-identical blocks.
    """
    Z = np.asarray(X, dtype=np.float64)
    if state.map_state is not None:
        Z = feature_map_from_state(state.map_state).transform(Z)
    if state.scaler_mean is not None:
        Z = (Z - state.scaler_mean) / state.scaler_scale
    return Z @ state.coef + state.intercept


def _stream_scores(source, state: LinearModelState) -> np.ndarray:
    """Whole-of-source scores for a model state, block by block.

    A source offering ``linear_model_scores`` (the streamed task, which
    can ship the state to a process pool over the shared arena) handles
    the sweep itself; anything else is scored inline.
    """
    if hasattr(source, "linear_model_scores"):
        return source.linear_model_scores(state)
    scores = np.empty(source.n_candidates, dtype=np.float64)
    for offset, X in source.feature_blocks():
        scores[offset: offset + X.shape[0]] = apply_model_state(state, X)
    return scores


# ----------------------------------------------------------------------
# The streamed SVM optimizer
# ----------------------------------------------------------------------
class StreamedLinearSVC:
    """Soft-margin linear SVM trained block-resident.

    Runs the same dual-coordinate-descent updates as
    :class:`~repro.ml.svm.LinearSVC` (they share
    :func:`~repro.ml.svm.dual_coordinate_descent`), but the design
    matrix stays a *list of row blocks* — the contiguous ``n x d`` copy
    is never allocated, so the optimizer composes with block streams
    and cached feature blocks.  Training is bit-identical to the dense
    optimizer given the seed and the concatenated row order, for any
    block partition.

    Parameters mirror :class:`~repro.ml.svm.LinearSVC`;
    ``sample_weight`` on :meth:`fit_blocks` additionally scales each
    sample's box constraint to ``C * weight_i`` (per-sample cost
    weighting — the PU positive-upweighting analog for SVMs), and
    ``shrink`` selects the certified working-set sweep (bit-identical
    to the full sweep; see :mod:`repro.ml.svm`).

    :meth:`fit_source` is the working-set streamed fit: instead of
    holding every design block for the whole optimization, it keeps a
    compact resident cache of only the rows the sweep still visits —
    screened-out duals give up their rows after each epoch, and blocks
    whose every remaining dual is screened are never read from the
    source again (the ``svm.blocks_skipped`` counter).  All skips are
    certificate-backed no-ops of the unshrunk sweep, so the result is
    bit-identical to :meth:`fit_blocks` on the materialized stream for
    the same seed and row order.
    """

    def __init__(
        self,
        C: float = 1.0,
        max_iter: int = 1000,
        tol: float = 1e-4,
        fit_intercept: bool = True,
        seed: int = 0,
        shrink: bool = True,
    ) -> None:
        if C <= 0:
            raise ModelError(f"C must be > 0, got {C}")
        if max_iter < 1:
            raise ModelError("max_iter must be >= 1")
        self.C = float(C)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.fit_intercept = bool(fit_intercept)
        self.seed = int(seed)
        self.shrink = bool(shrink)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0
        self.shrink_stats_: Dict = {}

    def fit_blocks(
        self,
        blocks: Sequence[np.ndarray],
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "StreamedLinearSVC":
        """Fit on ``{0, 1}``-labeled rows held as a block list."""
        validated: List[np.ndarray] = []
        n_features: Optional[int] = None
        for block in blocks:
            block = np.asarray(block, dtype=np.float64)
            if block.ndim != 2:
                raise ModelError("design blocks must be 2-D")
            if n_features is None:
                n_features = block.shape[1]
            elif block.shape[1] != n_features:
                raise ModelError(
                    f"inconsistent block widths: {block.shape[1]} vs "
                    f"{n_features}"
                )
            validated.append(block)
        n_samples = sum(block.shape[0] for block in validated)
        if n_samples == 0 or n_features is None:
            raise ModelError("cannot fit on zero samples")
        y = np.asarray(y).ravel()
        if y.shape[0] != n_samples:
            raise ModelError(f"{y.shape[0]} labels for {n_samples} samples")
        unique = set(np.unique(y).tolist())
        if not unique <= {0, 1}:
            raise ModelError(
                f"labels must be in {{0, 1}}, got {sorted(unique)}"
            )
        signed = np.where(y > 0, 1.0, -1.0)
        if len(set(signed.tolist())) < 2:
            # Degenerate single-class training set: behave like the
            # majority-class predictor (hyperplane pushed to one side) —
            # exactly LinearSVC's handling.
            self.coef_ = np.zeros(n_features)
            self.intercept_ = float(signed[0]) * 1.0
            self.n_iter_ = 0
            self.shrink_stats_ = {}
            return self

        sample_C = None
        if sample_weight is not None:
            weights = np.asarray(sample_weight, dtype=np.float64).ravel()
            if weights.shape[0] != n_samples:
                raise ModelError(
                    f"{weights.shape[0]} weights for {n_samples} samples"
                )
            if np.any(weights < 0):
                raise ModelError("sample weights must be >= 0")
            sample_C = self.C * weights

        if self.fit_intercept:
            design = [
                np.hstack([block, np.ones((block.shape[0], 1))])
                for block in validated
            ]
        else:
            design = validated
        self.shrink_stats_ = {}
        w, self.n_iter_ = dual_coordinate_descent(
            design,
            signed,
            C=self.C,
            max_iter=self.max_iter,
            tol=self.tol,
            seed=self.seed,
            sample_C=sample_C,
            shrink=self.shrink,
            stats=self.shrink_stats_ if self.shrink else None,
        )
        if self.fit_intercept:
            self.coef_ = w[:-1].copy()
            self.intercept_ = float(w[-1])
        else:
            self.coef_ = w.copy()
            self.intercept_ = 0.0
        return self

    def fit_source(
        self,
        source,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
        sample_C: Optional[np.ndarray] = None,
        prepare=None,
        registry=None,
    ) -> "StreamedLinearSVC":
        """Working-set fit straight off a re-readable block source.

        ``source`` is anything with ``feature_blocks()`` (ideally also
        ``block_spans()``/``selected_feature_blocks()`` so unneeded
        blocks are never extracted); ``prepare`` optionally maps each
        raw block to design rows (feature map + scaling).  ``sample_C``
        gives per-sample box constraints directly (overrides
        ``sample_weight``'s ``C * w_i``).

        The optimizer runs the same certified sweep as
        :func:`~repro.ml.svm.dual_coordinate_descent` ``(shrink=True)``
        but holds only the rows the sweep can still visit: after each
        epoch the resident store is rebuilt with certificate-covered
        rows evicted, and only blocks owning a still-needed row are
        re-read.  ``registry`` (a
        :class:`~repro.obs.metrics.MetricsRegistry`) receives the
        ``svm.blocks_skipped`` counter and ``phase.svm_epoch``
        histogram.  Bit-identical to :meth:`fit_blocks` on the
        materialized stream for the same seed and row order.
        """
        spans = _source_spans(source)
        n_samples = sum(length for _, length in spans)
        if n_samples == 0:
            raise ModelError("cannot fit on zero samples")
        span_offsets = np.array([offset for offset, _ in spans],
                                dtype=np.int64)
        n_blocks = len(spans)
        y = np.asarray(y).ravel()
        if y.shape[0] != n_samples:
            raise ModelError(f"{y.shape[0]} labels for {n_samples} samples")
        unique = set(np.unique(y).tolist())
        if not unique <= {0, 1}:
            raise ModelError(
                f"labels must be in {{0, 1}}, got {sorted(unique)}"
            )
        signed = np.where(y > 0, 1.0, -1.0)

        def prep(X: np.ndarray) -> np.ndarray:
            Z = np.asarray(X, dtype=np.float64)
            if prepare is not None:
                Z = np.asarray(prepare(Z), dtype=np.float64)
            if self.fit_intercept:
                Z = np.hstack([Z, np.ones((Z.shape[0], 1))])
            return Z

        if len(set(signed.tolist())) < 2:
            # Degenerate single-class set: constant majority predictor,
            # exactly the fit_blocks handling.  One block read for the
            # design width.
            for _, X in _selected_blocks(source, [0], spans):
                width = prep(X).shape[1]
                break
            if self.fit_intercept:
                width -= 1
            self.coef_ = np.zeros(width)
            self.intercept_ = float(signed[0]) * 1.0
            self.n_iter_ = 0
            self.shrink_stats_ = {}
            return self

        if sample_C is not None:
            box = np.asarray(sample_C, dtype=np.float64).ravel()
            if box.shape[0] != n_samples:
                raise ModelError(
                    f"{box.shape[0]} box constraints for "
                    f"{n_samples} samples"
                )
            if np.any(box < 0) or not np.all(np.isfinite(box)):
                raise ModelError("sample_C must be finite and >= 0")
            box = box.copy()
        elif sample_weight is not None:
            weights = np.asarray(sample_weight, dtype=np.float64).ravel()
            if weights.shape[0] != n_samples:
                raise ModelError(
                    f"{weights.shape[0]} weights for {n_samples} samples"
                )
            if np.any(weights < 0):
                raise ModelError("sample weights must be >= 0")
            box = self.C * weights
        else:
            box = np.full(n_samples, self.C)

        # --- pass 0: full materialization (epoch 1 visits everything) --
        dim = None
        store = None
        for offset, X in _selected_blocks(source, range(n_blocks), spans):
            Z = prep(X)
            if store is None:
                dim = Z.shape[1]
                store = np.empty((n_samples, dim))
            elif Z.shape[1] != dim:
                raise ModelError(
                    f"inconsistent block widths: {Z.shape[1]} vs {dim}"
                )
            store[offset:offset + Z.shape[0]] = Z
        q_diag = np.einsum("ij,ij->i", store, store)

        self.shrink_stats_ = {}
        if not self.shrink:
            w, self.n_iter_ = dual_coordinate_descent(
                [store], signed, C=self.C, max_iter=self.max_iter,
                tol=self.tol, seed=self.seed, sample_C=box
                if (sample_C is not None or sample_weight is not None)
                else None,
                shrink=False,
            )
            if self.fit_intercept:
                self.coef_ = w[:-1].copy()
                self.intercept_ = float(w[-1])
            else:
                self.coef_ = w.copy()
                self.intercept_ = 0.0
            return self

        counter = (
            registry.counter("svm.blocks_skipped")
            if registry is not None else None
        )
        histogram = (
            registry.histogram("phase.svm_epoch")
            if registry is not None else None
        )

        # Mirrors the certified sweep in dual_coordinate_descent; the
        # arithmetic of every active visit is identical, and certified
        # skips are exact no-ops, so any divergence in *which* rows get
        # screened (cached matvec shapes differ) cannot change the
        # trajectory.
        eps = float(np.finfo(np.float64).eps)
        row_norm = np.sqrt(q_diag)
        dead = (q_diag == 0.0) | (box == 0.0)
        screenable = np.zeros(n_samples, dtype=bool)
        screen_slack = np.zeros(n_samples)
        screen_snap = np.zeros(n_samples)
        alpha = np.zeros(n_samples)
        w = np.zeros(dim)
        drift_total = 0.0
        budget = 0.0
        rng = np.random.default_rng(self.seed)
        order = np.arange(n_samples)
        epochs_run = 0
        active_visits = 0
        skipped_visits = 0
        rescreens = 0
        blocks_read = n_blocks  # pass 0
        blocks_skipped = 0
        row_fetches = 0
        resident_pos = np.arange(n_samples)
        overlay: Dict[int, np.ndarray] = {}
        resident_peak = n_samples

        def homes_of(indices: np.ndarray) -> np.ndarray:
            return np.unique(
                np.searchsorted(span_offsets, indices, side="right") - 1
            )

        def refresh(cand: np.ndarray) -> None:
            """Recompute certificates; fetch non-resident rows."""
            nonlocal blocks_read, row_fetches
            parts: List[Tuple[np.ndarray, np.ndarray]] = []
            slots = resident_pos[cand]
            res = cand[slots >= 0]
            if res.size:
                parts.append((res, store[resident_pos[res]]))
            rest = cand[slots < 0]
            if rest.size:
                in_overlay = [i for i in rest.tolist() if i in overlay]
                if in_overlay:
                    parts.append((
                        np.asarray(in_overlay, dtype=np.int64),
                        np.stack([overlay[i] for i in in_overlay]),
                    ))
                missing = np.asarray(
                    [i for i in rest.tolist() if i not in overlay],
                    dtype=np.int64,
                )
                if missing.size:
                    homes = homes_of(missing)
                    for offset, X in _selected_blocks(
                        source, homes.tolist(), spans
                    ):
                        Z = prep(X)
                        lo = int(offset)
                        sel = missing[
                            (missing >= lo) & (missing < lo + Z.shape[0])
                        ]
                        rows = Z[sel - lo]
                        for k, i in enumerate(sel.tolist()):
                            overlay[int(i)] = rows[k]
                        parts.append((sel, rows))
                        row_fetches += int(sel.size)
                    blocks_read += int(homes.size)
            for sel, rows in parts:
                grads = signed[sel] * (rows @ w) - 1.0
                slack = np.where(alpha[sel] == 0.0, grads, -grads)
                fresh = slack > 0.0
                sub = sel[fresh]
                screenable[sub] = True
                screen_slack[sub] = slack[fresh]
                screen_snap[sub] = drift_total
                screenable[sel[~fresh]] = False

        converged_at = self.max_iter
        for iteration in range(self.max_iter):
            epoch_started = time.perf_counter()
            rng.shuffle(order)
            max_violation = 0.0
            epoch_start_drift = drift_total

            if iteration > 0:
                # Rebuild the resident store for this epoch: evict only
                # rows whose certificate covers several epochs of drift
                # at the current rate (16 * budget = last epoch's
                # drift), so evicted rows do not bounce straight back
                # through a block fetch.  Resident pinned rows get a
                # free certificate refresh first — slack is measured at
                # eviction time, where it is largest.
                horizon = drift_total + 128.0 * budget
                guard_h = 64.0 * eps * dim * row_norm * (horizon + 1.0)
                covers_h = screenable & (
                    screen_slack - row_norm * (horizon - screen_snap)
                    > guard_h
                )
                pinned = ~dead & ((alpha == 0.0) | (alpha == box))
                local = resident_pos >= 0
                if overlay:
                    local = local.copy()
                    local[np.fromiter(overlay, dtype=np.int64)] = True
                stale_h = pinned & local & ~covers_h
                if stale_h.any():
                    refresh(np.flatnonzero(stale_h))
                    covers_h = screenable & (
                        screen_slack - row_norm * (horizon - screen_snap)
                        > guard_h
                    )
                needed = np.flatnonzero(~dead & ~covers_h)
                new_store = np.empty((needed.size, dim))
                new_pos = np.full(n_samples, -1, dtype=np.int64)
                new_pos[needed] = np.arange(needed.size)
                held = needed[resident_pos[needed] >= 0]
                new_store[new_pos[held]] = store[resident_pos[held]]
                missing_list = []
                for i in needed[resident_pos[needed] < 0].tolist():
                    row = overlay.get(int(i))
                    if row is not None:
                        new_store[new_pos[i]] = row
                    else:
                        missing_list.append(i)
                missing = np.asarray(missing_list, dtype=np.int64)
                if missing.size:
                    fetch_homes = homes_of(missing)
                    for offset, X in _selected_blocks(
                        source, fetch_homes.tolist(), spans
                    ):
                        Z = prep(X)
                        lo = int(offset)
                        sel = missing[
                            (missing >= lo) & (missing < lo + Z.shape[0])
                        ]
                        new_store[new_pos[sel]] = Z[sel - lo]
                        row_fetches += int(sel.size)
                    blocks_read += int(fetch_homes.size)
                needed_homes = (
                    homes_of(needed) if needed.size
                    else np.empty(0, dtype=np.int64)
                )
                epoch_skipped = n_blocks - int(needed_homes.size)
                blocks_skipped += epoch_skipped
                if counter is not None and epoch_skipped:
                    counter.inc(epoch_skipped)
                store = new_store
                resident_pos = new_pos
                overlay = {}
            resident_peak = max(
                resident_peak, store.shape[0] + len(overlay)
            )

            cursor = 0
            rounds = 0
            while cursor < n_samples:
                rounds += 1
                if rounds > 1:
                    rescreens += 1
                if rounds % 32 == 0:
                    budget *= 2.0  # runaway-round safeguard
                allowance = drift_total + budget
                guard = 64.0 * eps * dim * row_norm * (allowance + 1.0)
                covers_round = (
                    screen_slack - row_norm * (allowance - screen_snap)
                    > guard
                )
                stale = (
                    ~dead
                    & ((alpha == 0.0) | (alpha == box))
                    & ~(screenable & covers_round)
                )
                if stale.any():
                    refresh(np.flatnonzero(stale))
                    covers_round = (
                        screen_slack - row_norm * (allowance - screen_snap)
                        > guard
                    )
                certified = screenable & covers_round
                visits = order[cursor:]
                if not certified[visits].any():
                    allowance = np.inf
                active_rel = np.flatnonzero(~(dead | certified)[visits])
                breached = False
                for k in range(active_rel.size):
                    rel = int(active_rel[k])
                    i = int(visits[rel])
                    active_visits += 1
                    slot = resident_pos[i]
                    row = store[slot] if slot >= 0 else overlay[i]
                    margin = signed[i] * (row @ w)
                    gradient = margin - 1.0
                    a = alpha[i]
                    if a == 0.0:
                        projected = min(gradient, 0.0)
                    elif a == box[i]:
                        projected = max(gradient, 0.0)
                    else:
                        projected = gradient
                    max_violation = max(max_violation, abs(projected))
                    if projected != 0.0:
                        screenable[i] = False
                        alpha[i] = min(
                            max(a - gradient / q_diag[i], 0.0), box[i]
                        )
                        delta = (alpha[i] - a) * signed[i]
                        if delta != 0.0:
                            w += delta * row
                            drift_total += abs(delta) * row_norm[i]
                            if drift_total > allowance:
                                skipped_visits += rel - k
                                cursor += rel + 1
                                breached = True
                                break
                    elif a == 0.0 or a == box[i]:
                        slack = gradient if a == 0.0 else -gradient
                        if slack > 0.0:
                            screenable[i] = True
                            screen_slack[i] = slack
                            screen_snap[i] = drift_total
                        else:
                            screenable[i] = False
                if not breached:
                    skipped_visits += visits.size - active_rel.size
                    cursor = n_samples
            epochs_run += 1
            budget = (drift_total - epoch_start_drift) / 16.0
            if histogram is not None:
                histogram.observe(time.perf_counter() - epoch_started)
            if max_violation < self.tol:
                converged_at = iteration + 1
                break

        resident_final = int(store.shape[0]) + len(overlay)

        # Unshrink+verify: re-read only the blocks holding a screened
        # dual and validate every certificate at the final weights.
        screened = np.flatnonzero(screenable)
        verify_checked = 0
        verify_max_residual = 0.0
        if screened.size:
            verify_homes = homes_of(screened)
            verify_checked, verify_max_residual = _unshrink_verify(
                (
                    (offset, prep(X))
                    for offset, X in _selected_blocks(
                        source, verify_homes.tolist(), spans
                    )
                ),
                signed, w, alpha, box, row_norm,
                screenable, screen_slack, screen_snap, drift_total,
                dim, eps,
            )
            blocks_read += int(verify_homes.size)

        self.shrink_stats_ = {
            "epochs": epochs_run,
            "active_visits": active_visits,
            "skipped_visits": skipped_visits,
            "rescreens": rescreens,
            "screened_final": int(np.count_nonzero(screenable)),
            "verify_checked": verify_checked,
            "verify_max_residual": verify_max_residual,
            "drift": drift_total,
            "n_samples": n_samples,
            "blocks_total": n_blocks,
            "blocks_read": blocks_read,
            "blocks_skipped": blocks_skipped,
            "row_fetches": row_fetches,
            "resident_peak": int(resident_peak),
            "resident_final": resident_final,
        }
        self.n_iter_ = converged_at
        if self.fit_intercept:
            self.coef_ = w[:-1].copy()
            self.intercept_ = float(w[-1])
        else:
            self.coef_ = w.copy()
            self.intercept_ = 0.0
        return self

    def fit(self, X: np.ndarray, y: np.ndarray) -> "StreamedLinearSVC":
        """Dense convenience wrapper: one block."""
        return self.fit_blocks([np.asarray(X, dtype=np.float64)], y)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed distances ``w·x + b``."""
        if self.coef_ is None:
            raise NotFittedError("StreamedLinearSVC.fit has not been called")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.coef_ + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted ``{0, 1}`` labels."""
        return (self.decision_function(X) > 0).astype(np.int64)


# ----------------------------------------------------------------------
# The backend protocol
# ----------------------------------------------------------------------
class ModelBackend:
    """One model family behind the streamed fit seam.

    Lifecycle, per fit round: :meth:`begin` binds the backend to a
    block source and does the per-round precomputation (Gram
    accumulation, map fitting, training-row gathers are all deferred to
    the concrete class); :meth:`fit` trains on the current labels and
    returns a packed weight vector; :meth:`scores` maps a weight vector
    back to whole-of-source decision scores.  The alternating engine
    calls ``fit``/``scores`` repeatedly between ``begin`` calls with
    the label vector evolving — exactly the closure contract the
    ridge-only path used, now model-agnostic.

    ``trains_on`` declares what :meth:`fit` learns from: ``"all"``
    backends (ridge) regress on every candidate's current pseudo-label;
    ``"labeled"`` backends (SVM) train on the clamped/labeled rows only
    — the supervised semantics of the paper's SVM baselines, which also
    keeps the optimizer's working set at the label budget rather than
    |H|; ``"pu"`` backends (the biased SVM) train on every streamed
    row, with the clamped indices marking which rows carry full cost.

    Sticky cross-round state (a fitted feature map's landmark sample
    and statistics, the last dual solution) round-trips through
    :meth:`state_dict`/:meth:`load_state_dict`, which is how backends
    enter session checkpoints.
    """

    kind: str = "backend"
    #: ``"all"`` — fit on every row; ``"labeled"`` — fit on train rows;
    #: ``"pu"`` — fit on every row, train indices mark the C-cost band.
    trains_on: str = "all"

    def __init__(self, feature_map=None) -> None:
        self.feature_map = feature_map
        self._map_fitted = False
        # The source the fitted map belongs to.  ``None`` while a
        # checkpoint-restored map waits to adopt its first source.
        self._map_source = None
        self._source = None

    # -- feature-map plumbing ------------------------------------------
    def _ensure_map(self, source) -> None:
        """Fit the configured feature map once *per bound task*.

        :class:`~repro.ml.kernels.NystroemMap` consumes the stream (its
        reservoir sample); the other maps need only the input
        dimensionality and fit on the first block.  Repeated ``begin``
        calls with the *same* source (the active loop's per-round
        refits) reuse the fitted map — the feature space stays fixed
        across query rounds, which is what makes checkpointed resumes
        byte-identical — while binding to a *different* source (a model
        instance refit on a new task) refits the map, so no landmark
        sample or projection ever leaks between tasks.  A map restored
        by :meth:`load_state_dict` adopts the next source without
        refitting (that is the resume path).
        """
        if self.feature_map is None:
            return
        if self._map_fitted:
            if self._map_source is None:
                self._map_source = source
                return
            if self._map_source is source:
                return
            self._map_fitted = False
        if hasattr(self.feature_map, "fit_streamed"):
            self.feature_map.fit_streamed(
                X for _, X in source.feature_blocks()
            )
        else:
            first = next(iter(source.feature_blocks()), None)
            if first is None:
                raise ModelError("cannot fit a feature map on zero blocks")
            self.feature_map.fit(first[1])
        self._map_fitted = True
        self._map_source = source

    def _transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the fitted feature map (identity when none)."""
        if self.feature_map is None:
            return X
        return self.feature_map.transform(X)

    def _map_state(self) -> Optional[Dict]:
        """Picklable state of the fitted map, or ``None``."""
        if self.feature_map is None or not self._map_fitted:
            return None
        return self.feature_map.state_dict()

    # -- protocol ------------------------------------------------------
    def begin(
        self,
        source,
        sample_weight: Optional[np.ndarray] = None,
        train_indices: Optional[np.ndarray] = None,
    ) -> None:
        """Bind to a block source and do per-round precomputation."""
        raise NotImplementedError

    def fit(self, y: np.ndarray) -> np.ndarray:
        """Train on the bound source; returns the packed weight vector."""
        raise NotImplementedError

    def scores(self, weights: np.ndarray) -> np.ndarray:
        """Whole-of-source decision scores for a packed weight vector."""
        raise NotImplementedError

    def state_dict(self) -> Dict:
        """Picklable sticky state (for checkpoints)."""
        raise NotImplementedError

    def load_state_dict(self, state: Dict) -> None:
        """Restore :meth:`state_dict` output (checkpoint resume)."""
        raise NotImplementedError

    def _check_state_kind(self, state: Dict) -> None:
        found = state.get("kind")
        if found != self.kind:
            raise ModelError(
                f"checkpoint carries {found!r} backend state but this model "
                f"uses the {self.kind!r} backend; resume with the model "
                "configuration the run was started with"
            )

    def _restore_map(self, state: Dict) -> None:
        map_state = state.get("map")
        if map_state is not None:
            self.feature_map = feature_map_from_state(map_state)
            self._map_fitted = True
            self._map_source = None  # adopt the next bound source as-is


class RidgeBackend(ModelBackend):
    """The paper's closed-form ridge, behind the backend seam.

    Without a feature map this is byte-for-byte the pre-seam streamed
    path: ``begin`` factorizes the source's block-accumulated
    ``XᵀΩX`` through :class:`~repro.ml.ridge.GramRidgeSolver`,
    ``fit`` solves against the block-accumulated right-hand side, and
    ``scores`` delegates to the source's own score sweep (keeping the
    streamed task's dirty-block rescore cache).  With a feature map the
    same accumulations run over mapped blocks.
    """

    kind = "ridge"
    trains_on = "all"

    def __init__(self, c: float = 1.0, feature_map=None) -> None:
        super().__init__(feature_map=feature_map)
        if c <= 0:
            raise ModelError(f"loss weight c must be > 0, got {c}")
        self.c = float(c)
        self._solver: Optional[GramRidgeSolver] = None
        self._sample_weight: Optional[np.ndarray] = None

    def begin(self, source, sample_weight=None, train_indices=None) -> None:
        if train_indices is not None:
            raise ModelError(
                "the ridge backend regresses on every candidate; "
                "train_indices only applies to 'labeled' backends"
            )
        self._source = source
        self._sample_weight = sample_weight
        self._ensure_map(source)
        if self.feature_map is None and hasattr(source, "gram"):
            gram = source.gram(sample_weight)
        else:
            gram = None
            for offset, X in source.feature_blocks():
                Z = self._transform(X)
                if gram is None:
                    gram = np.zeros((Z.shape[1], Z.shape[1]))
                if sample_weight is None:
                    gram += Z.T @ Z
                else:
                    weights = sample_weight[offset: offset + Z.shape[0]]
                    gram += (Z.T * weights) @ Z
            if gram is None:
                raise ModelError("cannot fit on an empty block stream")
        self._solver = GramRidgeSolver(gram, c=self.c)

    def fit(self, y: np.ndarray) -> np.ndarray:
        if self._solver is None or self._source is None:
            raise NotFittedError("RidgeBackend.begin has not been called")
        y = np.asarray(y, dtype=np.float64).ravel()
        target = y if self._sample_weight is None else y * self._sample_weight
        if self.feature_map is None and hasattr(self._source, "xt_dot"):
            rhs = self._source.xt_dot(target)
        else:
            rhs = np.zeros(self._solver.n_features)
            for offset, X in self._source.feature_blocks():
                Z = self._transform(X)
                rhs += Z.T @ target[offset: offset + Z.shape[0]]
        return self._solver.solve_rhs(rhs)

    def scores(self, weights: np.ndarray) -> np.ndarray:
        if self._source is None:
            raise NotFittedError("RidgeBackend.begin has not been called")
        if self.feature_map is None and hasattr(self._source, "scores"):
            return self._source.scores(weights)
        state = LinearModelState(
            coef=np.asarray(weights, dtype=np.float64).ravel(),
            map_state=self._map_state(),
        )
        return _stream_scores(self._source, state)

    def state_dict(self) -> Dict:
        return {"kind": self.kind, "c": self.c, "map": self._map_state()}

    def load_state_dict(self, state: Dict) -> None:
        self._check_state_kind(state)
        self._restore_map(state)


class SVMBackend(ModelBackend):
    """Soft-margin linear SVM behind the backend seam.

    Trains a :class:`StreamedLinearSVC` on the bound source's training
    rows — gathered from the block stream, never via a materialized
    ``|H| x d`` matrix — optionally standardized (statistics from the
    training rows only, the leakage-safe convention of the dense
    :class:`~repro.core.svm_baselines.SVMAligner`) and optionally
    kernelized through the composed feature map.  Scoring streams every
    block through :func:`apply_model_state`, which a store-backed
    session fans across the process pool.

    With ``train_indices`` (the supervised mode used by the SVM
    baselines and by the active loop, where the clamped set is the
    training set), the fit gathers exactly those rows; without it the
    optimizer consumes the whole stream block-resident.

    ``mode="pu"`` is the positive-unlabeled variant: the fit trains on
    the clamped rows at cost ``C`` *plus every other streamed candidate
    row as a weighted soft negative* at cost ``unlabeled_C`` (the
    biased-SVM formulation), through
    :meth:`StreamedLinearSVC.fit_source` — an all-of-H dual pass kept
    tractable by the certified working-set sweep, its compact resident
    row cache, and block screening (``svm.blocks_skipped`` /
    ``phase.svm_epoch`` in the bound session's metrics registry).
    """

    kind = "svm"
    trains_on = "labeled"

    def __init__(
        self,
        C: float = 1.0,
        scale_features: bool = True,
        seed: int = 0,
        feature_map=None,
        max_iter: int = 1000,
        tol: float = 1e-4,
        mode: str = "supervised",
        unlabeled_C: float = 0.1,
        shrink: bool = True,
    ) -> None:
        super().__init__(feature_map=feature_map)
        if mode not in ("supervised", "pu"):
            raise ModelError(
                f"mode must be 'supervised' or 'pu', got {mode!r}"
            )
        if unlabeled_C <= 0:
            raise ModelError(f"unlabeled_C must be > 0, got {unlabeled_C}")
        self.C = float(C)
        self.scale_features = bool(scale_features)
        self.seed = int(seed)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.mode = mode
        self.unlabeled_C = float(unlabeled_C)
        self.shrink = bool(shrink)
        #: PU backends receive the clamped indices (they set the
        #: positive cost band) but train on every candidate row.
        self.trains_on = "labeled" if mode == "supervised" else "pu"
        self.svc_: Optional[StreamedLinearSVC] = None
        self.scaler_: Optional[StandardScaler] = None
        self._sample_weight: Optional[np.ndarray] = None
        self._train_indices: Optional[np.ndarray] = None
        self._train_blocks: Optional[List[np.ndarray]] = None
        self._fit_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._score_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def begin(self, source, sample_weight=None, train_indices=None) -> None:
        self._source = source
        self._sample_weight = sample_weight
        self._train_indices = (
            np.asarray(train_indices, dtype=np.int64)
            if train_indices is not None
            else None
        )
        self._ensure_map(source)
        # Training rows are fixed for the duration of one round: the
        # alternation loop calls fit() per inner iteration, and the
        # gather (a full block sweep on a streamed source) plus the map
        # transform are loop-invariant — cache them per begin().  The
        # solve and the whole-of-source score sweep are likewise pure
        # functions of (training labels, weights) within a round, so
        # repeat calls with unchanged inputs (the alternation loop's
        # fixed clamped labels) return the cached result instead of
        # re-running the optimizer and another full block sweep.
        self._train_blocks: Optional[List[np.ndarray]] = None
        self._fit_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._score_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def _training_blocks(
        self, y: np.ndarray
    ) -> Tuple[List[np.ndarray], np.ndarray, Optional[np.ndarray]]:
        """(mapped training blocks, labels, weights) for the current fit.

        The mapped blocks are gathered once per :meth:`begin` and
        reused across the round's solve iterations; only the labels are
        re-sliced from the evolving ``y``.
        """
        if self._train_indices is not None:
            if self._train_blocks is None:
                raw = gather_rows(self._source, self._train_indices)
                self._train_blocks = [self._transform(raw)]
            labels = y[self._train_indices]
            weights = (
                self._sample_weight[self._train_indices]
                if self._sample_weight is not None
                else None
            )
        else:
            if self._train_blocks is None:
                self._train_blocks = [
                    self._transform(X)
                    for _, X in self._source.feature_blocks()
                ]
            labels = y
            weights = self._sample_weight
        return self._train_blocks, labels, weights

    def _fit_scaler(self, blocks: List[np.ndarray]) -> StandardScaler:
        """Standardization statistics over the training blocks.

        The single-block case (gathered training rows) matches the
        dense scaler bit-for-bit; the multi-block case accumulates
        streamed moments so the block list is never concatenated.
        """
        if len(blocks) == 1:
            return StandardScaler().fit(blocks[0])
        scaler = StandardScaler()
        count = 0
        total = None
        total_sq = None
        for block in blocks:
            if total is None:
                total = block.sum(axis=0)
                total_sq = (block * block).sum(axis=0)
            else:
                total += block.sum(axis=0)
                total_sq += (block * block).sum(axis=0)
            count += block.shape[0]
        if count == 0:
            raise ModelError("cannot fit scaler on zero rows")
        mean = total / count
        variance = np.maximum(total_sq / count - mean * mean, 0.0)
        std = np.sqrt(variance)
        std[std == 0] = 1.0
        scaler.mean_ = mean
        scaler.scale_ = std
        return scaler

    def _fit_scaler_source(self) -> StandardScaler:
        """Standardization statistics streamed off the bound source.

        Bit-identical to :meth:`_fit_scaler` over the mapped block
        list: a single-block source dense-fits that block, a multi-block
        source accumulates moments in stream order.
        """
        count = 0
        total = None
        total_sq = None
        first: Optional[np.ndarray] = None
        n_blocks = 0
        for _, X in self._source.feature_blocks():
            block = self._transform(np.asarray(X, dtype=np.float64))
            n_blocks += 1
            if n_blocks == 1:
                first = block
            if total is None:
                total = block.sum(axis=0)
                total_sq = (block * block).sum(axis=0)
            else:
                total += block.sum(axis=0)
                total_sq += (block * block).sum(axis=0)
            count += block.shape[0]
        if count == 0:
            raise ModelError("cannot fit scaler on zero rows")
        if n_blocks == 1:
            return StandardScaler().fit(first)
        scaler = StandardScaler()
        mean = total / count
        variance = np.maximum(total_sq / count - mean * mean, 0.0)
        std = np.sqrt(variance)
        std[std == 0] = 1.0
        scaler.mean_ = mean
        scaler.scale_ = std
        return scaler

    def _metrics_registry(self):
        """The bound session's registry, else the process-global one."""
        session = getattr(self._source, "session", None)
        metrics = getattr(session, "metrics", None)
        if metrics is not None:
            return metrics
        return global_registry()

    def _fit_streamed(self, labels: np.ndarray) -> np.ndarray:
        """All-of-H working-set fit (PU mode and unsupervised-indices).

        Streams the source through :meth:`StreamedLinearSVC.fit_source`
        instead of materializing every mapped block for the whole
        solve; in PU mode the clamped rows keep cost ``C`` while every
        other candidate row enters as a soft negative at
        ``unlabeled_C``.
        """
        if self._fit_cache is not None and np.array_equal(
            self._fit_cache[0], labels
        ):
            return self._fit_cache[1].copy()
        if self.scale_features:
            self.scaler_ = self._fit_scaler_source()
        else:
            self.scaler_ = None
        scaler = self.scaler_

        def prepare(X: np.ndarray) -> np.ndarray:
            Z = self._transform(X)
            return scaler.transform(Z) if scaler is not None else Z

        weights = self._sample_weight
        sample_C = None
        if self.mode == "pu":
            n = self._source.n_candidates
            box = np.full(n, self.unlabeled_C)
            if self._train_indices is not None:
                box[self._train_indices] = self.C
            else:
                box[:] = self.C
            if weights is not None:
                box = box * np.asarray(
                    weights, dtype=np.float64
                ).ravel()
            sample_C = box
            weights = None
        self.svc_ = StreamedLinearSVC(
            C=self.C, max_iter=self.max_iter, tol=self.tol,
            seed=self.seed, shrink=self.shrink,
        )
        self.svc_.fit_source(
            self._source,
            labels,
            sample_weight=weights,
            sample_C=sample_C,
            prepare=prepare,
            registry=self._metrics_registry(),
        )
        packed = np.concatenate([self.svc_.coef_, [self.svc_.intercept_]])
        self._fit_cache = (labels.copy(), packed.copy())
        return packed

    def fit(self, y: np.ndarray) -> np.ndarray:
        if self._source is None:
            raise NotFittedError("SVMBackend.begin has not been called")
        y = np.asarray(y).ravel()
        if y.shape[0] != self._source.n_candidates:
            raise ModelError(
                f"label vector length {y.shape[0]} does not match "
                f"{self._source.n_candidates} candidates"
            )
        rinted = np.asarray(np.rint(y), dtype=np.int64)
        if self.mode == "pu" or self._train_indices is None:
            return self._fit_streamed(rinted)
        blocks, labels, weights = self._training_blocks(rinted)
        if self._fit_cache is not None and np.array_equal(
            self._fit_cache[0], labels
        ):
            return self._fit_cache[1].copy()
        if self.scale_features:
            self.scaler_ = self._fit_scaler(blocks)
            blocks = [self.scaler_.transform(block) for block in blocks]
        else:
            self.scaler_ = None
        self.svc_ = StreamedLinearSVC(
            C=self.C, max_iter=self.max_iter, tol=self.tol,
            seed=self.seed, shrink=self.shrink,
        )
        self.svc_.fit_blocks(blocks, labels, sample_weight=weights)
        packed = np.concatenate([self.svc_.coef_, [self.svc_.intercept_]])
        self._fit_cache = (labels.copy(), packed.copy())
        return packed

    def _model_state(self, weights: np.ndarray) -> LinearModelState:
        weights = np.asarray(weights, dtype=np.float64).ravel()
        return LinearModelState(
            coef=weights[:-1],
            intercept=float(weights[-1]),
            map_state=self._map_state(),
            scaler_mean=(
                np.asarray(self.scaler_.mean_)
                if self.scaler_ is not None
                else None
            ),
            scaler_scale=(
                np.asarray(self.scaler_.scale_)
                if self.scaler_ is not None
                else None
            ),
        )

    def scores(self, weights: np.ndarray) -> np.ndarray:
        if self._source is None:
            raise NotFittedError("SVMBackend.begin has not been called")
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if self._score_cache is not None and np.array_equal(
            self._score_cache[0], weights
        ):
            return self._score_cache[1].copy()
        result = _stream_scores(self._source, self._model_state(weights))
        self._score_cache = (weights.copy(), result.copy())
        return result

    def state_dict(self) -> Dict:
        svc_state = None
        if self.svc_ is not None and self.svc_.coef_ is not None:
            svc_state = {
                "coef": np.array(self.svc_.coef_),
                "intercept": self.svc_.intercept_,
                "n_iter": self.svc_.n_iter_,
                "shrink_stats": dict(self.svc_.shrink_stats_),
            }
        scaler_state = None
        if self.scaler_ is not None and self.scaler_.mean_ is not None:
            scaler_state = {
                "mean": np.array(self.scaler_.mean_),
                "scale": np.array(self.scaler_.scale_),
            }
        return {
            "kind": self.kind,
            "C": self.C,
            "mode": self.mode,
            "unlabeled_C": self.unlabeled_C,
            "shrink": self.shrink,
            "map": self._map_state(),
            "scaler": scaler_state,
            "svc": svc_state,
        }

    def load_state_dict(self, state: Dict) -> None:
        self._check_state_kind(state)
        mode = state.get("mode", "supervised")
        if mode != self.mode:
            raise ModelError(
                f"checkpoint holds a {mode!r}-mode SVM backend but this "
                f"backend is {self.mode!r}"
            )
        self._restore_map(state)
        scaler_state = state.get("scaler")
        if scaler_state is not None:
            self.scaler_ = StandardScaler()
            self.scaler_.mean_ = np.asarray(scaler_state["mean"])
            self.scaler_.scale_ = np.asarray(scaler_state["scale"])
        svc_state = state.get("svc")
        if svc_state is not None:
            self.svc_ = StreamedLinearSVC(
                C=self.C, max_iter=self.max_iter, tol=self.tol,
                seed=self.seed, shrink=self.shrink,
            )
            self.svc_.coef_ = np.asarray(svc_state["coef"])
            self.svc_.intercept_ = float(svc_state["intercept"])
            self.svc_.n_iter_ = int(svc_state["n_iter"])
            self.svc_.shrink_stats_ = dict(
                svc_state.get("shrink_stats") or {}
            )


def make_backend(
    model: str = "ridge",
    c: float = 1.0,
    svm_C: float = 1.0,
    seed: int = 0,
    feature_map: Union[str, object, None] = None,
    scale_features: bool = True,
    max_iter: int = 1000,
    tol: float = 1e-4,
    unlabeled_C: float = 0.1,
    shrink: bool = True,
) -> ModelBackend:
    """Build a model backend from names and knobs.

    ``model`` is ``"ridge"``, ``"svm"`` or ``"svm-pu"`` (the
    positive-unlabeled biased SVM, all-of-H training at
    ``unlabeled_C`` per unlabeled row); ``feature_map`` is ``None``, a
    registry name (see :data:`~repro.ml.kernels.FEATURE_MAP_NAMES`) or
    a map instance.  ``seed`` reaches both the map (landmark /
    projection draws) and the SVM's coordinate shuffling; ``shrink``
    toggles the certified working-set sweep (bit-identical either way).
    """
    if model not in BACKEND_NAMES:
        raise ModelError(
            f"unknown model backend {model!r}; choose from {BACKEND_NAMES}"
        )
    if isinstance(feature_map, str):
        if feature_map not in FEATURE_MAP_NAMES:
            raise ModelError(
                f"unknown feature map {feature_map!r}; "
                f"choose from {FEATURE_MAP_NAMES}"
            )
        feature_map = make_feature_map(feature_map, seed=seed)
    if model == "ridge":
        return RidgeBackend(c=c, feature_map=feature_map)
    return SVMBackend(
        C=svm_C,
        scale_features=scale_features,
        seed=seed,
        feature_map=feature_map,
        max_iter=max_iter,
        tol=tol,
        mode="pu" if model == "svm-pu" else "supervised",
        unlabeled_C=unlabeled_C,
        shrink=shrink,
    )
