"""Explicit kernel feature maps (§III-C.1's ``g: R^d -> R^k``).

The paper notes anchor-link features "can be projected to different
feature spaces with various kernel functions" and then uses the linear
kernel for simplicity.  Because the model's closed-form ridge step
needs an *explicit* design matrix, we provide explicit maps rather than
kernel tricks:

* :class:`LinearMap` — identity (the paper's choice);
* :class:`PolynomialMap` — degree-2 expansion (pairwise products),
  capturing feature interactions such as "common neighbors AND common
  attributes" beyond the pre-stacked diagrams;
* :class:`RandomFourierMap` — Rahimi-Recht random Fourier features
  approximating the RBF kernel with a controllable output dimension.

All maps are fitted on training rows only (where they need statistics)
and are deterministic given their seed.
"""

from __future__ import annotations

from itertools import combinations_with_replacement
from typing import List, Optional

import numpy as np

from repro.exceptions import ModelError, NotFittedError


class LinearMap:
    """Identity feature map (the paper's linear kernel)."""

    def fit(self, X: np.ndarray) -> "LinearMap":
        """No-op fit; returns self."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError("X must be 2-D")
        self._n_features = X.shape[1]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Return ``X`` unchanged (validated)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError("X must be 2-D")
        return X

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform."""
        return self.fit(X).transform(X)


class PolynomialMap:
    """Explicit degree-2 polynomial expansion.

    Output columns: the original features followed by all products
    ``x_i * x_j`` with ``i <= j``.  Dimensionality is
    ``d + d(d+1)/2``; with the paper's d = 32 this is 560 columns,
    still tiny next to |H|.
    """

    def __init__(self, include_original: bool = True) -> None:
        self.include_original = bool(include_original)
        self._n_features: Optional[int] = None

    def fit(self, X: np.ndarray) -> "PolynomialMap":
        """Record input dimensionality; returns self."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError("X must be 2-D")
        self._n_features = X.shape[1]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Expand to degree-2 interaction features."""
        if self._n_features is None:
            raise NotFittedError("PolynomialMap.fit has not been called")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self._n_features:
            raise ModelError(
                f"expected {self._n_features} features, got shape {X.shape}"
            )
        blocks: List[np.ndarray] = []
        if self.include_original:
            blocks.append(X)
        products = [
            X[:, i] * X[:, j]
            for i, j in combinations_with_replacement(range(X.shape[1]), 2)
        ]
        blocks.append(np.column_stack(products))
        return np.hstack(blocks)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform."""
        return self.fit(X).transform(X)


class RandomFourierMap:
    """Random Fourier features approximating the RBF kernel.

    ``z(x) = sqrt(2/k) * cos(W x + b)`` with ``W ~ N(0, 1/sigma**2)``
    and ``b ~ U[0, 2*pi)``; ``z(x)·z(y)`` approximates
    ``exp(-||x-y||² / (2 sigma²))`` (Rahimi & Recht, NIPS 2007).

    Parameters
    ----------
    n_components:
        Output dimension k.
    sigma:
        RBF bandwidth.
    seed:
        Seed for W and b (deterministic given the seed).
    """

    def __init__(
        self, n_components: int = 128, sigma: float = 1.0, seed: int = 0
    ) -> None:
        if n_components < 1:
            raise ModelError("n_components must be >= 1")
        if sigma <= 0:
            raise ModelError("sigma must be > 0")
        self.n_components = int(n_components)
        self.sigma = float(sigma)
        self.seed = int(seed)
        self._weights: Optional[np.ndarray] = None
        self._offsets: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "RandomFourierMap":
        """Draw the random projection for the input dimensionality."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError("X must be 2-D")
        rng = np.random.default_rng(self.seed)
        self._weights = rng.normal(
            scale=1.0 / self.sigma, size=(X.shape[1], self.n_components)
        )
        self._offsets = rng.uniform(0.0, 2.0 * np.pi, size=self.n_components)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project into the random Fourier feature space."""
        if self._weights is None or self._offsets is None:
            raise NotFittedError("RandomFourierMap.fit has not been called")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self._weights.shape[0]:
            raise ModelError(
                f"expected {self._weights.shape[0]} features, got {X.shape}"
            )
        projection = X @ self._weights + self._offsets
        return np.sqrt(2.0 / self.n_components) * np.cos(projection)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform."""
        return self.fit(X).transform(X)

    def approximate_kernel(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """The kernel matrix implied by the map (for diagnostics)."""
        return self.transform(X) @ self.transform(Y).T
