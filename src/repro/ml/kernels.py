"""Explicit kernel feature maps (§III-C.1's ``g: R^d -> R^k``).

The paper notes anchor-link features "can be projected to different
feature spaces with various kernel functions" and then uses the linear
kernel for simplicity.  Because the model's closed-form ridge step
needs an *explicit* design matrix, we provide explicit maps rather than
kernel tricks:

* :class:`LinearMap` — identity (the paper's choice);
* :class:`PolynomialMap` — degree-2 expansion (pairwise products),
  capturing feature interactions such as "common neighbors AND common
  attributes" beyond the pre-stacked diagrams;
* :class:`RandomFourierMap` — Rahimi-Recht random Fourier features
  approximating the RBF kernel with a controllable output dimension;
* :class:`NystroemMap` — landmark (Nyström) features for any supported
  kernel: a seeded reservoir sample of rows becomes the landmark set,
  and ``z(x) = k(x, L) K_LL^{-1/2}`` reproduces the kernel exactly when
  the landmarks span the data (with ``n_landmarks >= n`` the implied
  kernel matrix is exact up to eigensolver rounding).

All maps are fitted on training rows only (where they need statistics)
and are deterministic given their seed.  :class:`NystroemMap` is the
one map whose fit consumes *data* rows rather than just the input
dimensionality, so it additionally offers :meth:`NystroemMap.fit_streamed`
— a single pass over feature blocks maintaining the reservoir — which
is what the streamed model backends use; ``fit`` is the single-block
special case, so a streamed fit over any block partition of ``X`` is
byte-identical to the dense fit.

Every map serializes to a plain-array :meth:`state_dict` and rebuilds
via :func:`feature_map_from_state`; that is how fitted maps cross
process boundaries (:mod:`repro.store.procwork`) and enter checkpoints.
"""

from __future__ import annotations

from itertools import combinations_with_replacement
from typing import Dict, Iterable, List, Optional

import numpy as np
from scipy import linalg

from repro.exceptions import ModelError, NotFittedError


class LinearMap:
    """Identity feature map (the paper's linear kernel)."""

    def fit(self, X: np.ndarray) -> "LinearMap":
        """No-op fit; returns self."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError("X must be 2-D")
        self._n_features = X.shape[1]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Return ``X`` unchanged (validated)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError("X must be 2-D")
        return X

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform."""
        return self.fit(X).transform(X)

    def state_dict(self) -> Dict:
        """Picklable fitted state (see :func:`feature_map_from_state`)."""
        return {"kind": "linear", "n_features": getattr(self, "_n_features", None)}

    @classmethod
    def from_state(cls, state: Dict) -> "LinearMap":
        """Rebuild a fitted map from :meth:`state_dict` output."""
        mapper = cls()
        mapper._n_features = state["n_features"]
        return mapper


class PolynomialMap:
    """Explicit degree-2 polynomial expansion.

    Output columns: the original features followed by all products
    ``x_i * x_j`` with ``i <= j``.  Dimensionality is
    ``d + d(d+1)/2``; with the paper's d = 32 this is 560 columns,
    still tiny next to |H|.
    """

    def __init__(self, include_original: bool = True) -> None:
        self.include_original = bool(include_original)
        self._n_features: Optional[int] = None

    def fit(self, X: np.ndarray) -> "PolynomialMap":
        """Record input dimensionality; returns self."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError("X must be 2-D")
        self._n_features = X.shape[1]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Expand to degree-2 interaction features."""
        if self._n_features is None:
            raise NotFittedError("PolynomialMap.fit has not been called")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self._n_features:
            raise ModelError(
                f"expected {self._n_features} features, got shape {X.shape}"
            )
        blocks: List[np.ndarray] = []
        if self.include_original:
            blocks.append(X)
        products = [
            X[:, i] * X[:, j]
            for i, j in combinations_with_replacement(range(X.shape[1]), 2)
        ]
        blocks.append(np.column_stack(products))
        return np.hstack(blocks)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform."""
        return self.fit(X).transform(X)

    def state_dict(self) -> Dict:
        """Picklable fitted state (see :func:`feature_map_from_state`)."""
        return {
            "kind": "poly",
            "include_original": self.include_original,
            "n_features": self._n_features,
        }

    @classmethod
    def from_state(cls, state: Dict) -> "PolynomialMap":
        """Rebuild a fitted map from :meth:`state_dict` output."""
        mapper = cls(include_original=state["include_original"])
        mapper._n_features = state["n_features"]
        return mapper


class RandomFourierMap:
    """Random Fourier features approximating the RBF kernel.

    ``z(x) = sqrt(2/k) * cos(W x + b)`` with ``W ~ N(0, 1/sigma**2)``
    and ``b ~ U[0, 2*pi)``; ``z(x)·z(y)`` approximates
    ``exp(-||x-y||² / (2 sigma²))`` (Rahimi & Recht, NIPS 2007).

    Parameters
    ----------
    n_components:
        Output dimension k.
    sigma:
        RBF bandwidth.
    seed:
        Seed for W and b (deterministic given the seed).
    """

    def __init__(
        self, n_components: int = 128, sigma: float = 1.0, seed: int = 0
    ) -> None:
        if n_components < 1:
            raise ModelError("n_components must be >= 1")
        if sigma <= 0:
            raise ModelError("sigma must be > 0")
        self.n_components = int(n_components)
        self.sigma = float(sigma)
        self.seed = int(seed)
        self._weights: Optional[np.ndarray] = None
        self._offsets: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "RandomFourierMap":
        """Draw the random projection for the input dimensionality."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError("X must be 2-D")
        rng = np.random.default_rng(self.seed)
        self._weights = rng.normal(
            scale=1.0 / self.sigma, size=(X.shape[1], self.n_components)
        )
        self._offsets = rng.uniform(0.0, 2.0 * np.pi, size=self.n_components)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project into the random Fourier feature space."""
        if self._weights is None or self._offsets is None:
            raise NotFittedError("RandomFourierMap.fit has not been called")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self._weights.shape[0]:
            raise ModelError(
                f"expected {self._weights.shape[0]} features, got {X.shape}"
            )
        projection = X @ self._weights + self._offsets
        return np.sqrt(2.0 / self.n_components) * np.cos(projection)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform."""
        return self.fit(X).transform(X)

    def approximate_kernel(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """The kernel matrix implied by the map (for diagnostics)."""
        return self.transform(X) @ self.transform(Y).T

    def state_dict(self) -> Dict:
        """Picklable fitted state (see :func:`feature_map_from_state`)."""
        if self._weights is None or self._offsets is None:
            raise NotFittedError("RandomFourierMap.fit has not been called")
        return {
            "kind": "fourier",
            "n_components": self.n_components,
            "sigma": self.sigma,
            "seed": self.seed,
            "weights": np.array(self._weights),
            "offsets": np.array(self._offsets),
        }

    @classmethod
    def from_state(cls, state: Dict) -> "RandomFourierMap":
        """Rebuild a fitted map from :meth:`state_dict` output."""
        mapper = cls(
            n_components=state["n_components"],
            sigma=state["sigma"],
            seed=state["seed"],
        )
        mapper._weights = np.asarray(state["weights"], dtype=np.float64)
        mapper._offsets = np.asarray(state["offsets"], dtype=np.float64)
        return mapper


class NystroemMap:
    """Landmark (Nyström) features for an explicit kernel choice.

    Landmarks L are a uniform reservoir sample of the data rows;
    the map is ``z(x) = k(x, L) @ N`` where ``N`` is the inverse square
    root of the (pseudo-inverted) landmark kernel matrix ``k(L, L)``,
    so ``z(x)·z(y) = k(x, L) k(L, L)⁺ k(L, y)`` — the standard Nyström
    approximation, exact whenever the landmarks span the data (in
    particular, with every row as a landmark the implied kernel matrix
    equals the true one up to eigensolver rounding).

    Unlike the other maps, fitting consumes *data rows*:
    :meth:`fit_streamed` maintains the reservoir over a stream of
    feature blocks — the landmark sample never needs the materialized
    matrix — and :meth:`fit` is the single-block special case, so the
    streamed fit over any block partition of ``X`` is byte-identical to
    the dense fit (the reservoir walks rows in the same order either
    way).

    Parameters
    ----------
    n_landmarks:
        Reservoir size m (fewer rows than m simply use them all).
    kernel:
        ``"rbf"`` (default), ``"poly"`` or ``"linear"``.
    sigma:
        RBF bandwidth (as on :class:`RandomFourierMap`).
    degree, coef0:
        Polynomial kernel ``(x·y + coef0) ** degree`` parameters.
    seed:
        Reservoir-sampling seed (deterministic given seed and row order).
    rcond:
        Relative eigenvalue cutoff of the landmark-kernel pseudo-inverse:
        directions with ``lambda <= rcond * lambda_max`` are dropped.
        Near-null directions carry ``1/sqrt(lambda)`` amplification, so
        a *smaller* cutoff reproduces the kernel more faithfully but
        magnifies downstream rounding (e.g. the one-ulp differences
        between block partitions of a BLAS product); the default keeps
        streamed and dense fits within 1e-8 of each other after scaling
        and solving.
    """

    def __init__(
        self,
        n_landmarks: int = 64,
        kernel: str = "rbf",
        sigma: float = 1.0,
        degree: int = 2,
        coef0: float = 1.0,
        seed: int = 0,
        rcond: float = 1e-9,
    ) -> None:
        if n_landmarks < 1:
            raise ModelError("n_landmarks must be >= 1")
        if kernel not in ("rbf", "poly", "linear"):
            raise ModelError(
                f"unknown kernel {kernel!r}; choose from rbf, poly, linear"
            )
        if sigma <= 0:
            raise ModelError("sigma must be > 0")
        if degree < 1:
            raise ModelError("degree must be >= 1")
        if not 0.0 < rcond < 1.0:
            raise ModelError("rcond must be in (0, 1)")
        self.rcond = float(rcond)
        self.n_landmarks = int(n_landmarks)
        self.kernel = kernel
        self.sigma = float(sigma)
        self.degree = int(degree)
        self.coef0 = float(coef0)
        self.seed = int(seed)
        self.landmarks_: Optional[np.ndarray] = None
        self.normalization_: Optional[np.ndarray] = None

    def _kernel_matrix(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """``k(X, Y)`` for the configured kernel."""
        if self.kernel == "linear":
            return X @ Y.T
        if self.kernel == "poly":
            return (X @ Y.T + self.coef0) ** self.degree
        squared = (
            np.sum(X * X, axis=1)[:, None]
            + np.sum(Y * Y, axis=1)[None, :]
            - 2.0 * (X @ Y.T)
        )
        np.maximum(squared, 0.0, out=squared)
        return np.exp(-squared / (2.0 * self.sigma**2))

    def fit_streamed(self, blocks: Iterable[np.ndarray]) -> "NystroemMap":
        """Fit landmarks from a stream of feature blocks (one pass).

        Maintains a seeded uniform reservoir (Algorithm R) over the
        concatenated rows, then factorizes the landmark kernel matrix.
        The sample — and therefore the fitted map — depends only on the
        seed and the row order, not on the block partition.
        """
        rng = np.random.default_rng(self.seed)
        reservoir: List[np.ndarray] = []
        seen = 0
        for block in blocks:
            block = np.asarray(block, dtype=np.float64)
            if block.ndim != 2:
                raise ModelError("feature blocks must be 2-D")
            for row in block:
                if len(reservoir) < self.n_landmarks:
                    reservoir.append(row.copy())
                else:
                    slot = int(rng.integers(0, seen + 1))
                    if slot < self.n_landmarks:
                        reservoir[slot] = row.copy()
                seen += 1
        if not reservoir:
            raise ModelError("cannot fit NystroemMap on zero rows")
        landmarks = np.vstack(reservoir)
        gram = self._kernel_matrix(landmarks, landmarks)
        values, vectors = linalg.eigh(gram)
        keep = values > max(float(values.max()), 0.0) * self.rcond
        if not keep.any():
            raise ModelError("landmark kernel matrix is numerically zero")
        self.landmarks_ = landmarks
        self.normalization_ = vectors[:, keep] / np.sqrt(values[keep])
        return self

    def fit(self, X: np.ndarray) -> "NystroemMap":
        """Fit on a dense matrix (equals a one-block streamed fit)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError("X must be 2-D")
        return self.fit_streamed([X])

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project rows into the landmark feature space."""
        if self.landmarks_ is None or self.normalization_ is None:
            raise NotFittedError("NystroemMap.fit has not been called")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.landmarks_.shape[1]:
            raise ModelError(
                f"expected {self.landmarks_.shape[1]} features, got {X.shape}"
            )
        return self._kernel_matrix(X, self.landmarks_) @ self.normalization_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform."""
        return self.fit(X).transform(X)

    def approximate_kernel(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """The kernel matrix implied by the map (for diagnostics)."""
        return self.transform(X) @ self.transform(Y).T

    def state_dict(self) -> Dict:
        """Picklable fitted state (see :func:`feature_map_from_state`)."""
        if self.landmarks_ is None or self.normalization_ is None:
            raise NotFittedError("NystroemMap.fit has not been called")
        return {
            "kind": "nystroem",
            "n_landmarks": self.n_landmarks,
            "kernel": self.kernel,
            "sigma": self.sigma,
            "degree": self.degree,
            "coef0": self.coef0,
            "seed": self.seed,
            "rcond": self.rcond,
            "landmarks": np.array(self.landmarks_),
            "normalization": np.array(self.normalization_),
        }

    @classmethod
    def from_state(cls, state: Dict) -> "NystroemMap":
        """Rebuild a fitted map from :meth:`state_dict` output."""
        mapper = cls(
            n_landmarks=state["n_landmarks"],
            kernel=state["kernel"],
            sigma=state["sigma"],
            degree=state["degree"],
            coef0=state["coef0"],
            seed=state["seed"],
            rcond=state.get("rcond", 1e-9),
        )
        mapper.landmarks_ = np.asarray(state["landmarks"], dtype=np.float64)
        mapper.normalization_ = np.asarray(
            state["normalization"], dtype=np.float64
        )
        return mapper


#: Feature maps addressable by name (CLI / MethodSpec knobs).
_FEATURE_MAPS = {
    "linear": LinearMap,
    "poly": PolynomialMap,
    "fourier": RandomFourierMap,
    "nystroem": NystroemMap,
}

#: Valid ``feature_map`` names, in registration order.
FEATURE_MAP_NAMES = tuple(_FEATURE_MAPS)


def make_feature_map(name: str, seed: int = 0, **kwargs):
    """Build an (unfitted) feature map from its registry name.

    ``seed`` reaches the maps that draw randomness (``fourier``,
    ``nystroem``); the deterministic maps ignore it.  Extra keyword
    arguments pass through to the map constructor.
    """
    try:
        factory = _FEATURE_MAPS[name]
    except KeyError:
        raise ModelError(
            f"unknown feature map {name!r}; choose from {FEATURE_MAP_NAMES}"
        ) from None
    if name in ("fourier", "nystroem"):
        kwargs.setdefault("seed", seed)
    return factory(**kwargs)


def feature_map_from_state(state: Dict):
    """Rebuild a fitted feature map from any map's :meth:`state_dict`.

    The inverse of ``state_dict`` across all map classes — this is how
    fitted maps travel through pickles (process work units, session
    checkpoints) as plain arrays rather than live objects.
    """
    kind = state.get("kind")
    try:
        factory = _FEATURE_MAPS[kind]
    except KeyError:
        raise ModelError(f"unknown feature map state kind {kind!r}") from None
    return factory.from_state(state)
