"""Ranking metrics for score-based alignment evaluation.

The paper evaluates hard 0/1 predictions; the alignment literature also
reports ranking quality of the underlying scores (Precision@k, average
precision, ROC-AUC, MRR).  This module implements them from scratch so
score-level comparisons between models (and against the unsupervised
baselines, which only produce scores) are possible.

Ties are handled conservatively and deterministically: sorting is
stable on the input order, and AUC uses the rank-sum (Mann-Whitney)
formulation with midranks.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.exceptions import ExperimentError


def _validate(y_true: np.ndarray, scores: np.ndarray):
    y_true = np.asarray(y_true).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if y_true.shape != scores.shape:
        raise ExperimentError(
            f"shape mismatch: truth {y_true.shape} vs scores {scores.shape}"
        )
    if y_true.size == 0:
        raise ExperimentError("cannot rank zero instances")
    unique = set(np.unique(y_true).tolist())
    if not unique <= {0, 1}:
        raise ExperimentError(f"truth must be 0/1, got {sorted(unique)}")
    if not np.all(np.isfinite(scores)):
        raise ExperimentError("scores contain non-finite values")
    return y_true, scores


def precision_at_k(y_true, scores, k: int) -> float:
    """Fraction of true positives among the k highest-scored instances."""
    y_true, scores = _validate(y_true, scores)
    if k < 1:
        raise ExperimentError("k must be >= 1")
    k = min(k, y_true.size)
    top = np.argsort(-scores, kind="stable")[:k]
    return float(y_true[top].sum() / k)


def recall_at_k(y_true, scores, k: int) -> float:
    """Fraction of all positives captured in the top k (0 if none exist)."""
    y_true, scores = _validate(y_true, scores)
    if k < 1:
        raise ExperimentError("k must be >= 1")
    n_positive = int(y_true.sum())
    if n_positive == 0:
        return 0.0
    k = min(k, y_true.size)
    top = np.argsort(-scores, kind="stable")[:k]
    return float(y_true[top].sum() / n_positive)


def average_precision(y_true, scores) -> float:
    """Area under the precision-recall curve (AP; 0 if no positives)."""
    y_true, scores = _validate(y_true, scores)
    n_positive = int(y_true.sum())
    if n_positive == 0:
        return 0.0
    order = np.argsort(-scores, kind="stable")
    hits = y_true[order]
    cumulative = np.cumsum(hits)
    ranks = np.arange(1, y_true.size + 1)
    precision_at_hits = cumulative[hits == 1] / ranks[hits == 1]
    return float(precision_at_hits.sum() / n_positive)


def roc_auc(y_true, scores) -> float:
    """ROC-AUC via the midrank Mann-Whitney statistic.

    Returns 0.5 when either class is empty (no ranking information).
    """
    y_true, scores = _validate(y_true, scores)
    n_positive = int(y_true.sum())
    n_negative = y_true.size - n_positive
    if n_positive == 0 or n_negative == 0:
        return 0.5
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(y_true.size, dtype=np.float64)
    ranks[order] = np.arange(1, y_true.size + 1)
    # Midranks for ties.
    sorted_scores = scores[order]
    start = 0
    for end in range(1, y_true.size + 1):
        if end == y_true.size or sorted_scores[end] != sorted_scores[start]:
            if end - start > 1:
                midrank = (start + 1 + end) / 2.0
                ranks[order[start:end]] = midrank
            start = end
    positive_rank_sum = ranks[y_true == 1].sum()
    u_statistic = positive_rank_sum - n_positive * (n_positive + 1) / 2.0
    return float(u_statistic / (n_positive * n_negative))


def mean_reciprocal_rank(y_true, scores) -> float:
    """Reciprocal rank of the first true positive (0 if none exist)."""
    y_true, scores = _validate(y_true, scores)
    order = np.argsort(-scores, kind="stable")
    hits = np.flatnonzero(y_true[order] == 1)
    if hits.size == 0:
        return 0.0
    return float(1.0 / (hits[0] + 1))


def ranking_report(
    y_true, scores, ks: Sequence[int] = (10, 50, 100)
) -> Dict[str, float]:
    """All ranking metrics in one dict (keys like ``"p@10"``)."""
    report: Dict[str, float] = {
        "ap": average_precision(y_true, scores),
        "auc": roc_auc(y_true, scores),
        "mrr": mean_reciprocal_rank(y_true, scores),
    }
    for k in ks:
        report[f"p@{k}"] = precision_at_k(y_true, scores, k)
        report[f"r@{k}"] = recall_at_k(y_true, scores, k)
    return report
