"""Binary classification metrics used in the paper's evaluation.

All metrics follow the usual conventions for the positive class ``1``:
precision and recall are ``0`` when their denominators are empty
(matching the paper's tables, where collapsed baselines report 0.000).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ExperimentError


@dataclass(frozen=True)
class ConfusionCounts:
    """Raw confusion-matrix counts for binary labels."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def total(self) -> int:
        """Number of evaluated instances."""
        return (
            self.true_positive
            + self.false_positive
            + self.true_negative
            + self.false_negative
        )


def confusion_counts(y_true: np.ndarray, y_pred: np.ndarray) -> ConfusionCounts:
    """Compute confusion counts; labels must be 0/1 arrays of equal length."""
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ExperimentError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    for name, values in (("y_true", y_true), ("y_pred", y_pred)):
        unique = set(np.unique(values).tolist())
        if not unique <= {0, 1}:
            raise ExperimentError(
                f"{name} must contain only 0/1, got {sorted(unique)}"
            )
    positive = y_true == 1
    predicted = y_pred == 1
    return ConfusionCounts(
        true_positive=int(np.sum(positive & predicted)),
        false_positive=int(np.sum(~positive & predicted)),
        true_negative=int(np.sum(~positive & ~predicted)),
        false_negative=int(np.sum(positive & ~predicted)),
    )


def precision_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Precision of the positive class (0 when nothing is predicted positive)."""
    counts = confusion_counts(y_true, y_pred)
    denominator = counts.true_positive + counts.false_positive
    if denominator == 0:
        return 0.0
    return counts.true_positive / denominator


def recall_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Recall of the positive class (0 when there are no positives)."""
    counts = confusion_counts(y_true, y_pred)
    denominator = counts.true_positive + counts.false_negative
    if denominator == 0:
        return 0.0
    return counts.true_positive / denominator


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    precision = precision_score(y_true, y_pred)
    recall = recall_score(y_true, y_pred)
    if precision + recall == 0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    counts = confusion_counts(y_true, y_pred)
    if counts.total == 0:
        raise ExperimentError("cannot compute accuracy of zero instances")
    return (counts.true_positive + counts.true_negative) / counts.total


@dataclass(frozen=True)
class ClassificationReport:
    """The four metrics the paper reports, bundled."""

    f1: float
    precision: float
    recall: float
    accuracy: float

    def as_dict(self) -> dict:
        """Plain-dict view (metric name -> value)."""
        return {
            "f1": self.f1,
            "precision": self.precision,
            "recall": self.recall,
            "accuracy": self.accuracy,
        }


def classification_report(
    y_true: np.ndarray, y_pred: np.ndarray
) -> ClassificationReport:
    """Compute F1 / precision / recall / accuracy in one pass."""
    counts = confusion_counts(y_true, y_pred)
    if counts.total == 0:
        raise ExperimentError("cannot evaluate zero instances")
    predicted_positive = counts.true_positive + counts.false_positive
    actual_positive = counts.true_positive + counts.false_negative
    precision = (
        counts.true_positive / predicted_positive if predicted_positive else 0.0
    )
    recall = counts.true_positive / actual_positive if actual_positive else 0.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    accuracy = (counts.true_positive + counts.true_negative) / counts.total
    return ClassificationReport(
        f1=f1, precision=precision, recall=recall, accuracy=accuracy
    )
