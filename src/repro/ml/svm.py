"""From-scratch linear support vector machines.

The paper's SVM-MP / SVM-MPMD baselines are classic supervised linear
SVMs.  Because this environment has no sklearn, we implement two
optimizers for the soft-margin linear SVM

    min_w  (1/2)||w||² + C Σ max(0, 1 - ỹ_i w·x_i),   ỹ ∈ {-1, +1}

* :class:`LinearSVC` — dual coordinate descent (the LIBLINEAR algorithm
  of Hsieh et al., ICML 2008); deterministic given a seed, converges to
  the dual optimum, the default everywhere.
* :class:`PegasosSVC` — primal stochastic subgradient (Shalev-Shwartz et
  al., 2007); kept as an independent implementation for cross-checks.

Both accept ``{0, 1}`` labels (the paper's label set) and remap them to
``{-1, +1}`` internally; ``predict`` returns ``{0, 1}``.

The dual coordinate descent itself lives in
:func:`dual_coordinate_descent`, which walks the design matrix as a
*list of row blocks* rather than one contiguous array.  ``LinearSVC``
calls it with a single block; the streamed model backend
(:class:`repro.ml.backends.StreamedLinearSVC`) calls it with cached
feature blocks — same rows, same update arithmetic, so the two are
bit-identical given the seed and the concatenated row order.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ModelError, NotFittedError


def dual_coordinate_descent(
    blocks: Sequence[np.ndarray],
    signed: np.ndarray,
    C: float,
    max_iter: int,
    tol: float,
    seed: int,
    sample_C: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, int]:
    """LIBLINEAR dual coordinate descent over row blocks.

    ``blocks`` hold the (already augmented) design rows; their
    concatenation is the design matrix, which is never materialized —
    each update reads exactly one row from its home block.  Every
    floating-point operation is per-row, so the result depends only on
    the concatenated row order, never on the block partition: any
    chopping of the same rows yields bit-identical weights.

    ``sample_C`` optionally gives each sample its own box constraint
    ``0 <= alpha_i <= C_i`` (the standard per-sample cost weighting);
    ``None`` uses the shared ``C`` and reproduces the unweighted
    optimizer exactly.

    Returns ``(w, n_iter)`` in the augmented design space.
    """
    offsets = np.concatenate(
        [[0], np.cumsum([block.shape[0] for block in blocks])]
    ).astype(np.int64)
    n_samples = int(offsets[-1])
    if signed.shape[0] != n_samples:
        raise ModelError(
            f"{signed.shape[0]} labels for {n_samples} design rows"
        )
    dim = blocks[0].shape[1]
    single = blocks[0] if len(blocks) == 1 else None

    alpha = np.zeros(n_samples)
    w = np.zeros(dim)
    # Squared norms; guard zero rows so the division below is safe.
    q_diag = np.concatenate(
        [np.einsum("ij,ij->i", block, block) for block in blocks]
    )
    box = np.full(n_samples, C) if sample_C is None else sample_C
    rng = np.random.default_rng(seed)
    order = np.arange(n_samples)

    converged_at = max_iter
    for iteration in range(max_iter):
        rng.shuffle(order)
        max_violation = 0.0
        for i in order:
            if q_diag[i] == 0.0 or box[i] == 0.0:
                continue
            if single is not None:
                row = single[i]
            else:
                block_index = int(
                    np.searchsorted(offsets, i, side="right") - 1
                )
                row = blocks[block_index][i - offsets[block_index]]
            margin = signed[i] * (row @ w)
            gradient = margin - 1.0
            # Projected gradient for the box constraint 0<=alpha<=C_i.
            if alpha[i] == 0.0:
                projected = min(gradient, 0.0)
            elif alpha[i] == box[i]:
                projected = max(gradient, 0.0)
            else:
                projected = gradient
            max_violation = max(max_violation, abs(projected))
            if projected != 0.0:
                old_alpha = alpha[i]
                alpha[i] = min(
                    max(old_alpha - gradient / q_diag[i], 0.0), box[i]
                )
                delta = (alpha[i] - old_alpha) * signed[i]
                if delta != 0.0:
                    w += delta * row
        if max_violation < tol:
            converged_at = iteration + 1
            break
    return w, converged_at


def _validate_training_input(X: np.ndarray, y: np.ndarray) -> tuple:
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).ravel()
    if X.ndim != 2:
        raise ModelError("X must be a 2-D array")
    if y.shape[0] != X.shape[0]:
        raise ModelError(
            f"{y.shape[0]} labels for {X.shape[0]} samples"
        )
    unique = set(np.unique(y).tolist())
    if not unique <= {0, 1}:
        raise ModelError(f"labels must be in {{0, 1}}, got {sorted(unique)}")
    signed = np.where(y > 0, 1.0, -1.0)
    return X, signed


class LinearSVC:
    """Soft-margin linear SVM trained by dual coordinate descent.

    Parameters
    ----------
    C:
        Inverse regularization strength (larger = less regularization).
    max_iter:
        Maximum full passes over the data.
    tol:
        Stop when the largest projected-gradient violation in a pass
        falls below this threshold.
    fit_intercept:
        Learn a bias via the standard augmented-feature trick.
    seed:
        Seed for coordinate-order shuffling (training is deterministic
        given the seed).
    """

    def __init__(
        self,
        C: float = 1.0,
        max_iter: int = 1000,
        tol: float = 1e-4,
        fit_intercept: bool = True,
        seed: int = 0,
    ) -> None:
        if C <= 0:
            raise ModelError(f"C must be > 0, got {C}")
        if max_iter < 1:
            raise ModelError("max_iter must be >= 1")
        self.C = float(C)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.fit_intercept = bool(fit_intercept)
        self.seed = int(seed)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "LinearSVC":
        """Fit on ``{0, 1}``-labeled data; returns self.

        ``sample_weight`` optionally reweights each sample's hinge-loss
        cost: sample ``i`` trains under the box constraint
        ``0 <= alpha_i <= C * sample_weight[i]`` (the standard
        cost-weighted SVM, via the per-sample ``sample_C`` path of
        :func:`dual_coordinate_descent`).  Uniform weights of 1.0
        reproduce the unweighted fit bit-for-bit; a zero weight removes
        the sample from the margin entirely.
        """
        X, signed = _validate_training_input(X, y)
        n_samples, n_features = X.shape
        if n_samples == 0:
            raise ModelError("cannot fit on zero samples")
        sample_C = None
        if sample_weight is not None:
            sample_weight = np.asarray(
                sample_weight, dtype=np.float64
            ).ravel()
            if sample_weight.shape[0] != n_samples:
                raise ModelError(
                    f"sample_weight has {sample_weight.shape[0]} entries "
                    f"for {n_samples} samples"
                )
            if not np.all(np.isfinite(sample_weight)) or np.any(
                sample_weight < 0
            ):
                raise ModelError(
                    "sample_weight entries must be finite and >= 0"
                )
            sample_C = self.C * sample_weight
        if len(set(signed.tolist())) < 2:
            # Degenerate single-class training set: behave like the
            # majority-class predictor (hyperplane pushed to one side).
            self.coef_ = np.zeros(n_features)
            self.intercept_ = float(signed[0]) * 1.0
            self.n_iter_ = 0
            return self

        design = X
        if self.fit_intercept:
            design = np.hstack([X, np.ones((n_samples, 1))])
        w, self.n_iter_ = dual_coordinate_descent(
            [design],
            signed,
            C=self.C,
            max_iter=self.max_iter,
            tol=self.tol,
            seed=self.seed,
            sample_C=sample_C,
        )

        if self.fit_intercept:
            self.coef_ = w[:-1].copy()
            self.intercept_ = float(w[-1])
        else:
            self.coef_ = w.copy()
            self.intercept_ = 0.0
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed distances ``w·x + b``."""
        if self.coef_ is None:
            raise NotFittedError("LinearSVC.fit has not been called")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.coef_ + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted ``{0, 1}`` labels."""
        return (self.decision_function(X) > 0).astype(np.int64)


class PegasosSVC:
    """Primal SGD linear SVM (Pegasos), for cross-validation of LinearSVC.

    Parameters
    ----------
    lam:
        Regularization strength (Pegasos λ ≈ 1 / (C · n_samples)).
    n_epochs:
        Passes over the data.
    fit_intercept:
        Learn an (unregularized) bias term.
    seed:
        Seed for sampling order.
    """

    def __init__(
        self,
        lam: float = 1e-3,
        n_epochs: int = 50,
        fit_intercept: bool = True,
        seed: int = 0,
    ) -> None:
        if lam <= 0:
            raise ModelError(f"lam must be > 0, got {lam}")
        if n_epochs < 1:
            raise ModelError("n_epochs must be >= 1")
        self.lam = float(lam)
        self.n_epochs = int(n_epochs)
        self.fit_intercept = bool(fit_intercept)
        self.seed = int(seed)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "PegasosSVC":
        """Fit on ``{0, 1}``-labeled data; returns self.

        The bias is folded into the (regularized) weight vector via a
        constant feature — a slight deviation from the textbook
        unregularized intercept that keeps the 1/(λt) step sizes stable —
        and the standard ``1/√λ``-ball projection step is applied.
        """
        X, signed = _validate_training_input(X, y)
        n_samples = X.shape[0]
        if n_samples == 0:
            raise ModelError("cannot fit on zero samples")
        design = X
        if self.fit_intercept:
            design = np.hstack([X, np.ones((n_samples, 1))])
        rng = np.random.default_rng(self.seed)
        w = np.zeros(design.shape[1])
        radius = 1.0 / np.sqrt(self.lam)
        t = 0
        for _ in range(self.n_epochs):
            for i in rng.permutation(n_samples):
                t += 1
                eta = 1.0 / (self.lam * t)
                margin = signed[i] * (design[i] @ w)
                w *= 1.0 - eta * self.lam
                if margin < 1.0:
                    w += eta * signed[i] * design[i]
                norm = np.linalg.norm(w)
                if norm > radius:
                    w *= radius / norm
        if self.fit_intercept:
            self.coef_ = w[:-1].copy()
            self.intercept_ = float(w[-1])
        else:
            self.coef_ = w
            self.intercept_ = 0.0
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed distances ``w·x + b``."""
        if self.coef_ is None:
            raise NotFittedError("PegasosSVC.fit has not been called")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.coef_ + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted ``{0, 1}`` labels."""
        return (self.decision_function(X) > 0).astype(np.int64)
