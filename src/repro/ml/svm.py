"""From-scratch linear support vector machines.

The paper's SVM-MP / SVM-MPMD baselines are classic supervised linear
SVMs.  Because this environment has no sklearn, we implement two
optimizers for the soft-margin linear SVM

    min_w  (1/2)||w||² + C Σ max(0, 1 - ỹ_i w·x_i),   ỹ ∈ {-1, +1}

* :class:`LinearSVC` — dual coordinate descent (the LIBLINEAR algorithm
  of Hsieh et al., ICML 2008); deterministic given a seed, converges to
  the dual optimum, the default everywhere.
* :class:`PegasosSVC` — primal stochastic subgradient (Shalev-Shwartz et
  al., 2007); kept as an independent implementation for cross-checks.

Both accept ``{0, 1}`` labels (the paper's label set) and remap them to
``{-1, +1}`` internally; ``predict`` returns ``{0, 1}``.

The dual coordinate descent itself lives in
:func:`dual_coordinate_descent`, which walks the design matrix as a
*list of row blocks* rather than one contiguous array.  ``LinearSVC``
calls it with a single block; the streamed model backend
(:class:`repro.ml.backends.StreamedLinearSVC`) calls it with cached
feature blocks — same rows, same update arithmetic, so the two are
bit-identical given the seed and the concatenated row order.

Shrinking (``shrink=True``, the default) adds a LIBLINEAR-style working
set on top without giving up that guarantee.  The classic heuristic
shrinks bound-pinned duals and accepts a slightly different iterate; we
instead *certify* every skipped visit as an exact no-op of the unshrunk
sweep: when a visit finds a dual pinned at a bound with the gradient
pointing outward by more than the adaptive tolerance window, the exact
computed gradient is cached together with a snapshot of the cumulative
weight drift ``Σ |Δalpha_i| · ||x_i||``.  Because a later visit's
gradient can move by at most ``||x_i||`` times the drift accumulated
since the snapshot (Cauchy–Schwarz), any visit whose cached slack still
exceeds that bound (plus a floating-point guard) would compute a
projected gradient of exactly ``0.0`` — no update, no contribution to
the convergence measure — so it can be skipped without touching the
row.  Epochs still shuffle the *full* index order (identical RNG
stream), skips are resolved in bulk with a vectorized mask, and a final
unshrink+verify pass re-reads every shrunk row to validate the
certificates, making the shrunk solver bit-identical to ``shrink=False``
for the same seed and row order while doing near-zero work per pinned
dual at convergence.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ModelError, NotFittedError


def _row_lookup(blocks, offsets, single):
    """Row accessor shared by the shrunk and unshrunk sweeps."""

    def lookup(i: int) -> np.ndarray:
        if single is not None:
            return single[i]
        block_index = int(np.searchsorted(offsets, i, side="right") - 1)
        return blocks[block_index][i - offsets[block_index]]

    return lookup


def dual_coordinate_descent(
    blocks: Sequence[np.ndarray],
    signed: np.ndarray,
    C: float,
    max_iter: int,
    tol: float,
    seed: int,
    sample_C: Optional[np.ndarray] = None,
    shrink: bool = True,
    stats: Optional[Dict[str, float]] = None,
) -> Tuple[np.ndarray, int]:
    """LIBLINEAR dual coordinate descent over row blocks.

    ``blocks`` hold the (already augmented) design rows; their
    concatenation is the design matrix, which is never materialized —
    each update reads exactly one row from its home block.  Every
    floating-point operation is per-row, so the result depends only on
    the concatenated row order, never on the block partition: any
    chopping of the same rows yields bit-identical weights.

    ``sample_C`` optionally gives each sample its own box constraint
    ``0 <= alpha_i <= C_i`` (the standard per-sample cost weighting);
    ``None`` uses the shared ``C`` and reproduces the unweighted
    optimizer exactly.

    ``shrink=True`` runs the certified working-set sweep described in
    the module docstring: bit-identical weights and iteration count to
    ``shrink=False``, but visits to provably-pinned duals are skipped in
    bulk.  ``stats``, when given a dict, is filled with shrink telemetry
    (``epochs``, ``active_visits``, ``skipped_visits``, ``rescreens``,
    ``screened_final``, ``verify_checked``, ``verify_max_residual``,
    ``drift``).

    Returns ``(w, n_iter)`` in the augmented design space.
    """
    offsets = np.concatenate(
        [[0], np.cumsum([block.shape[0] for block in blocks])]
    ).astype(np.int64)
    n_samples = int(offsets[-1])
    if signed.shape[0] != n_samples:
        raise ModelError(
            f"{signed.shape[0]} labels for {n_samples} design rows"
        )
    dim = blocks[0].shape[1]
    single = blocks[0] if len(blocks) == 1 else None

    alpha = np.zeros(n_samples)
    w = np.zeros(dim)
    # Squared norms; guard zero rows so the division below is safe.
    q_diag = np.concatenate(
        [np.einsum("ij,ij->i", block, block) for block in blocks]
    )
    box = np.full(n_samples, C) if sample_C is None else sample_C
    rng = np.random.default_rng(seed)
    order = np.arange(n_samples)
    row_at = _row_lookup(blocks, offsets, single)

    if not shrink:
        converged_at = max_iter
        for iteration in range(max_iter):
            rng.shuffle(order)
            max_violation = 0.0
            for i in order:
                if q_diag[i] == 0.0 or box[i] == 0.0:
                    continue
                row = row_at(i)
                margin = signed[i] * (row @ w)
                gradient = margin - 1.0
                # Projected gradient for the box 0<=alpha<=C_i.
                if alpha[i] == 0.0:
                    projected = min(gradient, 0.0)
                elif alpha[i] == box[i]:
                    projected = max(gradient, 0.0)
                else:
                    projected = gradient
                max_violation = max(max_violation, abs(projected))
                if projected != 0.0:
                    old_alpha = alpha[i]
                    alpha[i] = min(
                        max(old_alpha - gradient / q_diag[i], 0.0), box[i]
                    )
                    delta = (alpha[i] - old_alpha) * signed[i]
                    if delta != 0.0:
                        w += delta * row
            if max_violation < tol:
                converged_at = iteration + 1
                break
        return w, converged_at

    # --- certified working-set sweep -----------------------------------
    eps = float(np.finfo(np.float64).eps)
    row_norm = np.sqrt(q_diag)
    dead = (q_diag == 0.0) | (box == 0.0)
    # Certificate state: a dual recorded pinned with an outward gradient
    # of magnitude ``screen_slack`` at cumulative drift ``screen_snap``
    # is an exact no-op of the unshrunk sweep for any visit while
    # drift <= snap + slack/||x_i||.  Certificates are refreshed in bulk
    # (one matvec over pinned duals) at the start of each screening
    # round, so slack only has to outlive one round's drift budget —
    # the adaptive tolerance window — not a whole epoch.
    screenable = np.zeros(n_samples, dtype=bool)
    screen_slack = np.zeros(n_samples)
    screen_snap = np.zeros(n_samples)
    drift_total = 0.0
    budget = 0.0  # drift headroom granted to each screening round
    epochs_run = 0
    active_visits = 0
    skipped_visits = 0
    rescreens = 0

    def refresh_certificates(cand: np.ndarray) -> None:
        """Recompute certificates for the given duals (vectorized)."""
        for b in range(len(blocks)):
            lo = int(offsets[b])
            hi = int(offsets[b + 1])
            sel = cand[(cand >= lo) & (cand < hi)]
            if sel.size == 0:
                continue
            rows = blocks[b][sel - lo]
            grads = signed[sel] * (rows @ w) - 1.0
            slack = np.where(alpha[sel] == 0.0, grads, -grads)
            fresh = slack > 0.0
            sub = sel[fresh]
            screenable[sub] = True
            screen_slack[sub] = slack[fresh]
            screen_snap[sub] = drift_total
            screenable[sel[~fresh]] = False

    converged_at = max_iter
    for iteration in range(max_iter):
        rng.shuffle(order)
        max_violation = 0.0
        epoch_start_drift = drift_total
        pos = 0
        rounds = 0
        while pos < n_samples:
            rounds += 1
            if rounds > 1:
                rescreens += 1
            if rounds % 32 == 0:
                budget *= 2.0  # runaway-round safeguard
            allowance = drift_total + budget
            # Guard absorbs rounding of the row@w dot products; scaled
            # by dim and the weight-norm bound (||w|| <= drift_total).
            guard = 64.0 * eps * dim * row_norm * (allowance + 1.0)
            covers_round = (
                screen_slack - row_norm * (allowance - screen_snap) > guard
            )
            # Refresh only the pinned duals whose certificate no longer
            # covers this round; still-covered ones keep their cert.
            stale = (
                ~dead
                & ((alpha == 0.0) | (alpha == box))
                & ~(screenable & covers_round)
            )
            if stale.any():
                refresh_certificates(np.flatnonzero(stale))
                covers_round = (
                    screen_slack - row_norm * (allowance - screen_snap)
                    > guard
                )
            certified = screenable & covers_round
            visits = order[pos:]
            if not certified[visits].any():
                # Only dead duals are skipped; those never expire, so
                # this round cannot be invalidated by drift.
                allowance = np.inf
            active_rel = np.flatnonzero(~(dead | certified)[visits])
            breached = False
            for k in range(active_rel.size):
                rel = int(active_rel[k])
                i = int(visits[rel])
                active_visits += 1
                row = row_at(i)
                margin = signed[i] * (row @ w)
                gradient = margin - 1.0
                a = alpha[i]
                if a == 0.0:
                    projected = min(gradient, 0.0)
                elif a == box[i]:
                    projected = max(gradient, 0.0)
                else:
                    projected = gradient
                max_violation = max(max_violation, abs(projected))
                if projected != 0.0:
                    screenable[i] = False
                    alpha[i] = min(
                        max(a - gradient / q_diag[i], 0.0), box[i]
                    )
                    delta = (alpha[i] - a) * signed[i]
                    if delta != 0.0:
                        w += delta * row
                        drift_total += abs(delta) * row_norm[i]
                        if drift_total > allowance:
                            # Certificates past this visit may have
                            # expired: re-screen the rest of the epoch.
                            skipped_visits += rel - k
                            pos += rel + 1
                            breached = True
                            break
                elif a == 0.0 or a == box[i]:
                    # Pinned with an outward (or zero) gradient: the
                    # exact no-op branch of the unshrunk sweep; refresh
                    # the certificate from the exact per-row value.
                    slack = gradient if a == 0.0 else -gradient
                    if slack > 0.0:
                        screenable[i] = True
                        screen_slack[i] = slack
                        screen_snap[i] = drift_total
                    else:
                        screenable[i] = False
            if not breached:
                skipped_visits += visits.size - active_rel.size
                pos = n_samples
        epochs_run += 1
        # Next epoch's round window: a fraction of this epoch's drift,
        # so ~16 cheap vectorized re-screens replace per-row visits.
        budget = (drift_total - epoch_start_drift) / 16.0
        if max_violation < tol:
            converged_at = iteration + 1
            break

    verify_checked, verify_max_residual = _unshrink_verify(
        (
            (int(offsets[b]), blocks[b])
            for b in range(len(blocks))
        ),
        signed, w, alpha, box, row_norm,
        screenable, screen_slack, screen_snap, drift_total, dim, eps,
    )
    if stats is not None:
        stats.update(
            epochs=epochs_run,
            active_visits=active_visits,
            skipped_visits=skipped_visits,
            rescreens=rescreens,
            screened_final=int(np.count_nonzero(screenable)),
            verify_checked=verify_checked,
            verify_max_residual=verify_max_residual,
            drift=drift_total,
        )
    return w, converged_at


def _unshrink_verify(
    design_blocks, signed, w, alpha, box, row_norm,
    screenable, screen_slack, screen_snap, drift_total, dim, eps,
) -> Tuple[int, float]:
    """Full unshrink pass over every shrunk dual at the final weights.

    ``design_blocks`` is an iterator of ``(offset, block)`` design rows
    covering the whole sample range (an in-memory block list or a fresh
    stream off the arena).  Recomputes each certificate-holding dual's
    gradient from its row and validates the certificate invariant: the
    dual is still pinned at a bound and its outward slack has decayed by
    no more than the drift bound allows.  A violation means the
    screening bookkeeping is broken (it cannot arise from the
    mathematics), so it raises ``ModelError`` rather than silently
    diverging from the unshrunk solver.  Returns
    ``(n_checked, max_kkt_residual)``; the residual is informational —
    a shrunk dual's violation at the *final* weights is shared by the
    unshrunk solver's output, whose stopping rule also measures
    violations at visit time.
    """
    idx = np.flatnonzero(screenable)
    if idx.size == 0:
        return 0, 0.0
    max_residual = 0.0
    for offset, block in design_blocks:
        lo = int(offset)
        hi = lo + block.shape[0]
        sel = idx[(idx >= lo) & (idx < hi)]
        if sel.size == 0:
            continue
        rows = block[sel - lo]
        grads = signed[sel] * (rows @ w) - 1.0
        at_low = alpha[sel] == 0.0
        at_high = alpha[sel] == box[sel]
        if not bool(np.all(at_low | at_high)):
            raise ModelError(
                "shrinking invariant violated: shrunk dual left its bound"
            )
        slack_now = np.where(at_low, grads, -grads)
        decay = row_norm[sel] * (drift_total - screen_snap[sel])
        guard = 256.0 * eps * dim * row_norm[sel] * (drift_total + 1.0)
        if bool(np.any(slack_now < screen_slack[sel] - decay - guard)):
            raise ModelError(
                "shrinking invariant violated: certificate decayed past "
                "its drift bound"
            )
        residual = np.maximum(0.0, -slack_now)
        if residual.size:
            max_residual = max(max_residual, float(residual.max()))
    return int(idx.size), max_residual


def _validate_training_input(X: np.ndarray, y: np.ndarray) -> tuple:
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).ravel()
    if X.ndim != 2:
        raise ModelError("X must be a 2-D array")
    if y.shape[0] != X.shape[0]:
        raise ModelError(
            f"{y.shape[0]} labels for {X.shape[0]} samples"
        )
    unique = set(np.unique(y).tolist())
    if not unique <= {0, 1}:
        raise ModelError(f"labels must be in {{0, 1}}, got {sorted(unique)}")
    signed = np.where(y > 0, 1.0, -1.0)
    return X, signed


class LinearSVC:
    """Soft-margin linear SVM trained by dual coordinate descent.

    Parameters
    ----------
    C:
        Inverse regularization strength (larger = less regularization).
    max_iter:
        Maximum full passes over the data.
    tol:
        Stop when the largest projected-gradient violation in a pass
        falls below this threshold.
    fit_intercept:
        Learn a bias via the standard augmented-feature trick.
    seed:
        Seed for coordinate-order shuffling (training is deterministic
        given the seed).
    shrink:
        Run the certified working-set sweep (bit-identical to the full
        sweep, near-zero work per pinned dual); ``False`` forces the
        plain full-sweep reference.
    """

    def __init__(
        self,
        C: float = 1.0,
        max_iter: int = 1000,
        tol: float = 1e-4,
        fit_intercept: bool = True,
        seed: int = 0,
        shrink: bool = True,
    ) -> None:
        if C <= 0:
            raise ModelError(f"C must be > 0, got {C}")
        if max_iter < 1:
            raise ModelError("max_iter must be >= 1")
        self.C = float(C)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.fit_intercept = bool(fit_intercept)
        self.seed = int(seed)
        self.shrink = bool(shrink)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0
        self.shrink_stats_: dict = {}

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "LinearSVC":
        """Fit on ``{0, 1}``-labeled data; returns self.

        ``sample_weight`` optionally reweights each sample's hinge-loss
        cost: sample ``i`` trains under the box constraint
        ``0 <= alpha_i <= C * sample_weight[i]`` (the standard
        cost-weighted SVM, via the per-sample ``sample_C`` path of
        :func:`dual_coordinate_descent`).  Uniform weights of 1.0
        reproduce the unweighted fit bit-for-bit; a zero weight removes
        the sample from the margin entirely.
        """
        X, signed = _validate_training_input(X, y)
        n_samples, n_features = X.shape
        if n_samples == 0:
            raise ModelError("cannot fit on zero samples")
        sample_C = None
        if sample_weight is not None:
            sample_weight = np.asarray(
                sample_weight, dtype=np.float64
            ).ravel()
            if sample_weight.shape[0] != n_samples:
                raise ModelError(
                    f"sample_weight has {sample_weight.shape[0]} entries "
                    f"for {n_samples} samples"
                )
            if not np.all(np.isfinite(sample_weight)) or np.any(
                sample_weight < 0
            ):
                raise ModelError(
                    "sample_weight entries must be finite and >= 0"
                )
            sample_C = self.C * sample_weight
        if len(set(signed.tolist())) < 2:
            # Degenerate single-class training set: behave like the
            # majority-class predictor (hyperplane pushed to one side).
            self.coef_ = np.zeros(n_features)
            self.intercept_ = float(signed[0]) * 1.0
            self.n_iter_ = 0
            self.shrink_stats_ = {}
            return self

        design = X
        if self.fit_intercept:
            design = np.hstack([X, np.ones((n_samples, 1))])
        self.shrink_stats_ = {}
        w, self.n_iter_ = dual_coordinate_descent(
            [design],
            signed,
            C=self.C,
            max_iter=self.max_iter,
            tol=self.tol,
            seed=self.seed,
            sample_C=sample_C,
            shrink=self.shrink,
            stats=self.shrink_stats_ if self.shrink else None,
        )

        if self.fit_intercept:
            self.coef_ = w[:-1].copy()
            self.intercept_ = float(w[-1])
        else:
            self.coef_ = w.copy()
            self.intercept_ = 0.0
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed distances ``w·x + b``."""
        if self.coef_ is None:
            raise NotFittedError("LinearSVC.fit has not been called")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.coef_ + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted ``{0, 1}`` labels."""
        return (self.decision_function(X) > 0).astype(np.int64)


class PegasosSVC:
    """Primal SGD linear SVM (Pegasos), for cross-validation of LinearSVC.

    Parameters
    ----------
    lam:
        Regularization strength (Pegasos λ ≈ 1 / (C · n_samples)).
    n_epochs:
        Passes over the data.
    fit_intercept:
        Learn an (unregularized) bias term.
    seed:
        Seed for sampling order.
    """

    def __init__(
        self,
        lam: float = 1e-3,
        n_epochs: int = 50,
        fit_intercept: bool = True,
        seed: int = 0,
    ) -> None:
        if lam <= 0:
            raise ModelError(f"lam must be > 0, got {lam}")
        if n_epochs < 1:
            raise ModelError("n_epochs must be >= 1")
        self.lam = float(lam)
        self.n_epochs = int(n_epochs)
        self.fit_intercept = bool(fit_intercept)
        self.seed = int(seed)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "PegasosSVC":
        """Fit on ``{0, 1}``-labeled data; returns self.

        The bias is folded into the (regularized) weight vector via a
        constant feature — a slight deviation from the textbook
        unregularized intercept that keeps the 1/(λt) step sizes stable —
        and the standard ``1/√λ``-ball projection step is applied.

        ``sample_weight`` scales each sample's hinge subgradient (the
        step becomes ``eta * weight_i * y_i * x_i``); the regularization
        shrink and step-count schedule are unchanged, so uniform weights
        of 1.0 reproduce the unweighted fit bit-for-bit and a zero
        weight removes the sample's pull on the margin.
        """
        X, signed = _validate_training_input(X, y)
        n_samples = X.shape[0]
        if n_samples == 0:
            raise ModelError("cannot fit on zero samples")
        weights = None
        if sample_weight is not None:
            weights = np.asarray(sample_weight, dtype=np.float64).ravel()
            if weights.shape[0] != n_samples:
                raise ModelError(
                    f"sample_weight has {weights.shape[0]} entries "
                    f"for {n_samples} samples"
                )
            if not np.all(np.isfinite(weights)) or np.any(weights < 0):
                raise ModelError(
                    "sample_weight entries must be finite and >= 0"
                )
        design = X
        if self.fit_intercept:
            design = np.hstack([X, np.ones((n_samples, 1))])
        rng = np.random.default_rng(self.seed)
        w = np.zeros(design.shape[1])
        radius = 1.0 / np.sqrt(self.lam)
        t = 0
        for _ in range(self.n_epochs):
            for i in rng.permutation(n_samples):
                t += 1
                eta = 1.0 / (self.lam * t)
                margin = signed[i] * (design[i] @ w)
                w *= 1.0 - eta * self.lam
                if margin < 1.0:
                    step = eta if weights is None else eta * weights[i]
                    w += step * signed[i] * design[i]
                norm = np.linalg.norm(w)
                if norm > radius:
                    w *= radius / norm
        if self.fit_intercept:
            self.coef_ = w[:-1].copy()
            self.intercept_ = float(w[-1])
        else:
            self.coef_ = w
            self.intercept_ = 0.0
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed distances ``w·x + b``."""
        if self.coef_ is None:
            raise NotFittedError("PegasosSVC.fit has not been called")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.coef_ + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted ``{0, 1}`` labels."""
        return (self.decision_function(X) > 0).astype(np.int64)
