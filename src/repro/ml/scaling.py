"""Feature scaling utilities.

Proximity features already live in ``[0, 1]``, but their per-column
scales differ by orders of magnitude (attribute diagrams are much
sparser than follow paths); standardizing helps the SVM baselines, which
are scale-sensitive.  The scaler learns statistics on the training rows
only and is applied to all rows, the standard leakage-safe pattern.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ModelError, NotFittedError


class StandardScaler:
    """Column-wise standardization ``(x - mean) / std``.

    Columns with zero variance pass through unchanged (divided by 1)
    so constant features — such as the dummy bias column — survive.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True) -> None:
        self.with_mean = bool(with_mean)
        self.with_std = bool(with_std)
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Learn column means/stds from ``X``; returns self."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError("X must be a 2-D array")
        if X.shape[0] == 0:
            raise ModelError("cannot fit scaler on zero rows")
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            std[std == 0] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply learned standardization."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.fit has not been called")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.mean_.shape[0]:
            raise ModelError(
                f"expected {self.mean_.shape[0]} columns, got shape {X.shape}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(X).transform(X)
