"""Observability: tracing, metrics, and structured logging.

``repro.obs`` is the telemetry layer under the whole reproduction:

* :mod:`repro.obs.tracing` — a low-overhead span tracer whose
  picklable :class:`~repro.obs.tracing.TraceContext` rides
  ``ProcessExecutor`` job payloads and the RPC frame protocol, so one
  trace id links driver dispatch, blob sync, worker execution,
  retries, and straggler re-dispatch across hosts;
* :mod:`repro.obs.metrics` — a registry of named counters, gauges,
  and histograms that unifies the session, RPC, and runtime counter
  surfaces behind one API (the legacy dataclass-shaped views —
  ``SessionStats``, ``RPCMetrics`` — remain as thin facades);
* :mod:`repro.obs.logsetup` — opt-in structured ``logging``
  configuration for every ``repro.*`` module logger;
* :mod:`repro.obs.report` — readers for the JSONL trace sink
  (per-name summaries, parent/child trees) behind
  ``repro.cli trace {summarize,tree}``.

The disabled tracer is a shared no-op constant; nothing in the hot
paths pays for telemetry that was not asked for.
"""

from repro.obs.logsetup import logging_setup
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from repro.obs.tracing import (
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    configure_tracing,
    get_tracer,
    set_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceContext",
    "Tracer",
    "configure_tracing",
    "get_tracer",
    "global_registry",
    "logging_setup",
    "set_tracer",
]
