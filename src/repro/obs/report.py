"""Readers for the trace JSONL sink: summaries and span trees.

These back ``repro.cli trace summarize`` and ``repro.cli trace tree``.
Both consume the line-per-span files written by
:class:`repro.obs.tracing.JsonlSink` (the rotated ``.1`` generation,
when present, is read first so durations aggregate across a rotation)
plus any ``trace-worker-*.jsonl`` siblings that same-host worker
processes appended next to the driver's file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

__all__ = [
    "load_spans",
    "summarize_spans",
    "format_trace_trees",
    "format_metrics_snapshot",
]


def load_spans(
    path: Union[str, Path], include_workers: bool = True
) -> List[Dict]:
    """Every span record reachable from ``path``, in file order."""
    path = Path(path)
    files: List[Path] = []
    rotated = path.with_name(path.name + ".1")
    if rotated.exists():
        files.append(rotated)
    if path.exists():
        files.append(path)
    if include_workers:
        files.extend(sorted(path.parent.glob("trace-worker-*.jsonl")))
    if not files:
        raise FileNotFoundError(f"no trace file at {path}")
    spans: List[Dict] = []
    for file in files:
        with open(file, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # a torn final line from a live writer
                if isinstance(record, dict) and "span" in record:
                    spans.append(record)
    return spans


def summarize_spans(spans: Iterable[Dict]) -> str:
    """Per-name aggregate: count, total/mean/max elapsed seconds.

    When ``rpc.dispatch`` spans are present their ``worker`` /
    ``window`` / ``jobs`` annotations are rolled up into a per-worker
    pipeline-occupancy table, so a saturated vs starved fleet is
    visible from the trace file alone.
    """
    spans = list(spans)
    stats: Dict[str, List[float]] = {}
    traces = set()
    for span in spans:
        traces.add(span.get("trace"))
        stats.setdefault(span.get("name", "?"), []).append(
            float(span.get("elapsed", 0.0))
        )
    if not stats:
        return "no spans"
    name_width = max(len(name) for name in stats) + 2
    lines = [
        f"{len(sum(stats.values(), []))} spans across "
        f"{len(traces)} trace(s)",
        "",
        f"{'name':<{name_width}} {'count':>6} {'total_s':>10} "
        f"{'mean_s':>10} {'max_s':>10}",
    ]
    for name in sorted(stats, key=lambda n: -sum(stats[n])):
        values = stats[name]
        lines.append(
            f"{name:<{name_width}} {len(values):>6} "
            f"{sum(values):>10.4f} {sum(values) / len(values):>10.4f} "
            f"{max(values):>10.4f}"
        )
    occupancy = _summarize_window_occupancy(spans)
    if occupancy:
        lines.extend(["", occupancy])
    return "\n".join(lines)


def _summarize_window_occupancy(spans: Iterable[Dict]) -> str:
    """Per-worker pipeline window table from ``rpc.dispatch`` spans."""
    by_worker: Dict[str, Dict[str, float]] = {}
    for span in spans:
        if span.get("name") != "rpc.dispatch":
            continue
        attrs = span.get("attributes") or {}
        worker = attrs.get("worker")
        window = attrs.get("window")
        if worker is None or window is None:
            continue
        jobs = attrs.get("jobs")
        n_jobs = len(jobs) if isinstance(jobs, (list, tuple)) else 1
        row = by_worker.setdefault(
            str(worker),
            {"frames": 0, "jobs": 0, "window_sum": 0.0, "window_max": 0},
        )
        row["frames"] += 1
        row["jobs"] += n_jobs
        row["window_sum"] += float(window)
        row["window_max"] = max(row["window_max"], int(window))
    if not by_worker:
        return ""
    width = max(len(worker) for worker in by_worker) + 2
    lines = [
        "rpc pipeline window occupancy (from rpc.dispatch spans):",
        f"{'worker':<{width}} {'frames':>7} {'jobs':>7} "
        f"{'mean_win':>9} {'max_win':>8}",
    ]
    for worker in sorted(by_worker):
        row = by_worker[worker]
        mean = row["window_sum"] / row["frames"]
        lines.append(
            f"{worker:<{width}} {row['frames']:>7.0f} {row['jobs']:>7.0f} "
            f"{mean:>9.2f} {row['window_max']:>8.0f}"
        )
    return "\n".join(lines)


def format_metrics_snapshot(snapshot: Dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as aligned text.

    Counters and gauges print one ``name value`` line each; histograms
    print their count/mean/min/max aggregate.  Empty kinds are elided.
    """
    lines: List[str] = []
    names = [
        name
        for kind in ("counters", "gauges")
        for name in snapshot.get(kind, {})
    ] + list(snapshot.get("histograms", {}))
    if not names:
        return "metrics: (empty)"
    width = max(len(name) for name in names) + 2
    for kind in ("counters", "gauges"):
        values = snapshot.get(kind, {})
        if not values:
            continue
        lines.append(f"{kind}:")
        for name in sorted(values):
            lines.append(f"  {name:<{width}} {values[name]}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            agg = histograms[name]
            lines.append(
                f"  {name:<{width}} count={agg['count']} "
                f"mean={agg['mean']:.4f}s min={agg['min']:.4f}s "
                f"max={agg['max']:.4f}s"
            )
    return "\n".join(lines)


def format_trace_trees(
    spans: Iterable[Dict], trace_id: Optional[str] = None
) -> str:
    """Indented parent/child trees, one block per trace id.

    Spans whose parent never reported (a worker killed mid-span, a
    truncated file) surface as roots marked ``[orphan]`` rather than
    disappearing.
    """
    by_trace: Dict[str, List[Dict]] = {}
    for span in spans:
        by_trace.setdefault(span.get("trace", "?"), []).append(span)
    if trace_id is not None:
        if trace_id not in by_trace:
            return f"no spans for trace {trace_id}"
        by_trace = {trace_id: by_trace[trace_id]}
    if not by_trace:
        return "no spans"
    blocks: List[str] = []
    for trace, members in sorted(by_trace.items()):
        ids = {span["span"] for span in members}
        children: Dict[Optional[str], List[Dict]] = {}
        for span in members:
            parent = span.get("parent")
            key = parent if parent in ids else None
            children.setdefault(key, []).append(span)
        for bucket in children.values():
            bucket.sort(key=lambda s: s.get("ts", 0.0))
        lines = [f"trace {trace} ({len(members)} spans)"]

        def render(span: Dict, depth: int) -> None:
            orphan = (
                span.get("parent") is not None
                and span.get("parent") not in ids
            )
            attrs = span.get("attributes") or {}
            detail = " ".join(
                f"{key}={value}" for key, value in sorted(attrs.items())
            )
            lines.append(
                "  " * depth
                + f"- {span.get('name', '?')} "
                + f"{float(span.get('elapsed', 0.0)):.4f}s"
                + (f"  [{detail}]" if detail else "")
                + (" [orphan]" if orphan else "")
            )
            for child in children.get(span["span"], []):
                render(child, depth + 1)

        for root in children.get(None, []):
            render(root, 1)
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
