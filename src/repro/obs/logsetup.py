"""Opt-in structured logging for every ``repro.*`` module logger.

Library code never configures logging on import — each module only
does ``logger = logging.getLogger(__name__)`` and emits.  Hosts that
want to *see* those records call :func:`logging_setup` once (the CLI
does, via ``--log-level``); everyone else keeps Python's default
silence.  Two formats:

* ``"text"`` — one aligned human line per record;
* ``"json"`` — one JSON object per line (timestamp, level, logger,
  message, plus any ``extra=`` fields), ready for the same tooling
  that reads the trace JSONL sink.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO, Optional, Union

__all__ = ["logging_setup"]

#: Attributes of a ``LogRecord`` that are bookkeeping, not payload —
#: anything else came in through ``extra=`` and belongs in the output.
_RESERVED = frozenset(
    logging.LogRecord(
        "", 0, "", 0, "", (), None
    ).__dict__
) | {"message", "asctime", "taskName"}


class JsonLogFormatter(logging.Formatter):
    """One JSON object per record; ``extra=`` fields ride along."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                try:
                    json.dumps(value)
                except (TypeError, ValueError):
                    value = repr(value)
                payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


class TextLogFormatter(logging.Formatter):
    """Aligned human-readable lines with a stable UTC timestamp."""

    default_msec_format = "%s.%03d"

    def __init__(self):
        super().__init__(
            fmt="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
            datefmt="%H:%M:%S",
        )
        self.converter = time.gmtime


def logging_setup(
    level: Union[int, str] = logging.INFO,
    fmt: str = "text",
    stream: Optional[IO[str]] = None,
    logger_name: str = "repro",
) -> logging.Logger:
    """Wire the ``repro`` logger hierarchy to a configured handler.

    Idempotent: calling again replaces the handler installed by a
    previous call (level/format changes take effect) rather than
    stacking duplicates.  Returns the configured parent logger.
    """
    if fmt not in ("text", "json"):
        raise ValueError(f"unknown log format {fmt!r}; use 'text' or 'json'")
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    logger = logging.getLogger(logger_name)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        JsonLogFormatter() if fmt == "json" else TextLogFormatter()
    )
    handler._repro_obs_handler = True
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger
