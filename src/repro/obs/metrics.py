"""A unified registry of named counters, gauges, and histograms.

Before this module the reproduction's telemetry lived in three
unrelated attribute bags: ``SessionStats`` on the alignment session,
``RPCMetrics`` on the RPC executor, and the ``rpc_*`` /
``full_recounts`` fields copied into ``RuntimeMetadata`` at the end of
an experiment.  The registry absorbs them all: every number is a named
:class:`Counter` / :class:`Gauge` / :class:`Histogram` in a
:class:`MetricsRegistry`, and the legacy dataclass-shaped surfaces are
kept as :class:`CounterGroup` *views* — same attribute names, same
``+=`` idiom, same keyword construction — so checkpoints and
persistence files keep their exact schema while new code reads one
``registry.snapshot()``.

Views detach on pickling (a pickled ``SessionStats`` carries its
values into a private registry), which keeps copies taken mid-run —
e.g. the delta/recount stat pairs held by ``run_evolve_scenario`` —
independent of the live session.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CounterGroup",
    "global_registry",
]


class Counter:
    """A monotonically *intended* integer; ``set`` exists for restores."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def set(self, value: int) -> None:
        self.value = value

    def snapshot(self):
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value (queue depth, RSS bytes, worker count)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str, value: float = 0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self):
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Streaming summary of observations: count/total/min/max/mean."""

    __slots__ = ("name", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def snapshot(self) -> Dict[str, Optional[float]]:
        mean = self.total / self.count if self.count else None
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": mean,
        }

    def merge(self, payload: Dict[str, Optional[float]]) -> None:
        """Fold a :meth:`snapshot` payload into this histogram.

        Count and total add; min/max widen.  Mean is derived, so the
        merged aggregate is exact — only per-observation detail (which
        a streaming summary never kept) is lost.
        """
        count = int(payload.get("count") or 0)
        if not count:
            return
        self.count += count
        self.total += float(payload.get("total") or 0.0)
        for bound, pick in (("min", min), ("max", max)):
            theirs = payload.get(bound)
            if theirs is None:
                continue
            ours = getattr(self, bound)
            setattr(
                self,
                bound,
                float(theirs) if ours is None else pick(ours, float(theirs)),
            )

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


class MetricsRegistry:
    """Named metrics, get-or-create, one ``snapshot()`` for them all.

    Access is lock-guarded only on *creation*; increments go straight
    at the metric object (callers that need atomicity already hold
    their own locks, exactly as they did around the dataclass
    counters this registry replaced).
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory, kind: str):
        metric = self._metrics.get(name)
        if metric is not None:
            if metric.kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {kind}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory(name)
            elif metric.kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, "gauge")

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram, "histogram")

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[Tuple[str, object]]:
        return iter(sorted(self._metrics.items()))

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Everything, grouped by kind, metric names sorted."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name, metric in sorted(self._metrics.items()):
            out[metric.kind + "s"][name] = metric.snapshot()
        return out

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Restore counters/gauges and fold histograms from a
        :meth:`snapshot` payload (histograms merge additively so a
        restore can layer over observations already made)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).set(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in snapshot.get("histograms", {}).items():
            self.histogram(name).merge(payload)

    # Locks don't pickle; a registry re-locks on the other side.
    def __getstate__(self):
        return {"metrics": self._metrics}

    def __setstate__(self, state):
        self._metrics = state["metrics"]
        self._lock = threading.Lock()


class CounterGroup:
    """A dataclass-shaped attribute view over registry counters.

    Subclasses declare ``_fields`` (attribute names, in display order)
    and ``_prefix`` (the registry namespace, e.g. ``"session."``).
    The view then behaves like the mutable dataclass it replaced:
    ``group.field`` reads the counter, ``group.field += 1`` bumps it,
    ``Group(field=3)`` builds a detached instance over a private
    registry, and ``as_dict()`` round-trips through checkpoints where
    ``dataclasses.asdict`` used to.
    """

    _fields: Tuple[str, ...] = ()
    _prefix: str = ""

    def __init__(self, registry: Optional[MetricsRegistry] = None, **values):
        unknown = set(values) - set(self._fields)
        if unknown:
            raise TypeError(
                f"{type(self).__name__} got unexpected counters: "
                f"{sorted(unknown)}"
            )
        if registry is None:
            registry = MetricsRegistry()
        object.__setattr__(self, "_registry", registry)
        # Constructor semantics match the dataclasses these views
        # replaced: every field starts at its given value or zero,
        # even when attaching over a previously-used registry (a
        # checkpoint restore resets the counters it carries).
        for field in self._fields:
            registry.counter(self._prefix + field).set(
                int(values.get(field, 0))
            )

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    def __getattr__(self, name: str):
        # Only reached when normal lookup fails, i.e. for counter
        # fields (everything else lives in the instance/class dicts).
        if name in type(self)._fields:
            registry = object.__getattribute__(self, "_registry")
            return registry.counter(type(self)._prefix + name).value
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value) -> None:
        if name in type(self)._fields:
            self._registry.counter(type(self)._prefix + name).set(value)
        else:
            object.__setattr__(self, name, value)

    def as_dict(self) -> Dict[str, int]:
        """Field → value, in declaration order (the checkpoint form)."""
        return {field: getattr(self, field) for field in self._fields}

    def reset(self) -> None:
        for field in self._fields:
            self._registry.counter(type(self)._prefix + field).set(0)

    def __eq__(self, other) -> bool:
        if isinstance(other, CounterGroup):
            return (
                type(self) is type(other) and self.as_dict() == other.as_dict()
            )
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{field}={getattr(self, field)}" for field in self._fields
        )
        return f"{type(self).__name__}({inner})"

    # Pickling detaches the view: values travel, the live registry
    # stays home.  A copy.copy() goes through the same path.
    def __getstate__(self):
        return self.as_dict()

    def __setstate__(self, state):
        self.__init__(**state)


_global = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry (sessions/executors default here
    only when not handed their own)."""
    return _global
