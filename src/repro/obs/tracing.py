"""Low-overhead span tracing with cross-process context propagation.

The tracer is span-shaped: a :class:`Span` carries a trace id, its own
span id, an explicit parent id, a wall-clock start and a *monotonic*
duration (wall clocks are free to step between hosts; durations are
not).  Spans nest implicitly per thread — entering a span pushes it on
a thread-local stack, so children recorded underneath link to it
without any plumbing — and explicitly across pickles: a
:class:`TraceContext` is a tiny frozen dataclass that rides
``ProcessExecutor`` job payloads and RPC job envelopes, letting a
worker on another host (or in another process) parent its spans on the
driver's dispatch span.  One trace id therefore links driver dispatch,
blob sync, remote execution, retries, and straggler re-dispatch.

Cost discipline:

* the **disabled** tracer is :data:`NULL_TRACER`, a shared constant
  whose ``span()`` hands back one reusable no-op context manager —
  no allocation, no branching beyond the call itself;
* an **enabled** tracer appends one small dict per span and
  (optionally) one JSON line to a :class:`JsonlSink`.  Instrumentation
  in the engine is per *round* / per *dispatch*, never per block or
  per matrix cell, which is how the ``bench_engine_obs`` gate keeps
  enabled tracing under 5% of the parallel engine run.

The process-global tracer is :func:`get_tracer` / :func:`set_tracer`;
:func:`configure_tracing` is the one-call setup used by the CLI's
``--trace-out``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

__all__ = [
    "TraceContext",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "JsonlSink",
    "get_tracer",
    "set_tracer",
    "configure_tracing",
]


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """A picklable pointer at one span of one trace.

    This is the only tracing object that crosses process or host
    boundaries.  ``sink_dir`` optionally names a directory where a
    *same-host* worker process may append its own span file
    (``trace-worker-<pid>.jsonl``); remote RPC workers ignore it and
    ship their spans back inside the result envelope instead.
    """

    trace_id: str
    span_id: str
    sink_dir: Optional[str] = None


class Span:
    """One timed operation; a context manager that records on exit."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attributes",
        "_tracer",
        "_start_wall",
        "_start_monotonic",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attributes: Dict[str, object],
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.attributes = attributes
        self._tracer = tracer
        self._start_wall = 0.0
        self._start_monotonic = 0.0

    def annotate(self, **attributes) -> None:
        """Attach attributes to a span already underway."""
        self.attributes.update(attributes)

    @property
    def context(self) -> TraceContext:
        """A picklable context parented on this span."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=self.span_id,
            sink_dir=self._tracer.sink_dir,
        )

    def __enter__(self) -> "Span":
        self._start_wall = time.time()
        self._start_monotonic = time.monotonic()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self)
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._emit()

    # -- detached lifetime (see Tracer.span_open) ----------------------
    def start(self) -> "Span":
        """Start timing *without* joining the thread-local stack.

        Detached spans exist for operations whose lifetimes overlap on
        one thread — e.g. the RPC executor's pipelined dispatch window,
        where several dispatch spans are open at once and close in
        reply order, which the LIFO nesting stack cannot represent.
        Finish with :meth:`finish`.
        """
        self._start_wall = time.time()
        self._start_monotonic = time.monotonic()
        return self

    def finish(self, error: Optional[str] = None) -> None:
        """Record a detached span started with :meth:`start`."""
        if error is not None:
            self.attributes.setdefault("error", error)
        self._emit()

    def _emit(self) -> None:
        self._tracer._record(
            {
                "trace": self.trace_id,
                "span": self.span_id,
                "parent": self.parent_id,
                "name": self.name,
                "ts": self._start_wall,
                "elapsed": time.monotonic() - self._start_monotonic,
                "pid": os.getpid(),
                "attributes": self.attributes,
            }
        )


class _NullSpan:
    """The reusable span handed out by a disabled tracer."""

    __slots__ = ()
    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    context = None

    def annotate(self, **attributes) -> None:
        pass

    def start(self) -> "_NullSpan":
        return self

    def finish(self, error=None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class JsonlSink:
    """Append-only JSONL span sink with size-based rotation.

    When the active file would exceed ``rotate_bytes`` the sink
    renames it to ``<name>.1`` (clobbering any previous rotation) and
    starts fresh, bounding disk usage at roughly two generations.
    Writes are line-atomic under an internal lock, so one sink may be
    shared by every thread of a driver process.
    """

    def __init__(self, path: Union[str, Path], rotate_bytes: int = 32 * 1024 * 1024):
        self.path = Path(path)
        self.rotate_bytes = int(rotate_bytes)
        self._lock = threading.Lock()
        self._size: Optional[int] = None
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def write(self, record: Dict) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            if self._size is None:
                self._size = (
                    self.path.stat().st_size if self.path.exists() else 0
                )
            if self._size and self._size + len(data) > self.rotate_bytes:
                rotated = self.path.with_name(self.path.name + ".1")
                self.path.replace(rotated)
                self._size = 0
            with open(self.path, "ab") as handle:
                handle.write(data)
            self._size += len(data)


class Tracer:
    """An enabled tracer: records spans in memory and into a sink.

    Span nesting is tracked per thread; :meth:`span` links a new span
    to the innermost active one on the calling thread unless an
    explicit ``parent`` (a :class:`Span` or :class:`TraceContext`) is
    given.  Records accumulate in :attr:`records` (drainable, for
    workers that ship spans home) and stream into ``sink`` when one is
    attached.
    """

    enabled = True

    def __init__(self, sink: Optional[JsonlSink] = None):
        self.sink = sink
        self.records: List[Dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def sink_dir(self) -> Optional[str]:
        if self.sink is None:
            return None
        return str(self.sink.path.parent)

    # -- span lifecycle -------------------------------------------------
    def span(
        self,
        name: str,
        parent: Union[Span, TraceContext, None] = None,
        **attributes,
    ) -> Span:
        if parent is None:
            parent = self.current_span()
        if parent is None:
            trace_id, parent_id = _new_id(), None
        elif isinstance(parent, TraceContext):
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        return Span(self, name, trace_id, parent_id, dict(attributes))

    def span_open(
        self,
        name: str,
        parent: Union[Span, TraceContext, None] = None,
        **attributes,
    ) -> Span:
        """A *detached* span, started now, for overlapping lifetimes.

        Unlike ``with tracer.span(...)``, the returned span never joins
        the thread-local nesting stack, so several may be open at once
        on one thread and close out of order (the pipelined RPC
        dispatch window).  Callers must pair it with
        :meth:`Span.finish`.
        """
        return self.span(name, parent=parent, **attributes).start()

    def current_span(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def current_context(self) -> Optional[TraceContext]:
        """Picklable context of the innermost active span, if any."""
        span = self.current_span()
        return None if span is None else span.context

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()

    # -- record plumbing ------------------------------------------------
    def _record(self, record: Dict) -> None:
        with self._lock:
            self.records.append(record)
        if self.sink is not None:
            self.sink.write(record)

    def ingest(self, records: Iterable[Dict]) -> None:
        """Absorb spans produced elsewhere (a remote worker's drain)."""
        for record in records:
            if isinstance(record, dict) and "span" in record:
                self._record(record)

    def drain(self) -> List[Dict]:
        """Pop and return every buffered record (worker → envelope)."""
        with self._lock:
            records, self.records = self.records, []
        return records


class NullTracer:
    """The disabled tracer: every operation is a constant no-op."""

    enabled = False
    sink = None
    sink_dir = None
    records: List[Dict] = []

    def span(self, name, parent=None, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def span_open(self, name, parent=None, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def current_span(self) -> None:
        return None

    def current_context(self) -> None:
        return None

    def ingest(self, records) -> None:
        pass

    def drain(self) -> List[Dict]:
        return []


#: The process-wide disabled tracer; ``get_tracer()`` returns this
#: until :func:`configure_tracing` / :func:`set_tracer` installs a
#: real one.
NULL_TRACER = NullTracer()

_tracer: Union[Tracer, NullTracer] = NULL_TRACER


def get_tracer() -> Union[Tracer, NullTracer]:
    """The process-global tracer (the no-op constant by default)."""
    return _tracer


def set_tracer(tracer: Union[Tracer, NullTracer, None]):
    """Install ``tracer`` globally; ``None`` restores the no-op."""
    global _tracer
    _tracer = NULL_TRACER if tracer is None else tracer
    return _tracer


def configure_tracing(
    path: Union[str, Path, None] = None,
    rotate_bytes: int = 32 * 1024 * 1024,
) -> Tracer:
    """Enable tracing process-wide; with ``path``, stream to JSONL."""
    sink = None if path is None else JsonlSink(path, rotate_bytes=rotate_bytes)
    tracer = Tracer(sink=sink)
    set_tracer(tracer)
    return tracer
