"""Per-person spatio-temporal activity and language profiles.

Each latent person has a small set of habitual locations, habitual time
bins and a personal vocabulary.  When that person posts on *either*
platform, the post's attributes are drawn from the same profile — this is
the mechanism that makes anchored account pairs share location/timestamp/
word co-occurrences (the signal meta paths P5/P6 and the attribute meta
diagrams exploit), while non-anchored pairs agree only by chance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import DatasetError


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalized Zipf popularity weights over ``n`` ranked items."""
    if exponent == 0:
        return np.full(n, 1.0 / n)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


@dataclass(frozen=True)
class PersonProfile:
    """Activity profile of one latent person.

    ``locations``/``time_bins``/``words`` hold vocabulary indices; the
    parallel ``*_weights`` arrays are sampling probabilities (Dirichlet
    draws, so some habits dominate).
    """

    person: int
    locations: np.ndarray
    location_weights: np.ndarray
    time_bins: np.ndarray
    time_bin_weights: np.ndarray
    words: np.ndarray
    word_weights: np.ndarray


@dataclass(frozen=True)
class PostDraw:
    """Attributes of one generated post."""

    timestamp: Optional[int]
    location: Optional[int]
    words: Tuple[int, ...]


class ActivityModel:
    """Samples personal profiles and posts from them.

    Parameters
    ----------
    n_locations, n_time_bins, n_words:
        Global vocabulary sizes.
    locations_per_person, time_bins_per_person, words_per_person:
        Profile sizes.
    concentration:
        Dirichlet concentration for habit weights; small values make
        habits peaky (more cross-platform co-occurrence), large values
        flatten them.
    zipf_exponent:
        Popularity skew of the *background* distributions used for
        out-of-habit draws.  Real venues/time-slots/words follow a
        heavy-tailed popularity law, so unrelated users also co-occur at
        hot spots — the confusing collisions that make alignment hard.
        ``0`` makes the background uniform.
    """

    def __init__(
        self,
        n_locations: int,
        n_time_bins: int,
        n_words: int,
        locations_per_person: int,
        time_bins_per_person: int,
        words_per_person: int,
        concentration: float = 0.8,
        zipf_exponent: float = 1.0,
    ) -> None:
        if concentration <= 0:
            raise DatasetError("concentration must be > 0")
        if zipf_exponent < 0:
            raise DatasetError("zipf_exponent must be >= 0")
        self.n_locations = n_locations
        self.n_time_bins = n_time_bins
        self.n_words = n_words
        self.locations_per_person = locations_per_person
        self.time_bins_per_person = time_bins_per_person
        self.words_per_person = words_per_person
        self.concentration = concentration
        self.zipf_exponent = zipf_exponent
        self._location_background = _zipf_weights(n_locations, zipf_exponent)
        self._time_background = _zipf_weights(n_time_bins, zipf_exponent)

    def sample_profile(self, person: int, rng: np.random.Generator) -> PersonProfile:
        """Draw one person's habitual locations, times and vocabulary.

        Habitual venues and time slots are drawn from the Zipf
        background, so popular places appear in many profiles — distinct
        people collide there, as in real check-in data.
        """
        locations = rng.choice(
            self.n_locations,
            size=self.locations_per_person,
            replace=False,
            p=self._location_background,
        )
        time_bins = rng.choice(
            self.n_time_bins,
            size=self.time_bins_per_person,
            replace=False,
            p=self._time_background,
        )
        words = rng.choice(self.n_words, size=self.words_per_person, replace=False)
        return PersonProfile(
            person=person,
            locations=locations,
            location_weights=rng.dirichlet(
                np.full(self.locations_per_person, self.concentration)
            ),
            time_bins=time_bins,
            time_bin_weights=rng.dirichlet(
                np.full(self.time_bins_per_person, self.concentration)
            ),
            words=words,
            word_weights=rng.dirichlet(
                np.full(self.words_per_person, self.concentration)
            ),
        )

    def sample_profiles(
        self, n_people: int, rng: np.random.Generator
    ) -> List[PersonProfile]:
        """Draw profiles for the whole population."""
        return [self.sample_profile(person, rng) for person in range(n_people)]

    def sample_post(
        self,
        profile: PersonProfile,
        rng: np.random.Generator,
        attribute_noise: float = 0.0,
        checkin_rate: float = 1.0,
        timestamp_rate: float = 1.0,
        n_words: int = 3,
    ) -> PostDraw:
        """Draw one post's attributes from a profile.

        With probability ``attribute_noise`` each of timestamp/location is
        replaced by a uniform background draw, modeling out-of-habit
        activity.  Attributes are independently present with the given
        rates (not every tweet has a check-in).
        """
        timestamp: Optional[int] = None
        if rng.random() < timestamp_rate:
            if rng.random() < attribute_noise:
                timestamp = int(
                    rng.choice(self.n_time_bins, p=self._time_background)
                )
            else:
                timestamp = int(
                    rng.choice(profile.time_bins, p=profile.time_bin_weights)
                )
        location: Optional[int] = None
        if rng.random() < checkin_rate:
            if rng.random() < attribute_noise:
                location = int(
                    rng.choice(self.n_locations, p=self._location_background)
                )
            else:
                location = int(
                    rng.choice(profile.locations, p=profile.location_weights)
                )
        words: Tuple[int, ...] = ()
        if n_words > 0:
            drawn = rng.choice(
                profile.words, size=n_words, replace=True, p=profile.word_weights
            )
            words = tuple(int(w) for w in np.unique(drawn))
        return PostDraw(timestamp=timestamp, location=location, words=words)
