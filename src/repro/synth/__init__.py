"""Synthetic aligned social network generator.

This subpackage is the documented substitution for the paper's crawled
Foursquare/Twitter dataset (see DESIGN.md §2): it synthesizes a latent
population whose members appear on two platforms, preserving exactly the
correlations the paper's meta-diagram features exploit.
"""

from repro.synth.activity import ActivityModel, PersonProfile, PostDraw
from repro.synth.config import PlatformConfig, WorldConfig
from repro.synth.follow_graph import (
    noise_follows,
    project_directed_follows,
    scale_free_friendships,
    small_world_friendships,
)
from repro.synth.generator import generate_aligned_pair, generate_multi_aligned

__all__ = [
    "ActivityModel",
    "PersonProfile",
    "PlatformConfig",
    "PostDraw",
    "WorldConfig",
    "generate_aligned_pair",
    "generate_multi_aligned",
    "noise_follows",
    "project_directed_follows",
    "scale_free_friendships",
    "small_world_friendships",
]
