"""End-to-end generator of aligned attributed heterogeneous social networks.

Pipeline (all driven by one seeded :class:`numpy.random.Generator`):

1. sample a latent scale-free friendship world over ``n_people`` persons;
2. sample each person's spatio-temporal/language profile;
3. for each platform: sample members, project friendships into directed
   follows (plus noise follows), and emit Poisson-many posts per member
   whose attributes come from the author's profile;
4. anchor links are exactly the persons who joined both platforms.

User ids are platform-scoped strings (``"fq:u17"``, ``"tw:u17"``) so code
cannot accidentally match accounts by id equality — all alignment signal
flows through structure and attributes, as in the real task.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import numpy as np

from repro.exceptions import DatasetError
from repro.networks.aligned import AlignedPair
from repro.networks.multi import MultiAlignedNetworks
from repro.networks.builders import SocialNetworkBuilder
from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.synth.activity import ActivityModel, PersonProfile
from repro.synth.config import PlatformConfig, WorldConfig
from repro.synth.follow_graph import (
    noise_follows,
    project_directed_follows,
    scale_free_friendships,
)


def _user_id(platform: PlatformConfig, person: int) -> str:
    """Platform-scoped user id for a latent person."""
    return f"{platform.name}:u{person}"


def _build_platform(
    platform: PlatformConfig,
    friendships: List,
    profiles: List[PersonProfile],
    members: List[int],
    activity: ActivityModel,
    rng: np.random.Generator,
) -> HeterogeneousNetwork:
    """Materialize one platform network for the given member set."""
    builder = SocialNetworkBuilder(platform.name)
    member_set: Set[int] = set(members)
    for person in members:
        builder.add_user(_user_id(platform, person))

    follows = project_directed_follows(
        friendships, member_set, platform.edge_retention, rng
    )
    follows.extend(noise_follows(members, platform.extra_edge_rate, rng))
    seen = set()
    for source, target in follows:
        if (source, target) in seen:
            continue
        seen.add((source, target))
        builder.follow(_user_id(platform, source), _user_id(platform, target))

    post_counter = 0
    for person in members:
        profile = profiles[person]
        n_posts = int(rng.poisson(platform.posts_per_user_mean))
        for _ in range(n_posts):
            draw = activity.sample_post(
                profile,
                rng,
                attribute_noise=platform.post_attribute_noise,
                checkin_rate=platform.checkin_rate,
                timestamp_rate=platform.timestamp_rate,
                n_words=platform.words_per_post,
            )
            builder.post(
                _user_id(platform, person),
                post_id=f"{platform.name}:p{post_counter}",
                timestamp=draw.timestamp,
                location=draw.location,
                words=draw.words,
            )
            post_counter += 1
    return builder.build()


def generate_aligned_pair(config: WorldConfig) -> AlignedPair:
    """Generate one aligned pair of synthetic social networks.

    Returns
    -------
    AlignedPair
        Two platform networks plus ground-truth anchors (one per person
        present on both platforms).  Fully deterministic given
        ``config.seed``.
    """
    rng = np.random.default_rng(config.seed)
    friendships = scale_free_friendships(
        config.n_people, config.friendship_attachment, rng
    )
    activity = ActivityModel(
        n_locations=config.n_locations,
        n_time_bins=config.n_time_bins,
        n_words=config.n_words,
        locations_per_person=config.locations_per_person,
        time_bins_per_person=config.time_bins_per_person,
        words_per_person=config.words_per_person,
        concentration=config.profile_concentration,
        zipf_exponent=config.background_zipf,
    )
    profiles = activity.sample_profiles(config.n_people, rng)

    membership: Dict[str, List[int]] = {}
    for platform in (config.left, config.right):
        draws = rng.random(config.n_people)
        membership[platform.name] = [
            person
            for person in range(config.n_people)
            if draws[person] < platform.membership_rate
        ]

    left_net = _build_platform(
        config.left,
        friendships,
        profiles,
        membership[config.left.name],
        activity,
        rng,
    )
    right_net = _build_platform(
        config.right,
        friendships,
        profiles,
        membership[config.right.name],
        activity,
        rng,
    )

    shared = set(membership[config.left.name]) & set(membership[config.right.name])
    anchors = [
        (_user_id(config.left, person), _user_id(config.right, person))
        for person in sorted(shared)
    ]
    return AlignedPair(left_net, right_net, anchors)


def generate_multi_aligned(
    config: WorldConfig, platforms: Sequence[PlatformConfig]
) -> MultiAlignedNetworks:
    """Generate n >= 2 platform networks over one latent world.

    Every platform samples the same friendship world and the same
    personal activity profiles, so anchors are mutually consistent by
    construction (the transitivity validator passes trivially).  The
    ``left``/``right`` entries of ``config`` are ignored; ``platforms``
    defines the lineup.

    Returns
    -------
    MultiAlignedNetworks
        With one declared anchor set per platform pair (i < j order).
    """
    if len(platforms) < 2:
        raise DatasetError("need at least two platform configs")
    names = [platform.name for platform in platforms]
    if len(set(names)) != len(names):
        raise DatasetError("platform names must be unique")

    rng = np.random.default_rng(config.seed)
    friendships = scale_free_friendships(
        config.n_people, config.friendship_attachment, rng
    )
    activity = ActivityModel(
        n_locations=config.n_locations,
        n_time_bins=config.n_time_bins,
        n_words=config.n_words,
        locations_per_person=config.locations_per_person,
        time_bins_per_person=config.time_bins_per_person,
        words_per_person=config.words_per_person,
        concentration=config.profile_concentration,
        zipf_exponent=config.background_zipf,
    )
    profiles = activity.sample_profiles(config.n_people, rng)

    membership: Dict[str, Set[int]] = {}
    networks = []
    for platform in platforms:
        draws = rng.random(config.n_people)
        members = [
            person
            for person in range(config.n_people)
            if draws[person] < platform.membership_rate
        ]
        membership[platform.name] = set(members)
        networks.append(
            _build_platform(platform, friendships, profiles, members, activity, rng)
        )

    anchors = {}
    for i, left_platform in enumerate(platforms):
        for right_platform in platforms[i + 1:]:
            shared = membership[left_platform.name] & membership[right_platform.name]
            anchors[(left_platform.name, right_platform.name)] = [
                (
                    _user_id(left_platform, person),
                    _user_id(right_platform, person),
                )
                for person in sorted(shared)
            ]
    return MultiAlignedNetworks(networks, anchors)
