"""Latent friendship graph models.

The world generator needs an undirected scale-free friendship graph over
the latent population; platform projection later turns friendships into
directed follow edges.  We use networkx's Barabási–Albert model (degree
distribution matching real social graphs) plus a small-world alternative
for sensitivity studies.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import networkx as nx
import numpy as np

from repro.exceptions import DatasetError


def scale_free_friendships(
    n_people: int, attachment: int, rng: np.random.Generator
) -> List[Tuple[int, int]]:
    """Sample an undirected scale-free friendship edge list.

    Parameters
    ----------
    n_people:
        Number of people (nodes ``0..n_people-1``).
    attachment:
        Barabási–Albert attachment parameter ``m``.
    rng:
        Source of randomness.

    Returns
    -------
    list of (int, int)
        Undirected edges with ``u < v``.
    """
    if attachment >= n_people:
        raise DatasetError("attachment must be < n_people")
    seed = int(rng.integers(0, 2**31 - 1))
    graph = nx.barabasi_albert_graph(n_people, attachment, seed=seed)
    return [(min(u, v), max(u, v)) for u, v in graph.edges()]


def small_world_friendships(
    n_people: int,
    neighbors: int,
    rewire_probability: float,
    rng: np.random.Generator,
) -> List[Tuple[int, int]]:
    """Sample a Watts–Strogatz small-world friendship edge list.

    Provided as an alternative topology for robustness experiments; the
    paper's conclusions should not depend on the exact degree law.
    """
    if neighbors % 2 != 0:
        raise DatasetError("neighbors must be even for Watts-Strogatz")
    if not 0.0 <= rewire_probability <= 1.0:
        raise DatasetError("rewire_probability must be in [0, 1]")
    seed = int(rng.integers(0, 2**31 - 1))
    graph = nx.watts_strogatz_graph(
        n_people, neighbors, rewire_probability, seed=seed
    )
    return [(min(u, v), max(u, v)) for u, v in graph.edges()]


def project_directed_follows(
    friendships: List[Tuple[int, int]],
    members: Set[int],
    edge_retention: float,
    rng: np.random.Generator,
) -> List[Tuple[int, int]]:
    """Project latent friendships into one platform's directed follows.

    Each direction of each friendship between two platform members
    survives independently with probability ``edge_retention``; this
    yields a realistic mix of mutual and one-way follows whose overlap
    across the two platforms carries the alignment signal.
    """
    follows: List[Tuple[int, int]] = []
    for u, v in friendships:
        if u not in members or v not in members:
            continue
        if rng.random() < edge_retention:
            follows.append((u, v))
        if rng.random() < edge_retention:
            follows.append((v, u))
    return follows


def noise_follows(
    members: List[int], extra_edge_rate: float, rng: np.random.Generator
) -> List[Tuple[int, int]]:
    """Sample platform-only directed noise follow edges.

    The expected number of noise edges is ``extra_edge_rate * len(members)``;
    endpoints are drawn uniformly (self-loops discarded).
    """
    if not members or extra_edge_rate <= 0:
        return []
    n_edges = rng.poisson(extra_edge_rate * len(members))
    member_arr = np.asarray(members)
    sources = rng.choice(member_arr, size=n_edges)
    targets = rng.choice(member_arr, size=n_edges)
    return [
        (int(s), int(t)) for s, t in zip(sources, targets) if s != t
    ]
