"""Configuration dataclasses for the synthetic aligned-network generator.

The generator models a latent *world* of natural persons, then projects
it onto two platforms.  ``WorldConfig`` controls the latent population;
each ``PlatformConfig`` controls how faithfully one platform observes it.
All knobs have defaults that produce paper-like correlation structure at
laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import DatasetError


@dataclass(frozen=True)
class PlatformConfig:
    """How one platform (e.g. Twitter) samples the latent world.

    Attributes
    ----------
    name:
        Platform name; becomes the network name.
    membership_rate:
        Probability that a latent person has an account here.  Anchored
        users are those present on both platforms.
    edge_retention:
        Probability that a latent friendship appears as a follow edge on
        this platform (sampled independently per direction).
    extra_edge_rate:
        Expected number of *noise* follow edges per user (edges with no
        latent counterpart), modeling platform-only relationships.
    posts_per_user_mean:
        Mean of the Poisson post count per user on this platform.
    post_attribute_noise:
        Probability that a post's (timestamp, location) is drawn from the
        global background instead of the author's personal profile.
        Higher noise weakens cross-network attribute signal.
    checkin_rate:
        Probability a post carries a location check-in.
    timestamp_rate:
        Probability a post carries a timestamp.
    words_per_post:
        Number of words attached to each post.
    """

    name: str
    membership_rate: float = 0.8
    edge_retention: float = 0.7
    extra_edge_rate: float = 1.0
    posts_per_user_mean: float = 6.0
    post_attribute_noise: float = 0.15
    checkin_rate: float = 0.9
    timestamp_rate: float = 0.95
    words_per_post: int = 3

    def __post_init__(self) -> None:
        for attr in (
            "membership_rate",
            "edge_retention",
            "post_attribute_noise",
            "checkin_rate",
            "timestamp_rate",
        ):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise DatasetError(f"{attr} must be in [0, 1], got {value}")
        if self.extra_edge_rate < 0:
            raise DatasetError("extra_edge_rate must be >= 0")
        if self.posts_per_user_mean < 0:
            raise DatasetError("posts_per_user_mean must be >= 0")
        if self.words_per_post < 0:
            raise DatasetError("words_per_post must be >= 0")


@dataclass(frozen=True)
class WorldConfig:
    """The latent population both platforms observe.

    Attributes
    ----------
    n_people:
        Number of latent natural persons.
    friendship_attachment:
        Number of friendship edges each newcomer creates in the
        preferential-attachment friendship graph (Barabási–Albert ``m``).
    n_locations:
        Size of the global location vocabulary (e.g. venue grid cells).
    n_time_bins:
        Size of the global timestamp vocabulary (coarse time bins).
    n_words:
        Size of the global word vocabulary.
    locations_per_person:
        Number of "home" locations in each person's activity profile.
    time_bins_per_person:
        Number of habitual time bins per person.
    words_per_person:
        Size of each person's personal vocabulary.
    background_zipf:
        Popularity-skew exponent of the attribute background (see
        :class:`~repro.synth.activity.ActivityModel`); higher values
        concentrate activity on hot venues/slots, making non-anchored
        users collide more and the alignment task harder.
    profile_concentration:
        Dirichlet concentration of per-person habit weights.
    left, right:
        The two platform configurations.
    seed:
        Seed for the top-level :class:`numpy.random.Generator`.
    """

    n_people: int = 300
    friendship_attachment: int = 3
    n_locations: int = 400
    n_time_bins: int = 168
    n_words: int = 800
    locations_per_person: int = 4
    time_bins_per_person: int = 6
    words_per_person: int = 25
    background_zipf: float = 1.0
    profile_concentration: float = 0.8
    left: PlatformConfig = field(
        default_factory=lambda: PlatformConfig(name="foursquare-like")
    )
    right: PlatformConfig = field(
        default_factory=lambda: PlatformConfig(name="twitter-like")
    )
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_people < 2:
            raise DatasetError("n_people must be >= 2")
        if self.friendship_attachment < 1:
            raise DatasetError("friendship_attachment must be >= 1")
        if self.friendship_attachment >= self.n_people:
            raise DatasetError(
                "friendship_attachment must be < n_people "
                f"({self.friendship_attachment} >= {self.n_people})"
            )
        for attr in ("n_locations", "n_time_bins", "n_words"):
            if getattr(self, attr) < 1:
                raise DatasetError(f"{attr} must be >= 1")
        if self.locations_per_person < 1 or self.locations_per_person > self.n_locations:
            raise DatasetError("locations_per_person out of range")
        if (
            self.time_bins_per_person < 1
            or self.time_bins_per_person > self.n_time_bins
        ):
            raise DatasetError("time_bins_per_person out of range")
        if self.words_per_person < 1 or self.words_per_person > self.n_words:
            raise DatasetError("words_per_person out of range")
        if self.background_zipf < 0:
            raise DatasetError("background_zipf must be >= 0")
        if self.profile_concentration <= 0:
            raise DatasetError("profile_concentration must be > 0")
        if self.left.name == self.right.name:
            raise DatasetError("the two platforms must have distinct names")
