"""Inter-network meta paths (Definition 4, Table I top).

Six standard paths connect users across the two networks:

====  =========================================  =================================
ID    shape                                      semantics
====  =========================================  =================================
P1    U -follow-> U <-anchor-> U <-follow- U     Common Anchored Followee
P2    U <-follow- U <-anchor-> U -follow-> U     Common Anchored Follower
P3    U -follow-> U <-anchor-> U -follow-> U     Common Anchored Followee-Follower
P4    U <-follow- U <-anchor-> U <-follow- U     Common Anchored Follower-Followee
P5    U -write-> P -at-> T <-at- P <-write- U    Common Timestamp
P6    U -write-> P -checkin-> L <-checkin- P     Common Checkin
      <-write- U
====  =========================================  =================================

P7 (Common Word, ``U -write-> P -contain-> W <-contain- P <-write- U``) is
an extension enabled by ``include_words=True``; the paper's schema carries
word attributes but its listed path set stops at P6.

Each path carries its count expression over the canonical matrix bag
(:mod:`repro.meta.context`): a follow path's count matrix is
``M1 @ A @ M2`` and an attribute path's is ``W1 @ V1 @ V2ᵀ @ W2ᵀ``.
Follow paths additionally expose their per-side segments so diagrams can
stack them at the shared junctions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import MetaStructureError
from repro.meta.algebra import Chain, Expr, Leaf
from repro.meta.context import (
    ANCHOR_MATRIX,
    FOLLOW_LEFT,
    FOLLOW_RIGHT,
    LOCATION_LEFT,
    LOCATION_RIGHT,
    TIMESTAMP_LEFT,
    TIMESTAMP_RIGHT,
    WORD_LEFT,
    WORD_RIGHT,
    WRITE_LEFT,
    WRITE_RIGHT,
)

#: Category tag for follow-and-anchor based paths (the paper's P_f set).
FOLLOW_CATEGORY = "follow"
#: Category tag for attribute based paths (the paper's P_a set).
ATTRIBUTE_CATEGORY = "attribute"


@dataclass(frozen=True)
class MetaPath:
    """One inter-network meta path.

    Attributes
    ----------
    name:
        Short identifier (``"P1"``).
    semantics:
        Human-readable meaning from Table I.
    category:
        :data:`FOLLOW_CATEGORY` or :data:`ATTRIBUTE_CATEGORY`.
    expr:
        Count expression; evaluates to the |U1| x |U2| instance-count
        matrix.
    notation:
        Arrow notation of the path, for documentation.
    left_segment, right_segment:
        For follow paths: the U1 x U1 (resp. U2 x U2) expression around
        the anchor, used by diagram stacking.  ``None`` for attribute
        paths (they stack at the post junctions instead).
    left_inner, right_inner:
        For attribute paths: the P1 x P2 "post-to-post via shared value"
        expression (e.g. ``T1 @ T2ᵀ``).  ``None`` for follow paths.
    """

    name: str
    semantics: str
    category: str
    expr: Expr
    notation: str = ""
    left_segment: Optional[Expr] = field(default=None, compare=False)
    right_segment: Optional[Expr] = field(default=None, compare=False)
    inner: Optional[Expr] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.category not in (FOLLOW_CATEGORY, ATTRIBUTE_CATEGORY):
            raise MetaStructureError(
                f"unknown meta path category {self.category!r}"
            )
        if self.category == FOLLOW_CATEGORY:
            if self.left_segment is None or self.right_segment is None:
                raise MetaStructureError(
                    f"follow path {self.name} needs left/right segments"
                )
        if self.category == ATTRIBUTE_CATEGORY and self.inner is None:
            raise MetaStructureError(
                f"attribute path {self.name} needs an inner expression"
            )


def _follow_path(
    name: str, semantics: str, notation: str, left: Expr, right: Expr
) -> MetaPath:
    """Build a follow-category path with count ``left @ A @ right``."""
    return MetaPath(
        name=name,
        semantics=semantics,
        category=FOLLOW_CATEGORY,
        expr=Chain([left, Leaf(ANCHOR_MATRIX), right]),
        notation=notation,
        left_segment=left,
        right_segment=right,
    )


def _attribute_path(
    name: str, semantics: str, notation: str, left_value: str, right_value: str
) -> MetaPath:
    """Build an attribute-category path ``W1 @ V1 @ V2ᵀ @ W2ᵀ``."""
    inner = Chain([Leaf(left_value), Leaf(right_value, transpose=True)])
    return MetaPath(
        name=name,
        semantics=semantics,
        category=ATTRIBUTE_CATEGORY,
        expr=Chain(
            [Leaf(WRITE_LEFT), inner, Leaf(WRITE_RIGHT, transpose=True)]
        ),
        notation=notation,
        inner=inner,
    )


def follow_paths() -> List[MetaPath]:
    """The four follow-and-anchor paths P1-P4 of Table I."""
    follow_left = Leaf(FOLLOW_LEFT)
    follow_right = Leaf(FOLLOW_RIGHT)
    return [
        _follow_path(
            "P1",
            "Common Anchored Followee",
            "U -follow-> U <-anchor-> U <-follow- U",
            follow_left,
            follow_right.T,
        ),
        _follow_path(
            "P2",
            "Common Anchored Follower",
            "U <-follow- U <-anchor-> U -follow-> U",
            follow_left.T,
            follow_right,
        ),
        _follow_path(
            "P3",
            "Common Anchored Followee-Follower",
            "U -follow-> U <-anchor-> U -follow-> U",
            follow_left,
            follow_right,
        ),
        _follow_path(
            "P4",
            "Common Anchored Follower-Followee",
            "U <-follow- U <-anchor-> U <-follow- U",
            follow_left.T,
            follow_right.T,
        ),
    ]


def attribute_paths(include_words: bool = False) -> List[MetaPath]:
    """The attribute paths P5-P6 (and extension P7 when requested)."""
    paths = [
        _attribute_path(
            "P5",
            "Common Timestamp",
            "U -write-> P -at-> T <-at- P <-write- U",
            TIMESTAMP_LEFT,
            TIMESTAMP_RIGHT,
        ),
        _attribute_path(
            "P6",
            "Common Checkin",
            "U -write-> P -checkin-> L <-checkin- P <-write- U",
            LOCATION_LEFT,
            LOCATION_RIGHT,
        ),
    ]
    if include_words:
        paths.append(
            _attribute_path(
                "P7",
                "Common Word",
                "U -write-> P -contain-> W <-contain- P <-write- U",
                WORD_LEFT,
                WORD_RIGHT,
            )
        )
    return paths


def standard_paths(include_words: bool = False) -> List[MetaPath]:
    """All standard meta paths, P1..P6 (plus P7 if ``include_words``)."""
    return follow_paths() + attribute_paths(include_words=include_words)


def paths_by_name(include_words: bool = False) -> Dict[str, MetaPath]:
    """Name -> path mapping for the standard paths."""
    return {path.name: path for path in standard_paths(include_words)}


def path_categories(
    paths: List[MetaPath],
) -> Tuple[List[MetaPath], List[MetaPath]]:
    """Split a path list into (follow paths, attribute paths)."""
    follow = [path for path in paths if path.category == FOLLOW_CATEGORY]
    attribute = [path for path in paths if path.category == ATTRIBUTE_CATEGORY]
    return follow, attribute
