"""Sparse count algebra for meta paths and meta diagrams.

A meta structure's instance-count matrix is expressible as a small
expression tree over the network's typed adjacency matrices:

* :class:`Leaf` — one typed adjacency (optionally transposed);
* :class:`Chain` — concatenation of segments: sparse matrix product
  (counts paths through a shared junction node type);
* :class:`Parallel` — stacking of segments between the *same* pair of
  junction node types: Hadamard (elementwise) product, because a diagram
  instance must realize every stacked branch through the same junction
  nodes.

This algebra realizes Definition 5's meta diagrams for counting purposes:
``count(P1 x P2) = (F1 ∘ F1ᵀ) · A · (F2ᵀ ∘ F2)`` and so on, and is
validated against brute-force subgraph enumeration in the test suite.

Expressions have canonical structural keys so a memoizing evaluator can
share subresults between diagrams — the covering-set reuse optimization
of Section III-B.3 (a diagram containing an already-computed diagram
reuses its product).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Sequence, Tuple

from scipy import sparse

from repro.exceptions import MetaStructureError

#: A bag of named typed adjacency matrices, e.g. ``{"F1": csr, "A": csr}``.
MatrixBag = Dict[str, sparse.csr_matrix]


class Expr:
    """Base class of count-algebra expressions."""

    def key(self) -> str:
        """Canonical structural key; equal keys imply equal matrices."""
        raise NotImplementedError

    def evaluate(self, matrices: MatrixBag) -> sparse.csr_matrix:
        """Evaluate without memoization (see :class:`CountingEngine`)."""
        raise NotImplementedError

    def leaves(self) -> Tuple[str, ...]:
        """All leaf matrix names referenced by this expression."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.key()})"


class Leaf(Expr):
    """Reference to one named typed adjacency matrix.

    Parameters
    ----------
    name:
        Key into the matrix bag (e.g. ``"F1"``).
    transpose:
        Whether to use the transposed matrix.
    """

    def __init__(self, name: str, transpose: bool = False) -> None:
        if not name:
            raise MetaStructureError("leaf matrix name must be non-empty")
        self.name = name
        self.transpose = transpose

    def key(self) -> str:
        return f"{self.name}^T" if self.transpose else self.name

    def evaluate(self, matrices: MatrixBag) -> sparse.csr_matrix:
        try:
            matrix = matrices[self.name]
        except KeyError:
            raise MetaStructureError(
                f"matrix {self.name!r} missing from the matrix bag"
            ) from None
        if self.transpose:
            return matrix.transpose().tocsr()
        return matrix.tocsr()

    def leaves(self) -> Tuple[str, ...]:
        return (self.name,)

    @property
    def T(self) -> "Leaf":
        """The transposed leaf."""
        return Leaf(self.name, transpose=not self.transpose)


class Chain(Expr):
    """Matrix product of two or more segments (path concatenation)."""

    def __init__(self, segments: Sequence[Expr]) -> None:
        flattened = []
        for segment in segments:
            if isinstance(segment, Chain):
                flattened.extend(segment.segments)
            else:
                flattened.append(segment)
        if len(flattened) < 2:
            raise MetaStructureError("Chain needs at least two segments")
        self.segments: Tuple[Expr, ...] = tuple(flattened)

    def key(self) -> str:
        return "(" + "@".join(segment.key() for segment in self.segments) + ")"

    def evaluate(self, matrices: MatrixBag) -> sparse.csr_matrix:
        result = self.segments[0].evaluate(matrices)
        for segment in self.segments[1:]:
            operand = segment.evaluate(matrices)
            if result.shape[1] != operand.shape[0]:
                raise MetaStructureError(
                    f"chain shape mismatch: {result.shape} @ {operand.shape} "
                    f"in {self.key()}"
                )
            result = (result @ operand).tocsr()
        return result

    def leaves(self) -> Tuple[str, ...]:
        names: Tuple[str, ...] = ()
        for segment in self.segments:
            names += segment.leaves()
        return names


class Parallel(Expr):
    """Hadamard product of two or more branches (path stacking).

    Branch order is canonicalized (Hadamard is commutative) so logically
    identical stackings share a memoization key.
    """

    def __init__(self, branches: Sequence[Expr]) -> None:
        flattened = []
        for branch in branches:
            if isinstance(branch, Parallel):
                flattened.extend(branch.branches)
            else:
                flattened.append(branch)
        if len(flattened) < 2:
            raise MetaStructureError("Parallel needs at least two branches")
        self.branches: Tuple[Expr, ...] = tuple(
            sorted(flattened, key=lambda branch: branch.key())
        )

    def key(self) -> str:
        return "(" + "*".join(branch.key() for branch in self.branches) + ")"

    def evaluate(self, matrices: MatrixBag) -> sparse.csr_matrix:
        result = self.branches[0].evaluate(matrices)
        for branch in self.branches[1:]:
            operand = branch.evaluate(matrices)
            if result.shape != operand.shape:
                raise MetaStructureError(
                    f"parallel shape mismatch: {result.shape} vs {operand.shape} "
                    f"in {self.key()}"
                )
            result = result.multiply(operand).tocsr()
        return result

    def leaves(self) -> Tuple[str, ...]:
        names: Tuple[str, ...] = ()
        for branch in self.branches:
            names += branch.leaves()
        return names


class CountingEngine:
    """Memoizing evaluator for count-algebra expressions.

    Evaluating the full diagram family naively recomputes shared
    sub-chains (every attribute diagram contains ``W1 @ ... @ W2ᵀ``
    pieces; every follow diagram contains products with ``A``).  The
    engine caches every sub-expression by canonical key, which implements
    the covering-set reuse described at the end of Section III-B.3.

    Parameters
    ----------
    matrices:
        The named typed adjacency matrices of one aligned pair.
    arena:
        Optional :class:`~repro.store.arena.MatrixArena`.  When given,
        every memoized product (chains and Hadamards; leaves are served
        from the bag) is spilled to the arena and the cache holds only
        its memory-mapped view — the engine's resident set becomes the
        pages actually read instead of every intermediate ever
        computed.  Results are byte-identical either way.
    arena_prefix:
        Namespace for the engine's arena entries, so one arena can be
        shared with a session's own count-matrix slots.
    """

    def __init__(
        self, matrices: MatrixBag, arena=None, arena_prefix: str = "engine/"
    ) -> None:
        self._matrices = dict(matrices)
        # Canonicalize up front: every published matrix has sorted
        # indices, so later (possibly concurrent) batched lookups never
        # trigger a lazy in-place sort of a shared matrix.
        for matrix in self._matrices.values():
            matrix.sort_indices()
        self._cache: Dict[str, sparse.csr_matrix] = {}
        self._deps: Dict[str, FrozenSet[str]] = {}
        self._arena = arena
        self._arena_prefix = arena_prefix

    def _spill(self, key: str, result: sparse.csr_matrix) -> sparse.csr_matrix:
        """Swap an in-RAM product for its arena-served memory map."""
        if self._arena is None:
            return result
        slot = self._arena_prefix + key
        self._arena.put(slot, result)
        return self._arena.get(slot)

    @property
    def cache_size(self) -> int:
        """Number of memoized sub-expression results."""
        return len(self._cache)

    def dependents(self, name: str) -> Tuple[str, ...]:
        """Cached expression keys whose value depends on matrix ``name``.

        Dependency is tracked from each expression's leaf set at cache
        time, so partial invalidation never has to re-parse keys.
        """
        return tuple(
            key for key, leaves in self._deps.items() if name in leaves
        )

    def evaluate(self, expr: Expr) -> sparse.csr_matrix:
        """Evaluate ``expr`` with memoization of all sub-expressions."""
        key = expr.key()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if isinstance(expr, Leaf):
            result = expr.evaluate(self._matrices)
        elif isinstance(expr, Chain):
            result = self.evaluate(expr.segments[0])
            for segment in expr.segments[1:]:
                operand = self.evaluate(segment)
                if result.shape[1] != operand.shape[0]:
                    raise MetaStructureError(
                        f"chain shape mismatch: {result.shape} @ {operand.shape} "
                        f"in {key}"
                    )
                result = (result @ operand).tocsr()
        elif isinstance(expr, Parallel):
            result = self.evaluate(expr.branches[0])
            for branch in expr.branches[1:]:
                operand = self.evaluate(branch)
                if result.shape != operand.shape:
                    raise MetaStructureError(
                        f"parallel shape mismatch: {result.shape} vs "
                        f"{operand.shape} in {key}"
                    )
                result = result.multiply(operand).tocsr()
        else:
            raise MetaStructureError(f"unknown expression type {type(expr).__name__}")
        # Sort before publishing (still thread-private): concurrent
        # evaluations of the same key may duplicate work, but every
        # matrix that lands in the cache is already canonical, so
        # readers never mutate it.  Counts are integers, so the sort
        # cannot perturb any downstream floating-point result.
        result.sort_indices()
        if not isinstance(expr, Leaf):
            # Leaves are the bag's own matrices; spilling them would
            # only duplicate what the caller already holds.
            result = self._spill(key, result)
        self._cache[key] = result
        self._deps[key] = frozenset(expr.leaves())
        return result

    def invalidate(self) -> None:
        """Drop all memoized results (call after the anchor matrix changes)."""
        if self._arena is not None:
            for key in self._cache:
                self._arena.drop(self._arena_prefix + key)
        self._cache.clear()
        self._deps.clear()

    def update_matrix(self, name: str, matrix: sparse.csr_matrix) -> None:
        """Replace one named matrix and drop every result depending on it.

        Used by models that refresh the anchor matrix ``A`` after label
        queries: attribute-only diagrams (which never touch ``A``) keep
        their cached counts.  Results cached before dependency tracking
        existed (none in normal operation) fall back to key parsing.
        """
        matrix.sort_indices()
        self._matrices[name] = matrix
        stale = [
            key
            for key in self._cache
            if (
                name in self._deps[key]
                if key in self._deps
                else _key_mentions(key, name)
            )
        ]
        for key in stale:
            del self._cache[key]
            self._deps.pop(key, None)
            if self._arena is not None:
                self._arena.drop(self._arena_prefix + key)


def _key_mentions(key: str, name: str) -> bool:
    """Whether a canonical expression key references matrix ``name``.

    Keys are built from matrix names joined by ``( ) @ * ^`` tokens, so a
    name occurrence is always delimited by one of those or string ends.
    """
    start = 0
    while True:
        index = key.find(name, start)
        if index < 0:
            return False
        before_ok = index == 0 or key[index - 1] in "(@*"
        end = index + len(name)
        after_ok = end == len(key) or key[end] in ")@*^"
        if before_ok and after_ok:
            return True
        start = index + 1
