"""Sparse count algebra for meta paths and meta diagrams.

A meta structure's instance-count matrix is expressible as a small
expression tree over the network's typed adjacency matrices:

* :class:`Leaf` — one typed adjacency (optionally transposed);
* :class:`Chain` — concatenation of segments: sparse matrix product
  (counts paths through a shared junction node type);
* :class:`Parallel` — stacking of segments between the *same* pair of
  junction node types: Hadamard (elementwise) product, because a diagram
  instance must realize every stacked branch through the same junction
  nodes.

This algebra realizes Definition 5's meta diagrams for counting purposes:
``count(P1 x P2) = (F1 ∘ F1ᵀ) · A · (F2ᵀ ∘ F2)`` and so on, and is
validated against brute-force subgraph enumeration in the test suite.

Expressions have canonical structural keys so a memoizing evaluator can
share subresults between diagrams — the covering-set reuse optimization
of Section III-B.3 (a diagram containing an already-computed diagram
reuses its product).
"""

from __future__ import annotations

import threading
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np
from scipy import sparse

from repro.exceptions import MetaStructureError

#: A bag of named typed adjacency matrices, e.g. ``{"F1": csr, "A": csr}``.
MatrixBag = Dict[str, sparse.csr_matrix]


class Expr:
    """Base class of count-algebra expressions."""

    def key(self) -> str:
        """Canonical structural key; equal keys imply equal matrices."""
        raise NotImplementedError

    def evaluate(self, matrices: MatrixBag) -> sparse.csr_matrix:
        """Evaluate without memoization (see :class:`CountingEngine`)."""
        raise NotImplementedError

    def leaves(self) -> Tuple[str, ...]:
        """All leaf matrix names referenced by this expression."""
        raise NotImplementedError

    def depends_on(self, names: Union[str, Iterable[str]]) -> bool:
        """Whether any of the named matrices appears as a leaf.

        This is the dirty-propagation primitive of the delta algebra: a
        delta on matrix ``name`` can only change the value of
        expressions for which ``depends_on(name)`` holds — everything
        else keeps its cached counts verbatim.
        """
        if isinstance(names, str):
            names = (names,)
        wanted = set(names)
        return any(leaf in wanted for leaf in self.leaves())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.key()})"


class Leaf(Expr):
    """Reference to one named typed adjacency matrix.

    Parameters
    ----------
    name:
        Key into the matrix bag (e.g. ``"F1"``).
    transpose:
        Whether to use the transposed matrix.
    """

    def __init__(self, name: str, transpose: bool = False) -> None:
        if not name:
            raise MetaStructureError("leaf matrix name must be non-empty")
        self.name = name
        self.transpose = transpose

    def key(self) -> str:
        return f"{self.name}^T" if self.transpose else self.name

    def evaluate(self, matrices: MatrixBag) -> sparse.csr_matrix:
        try:
            matrix = matrices[self.name]
        except KeyError:
            raise MetaStructureError(
                f"matrix {self.name!r} missing from the matrix bag"
            ) from None
        if self.transpose:
            return matrix.transpose().tocsr()
        return matrix.tocsr()

    def leaves(self) -> Tuple[str, ...]:
        return (self.name,)

    @property
    def T(self) -> "Leaf":
        """The transposed leaf."""
        return Leaf(self.name, transpose=not self.transpose)


class Chain(Expr):
    """Matrix product of two or more segments (path concatenation)."""

    def __init__(self, segments: Sequence[Expr]) -> None:
        flattened = []
        for segment in segments:
            if isinstance(segment, Chain):
                flattened.extend(segment.segments)
            else:
                flattened.append(segment)
        if len(flattened) < 2:
            raise MetaStructureError("Chain needs at least two segments")
        self.segments: Tuple[Expr, ...] = tuple(flattened)

    def key(self) -> str:
        return "(" + "@".join(segment.key() for segment in self.segments) + ")"

    def evaluate(self, matrices: MatrixBag) -> sparse.csr_matrix:
        result = self.segments[0].evaluate(matrices)
        for segment in self.segments[1:]:
            operand = segment.evaluate(matrices)
            if result.shape[1] != operand.shape[0]:
                raise MetaStructureError(
                    f"chain shape mismatch: {result.shape} @ {operand.shape} "
                    f"in {self.key()}"
                )
            result = (result @ operand).tocsr()
        return result

    def leaves(self) -> Tuple[str, ...]:
        names: Tuple[str, ...] = ()
        for segment in self.segments:
            names += segment.leaves()
        return names


class Parallel(Expr):
    """Hadamard product of two or more branches (path stacking).

    Branch order is canonicalized (Hadamard is commutative) so logically
    identical stackings share a memoization key.
    """

    def __init__(self, branches: Sequence[Expr]) -> None:
        flattened = []
        for branch in branches:
            if isinstance(branch, Parallel):
                flattened.extend(branch.branches)
            else:
                flattened.append(branch)
        if len(flattened) < 2:
            raise MetaStructureError("Parallel needs at least two branches")
        self.branches: Tuple[Expr, ...] = tuple(
            sorted(flattened, key=lambda branch: branch.key())
        )

    def key(self) -> str:
        return "(" + "*".join(branch.key() for branch in self.branches) + ")"

    def evaluate(self, matrices: MatrixBag) -> sparse.csr_matrix:
        result = self.branches[0].evaluate(matrices)
        for branch in self.branches[1:]:
            operand = branch.evaluate(matrices)
            if result.shape != operand.shape:
                raise MetaStructureError(
                    f"parallel shape mismatch: {result.shape} vs {operand.shape} "
                    f"in {self.key()}"
                )
            result = result.multiply(operand).tocsr()
        return result

    def leaves(self) -> Tuple[str, ...]:
        names: Tuple[str, ...] = ()
        for branch in self.branches:
            names += branch.leaves()
        return names


def pad_csr(
    matrix: sparse.spmatrix, shape: Tuple[int, int]
) -> sparse.csr_matrix:
    """Grow a CSR matrix to ``shape``, keeping every entry in place.

    Node additions append to the end of each type's order, so growing a
    matrix exported before the addition is pure padding: new rows are
    empty (extend ``indptr``), new columns are a shape change.  Never
    copies the data arrays.
    """
    matrix = matrix.tocsr()
    rows, cols = matrix.shape
    if (rows, cols) == tuple(shape):
        return matrix
    if shape[0] < rows or shape[1] < cols:
        raise MetaStructureError(
            f"cannot pad a {matrix.shape} matrix down to {tuple(shape)}"
        )
    indptr = matrix.indptr
    if shape[0] > rows:
        indptr = np.concatenate(
            [
                indptr,
                np.full(shape[0] - rows, indptr[-1], dtype=indptr.dtype),
            ]
        )
    padded = sparse.csr_matrix(
        (matrix.data, matrix.indices, indptr), shape=tuple(shape), copy=False
    )
    padded.has_sorted_indices = matrix.has_sorted_indices
    return padded


def expr_shape(
    expr: Expr, shapes: Mapping[str, Tuple[int, int]]
) -> Tuple[int, int]:
    """Infer the shape of ``expr``'s value from leaf matrix shapes.

    Used by the delta algebra to pad cached values when a network
    evolution grows the underlying matrices: the *new* leaf shapes
    determine every sub-expression's new shape without evaluating
    anything.
    """
    if isinstance(expr, Leaf):
        try:
            rows, cols = shapes[expr.name]
        except KeyError:
            raise MetaStructureError(
                f"no shape known for leaf matrix {expr.name!r}"
            ) from None
        return (cols, rows) if expr.transpose else (rows, cols)
    if isinstance(expr, Chain):
        first = expr_shape(expr.segments[0], shapes)
        last = expr_shape(expr.segments[-1], shapes)
        return (first[0], last[1])
    if isinstance(expr, Parallel):
        return expr_shape(expr.branches[0], shapes)
    raise MetaStructureError(f"unknown expression type {type(expr).__name__}")


def dirty_expressions(
    named_exprs: Mapping[str, Expr], changed: Iterable[str]
) -> Tuple[str, ...]:
    """Names of the expressions a delta on the given leaves touches.

    The dirty-propagation report of the delta algebra: given the family's
    ``{feature name -> count expression}`` map and the set of base
    matrices a network update changed, returns (in input order) exactly
    the expressions whose counts can differ — the rest are provably
    unchanged and keep their caches.
    """
    changed = set(changed)
    return tuple(
        name
        for name, expr in named_exprs.items()
        if expr.depends_on(changed)
    )


class CountingEngine:
    """Memoizing evaluator for count-algebra expressions.

    Evaluating the full diagram family naively recomputes shared
    sub-chains (every attribute diagram contains ``W1 @ ... @ W2ᵀ``
    pieces; every follow diagram contains products with ``A``).  The
    engine caches every sub-expression by canonical key, which implements
    the covering-set reuse described at the end of Section III-B.3.

    Parameters
    ----------
    matrices:
        The named typed adjacency matrices of one aligned pair.
    arena:
        Optional :class:`~repro.store.arena.MatrixArena`.  When given,
        every memoized product (chains and Hadamards; leaves are served
        from the bag) is spilled to the arena and the cache holds only
        its memory-mapped view — the engine's resident set becomes the
        pages actually read instead of every intermediate ever
        computed.  Results are byte-identical either way.
    arena_prefix:
        Namespace for the engine's arena entries, so one arena can be
        shared with a session's own count-matrix slots.
    """

    #: Pending seeded changes folded eagerly past this depth, bounding
    #: the cost of component-wise lookups between folds.  Each pending
    #: change is sparse and lookups cost O(m log nnz) per component, so
    #: a deep queue is far cheaper than the O(nnz) fold of a dense-ish
    #: product it defers — the cap only bounds memory and lookup fanout
    #: for very long sessions.
    _MAX_PENDING = 32

    def __init__(
        self, matrices: MatrixBag, arena=None, arena_prefix: str = "engine/"
    ) -> None:
        self._matrices = dict(matrices)
        # Canonicalize up front: every published matrix has sorted
        # indices, so later (possibly concurrent) batched lookups never
        # trigger a lazy in-place sort of a shared matrix.
        for matrix in self._matrices.values():
            matrix.sort_indices()
        self._cache: Dict[str, sparse.csr_matrix] = {}
        self._deps: Dict[str, FrozenSet[str]] = {}
        # key -> exact unfolded changes of the cached value (seeded by
        # the delta algebra); folded lazily when the full matrix is
        # demanded, served component-wise for targeted lookups.  The
        # lock keeps (cache value, pending changes) consistent for
        # concurrent readers: unlike the write-once product cache
        # (where duplicate evaluation is benign), a torn read across a
        # fold would silently drop seeded changes.
        self._pending: Dict[str, Tuple[sparse.csr_matrix, ...]] = {}
        self._pending_lock = threading.Lock()
        self._arena = arena
        self._arena_prefix = arena_prefix

    def _spill(self, key: str, result: sparse.csr_matrix) -> sparse.csr_matrix:
        """Swap an in-RAM product for its arena-served memory map."""
        if self._arena is None:
            return result
        slot = self._arena_prefix + key
        self._arena.put(slot, result)
        return self._arena.get(slot)

    @property
    def cache_size(self) -> int:
        """Number of memoized sub-expression results."""
        return len(self._cache)

    def matrix(self, name: str) -> sparse.csr_matrix:
        """The named base matrix currently held by the engine.

        Callers must treat the result as read-only — it is the very
        matrix cached evaluations were computed from.
        """
        try:
            return self._matrices[name]
        except KeyError:
            raise MetaStructureError(
                f"matrix {name!r} missing from the matrix bag"
            ) from None

    @property
    def matrix_names(self) -> Tuple[str, ...]:
        """Sorted names of the base matrices in the bag."""
        return tuple(sorted(self._matrices))

    def dependents(self, name: str) -> Tuple[str, ...]:
        """Cached expression keys whose value depends on matrix ``name``.

        Dependency is tracked from each expression's leaf set at cache
        time, so partial invalidation never has to re-parse keys.
        """
        return tuple(
            key for key, leaves in self._deps.items() if name in leaves
        )

    def evaluate(self, expr: Expr) -> sparse.csr_matrix:
        """Evaluate ``expr`` with memoization of all sub-expressions."""
        key = expr.key()
        # Pending membership is checked BEFORE the cache read: the fold
        # path publishes the folded value to the cache and only then
        # removes the pending entry, so a lock-free reader that sees no
        # pending is guaranteed to see either the folded value or a
        # pre-seed base — never a base missing its seeded changes.
        if key in self._pending:
            with self._pending_lock:
                pending = self._pending.get(key)
                if pending:
                    cached = self._fold(key, self._cache[key], pending)
                    del self._pending[key]
                else:
                    cached = self._cache.get(key)
            if cached is not None:
                return cached
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if isinstance(expr, Leaf):
            result = expr.evaluate(self._matrices)
        elif isinstance(expr, Chain):
            result = self.evaluate(expr.segments[0])
            for segment in expr.segments[1:]:
                operand = self.evaluate(segment)
                if result.shape[1] != operand.shape[0]:
                    raise MetaStructureError(
                        f"chain shape mismatch: {result.shape} @ {operand.shape} "
                        f"in {key}"
                    )
                result = (result @ operand).tocsr()
        elif isinstance(expr, Parallel):
            result = self.evaluate(expr.branches[0])
            for branch in expr.branches[1:]:
                operand = self.evaluate(branch)
                if result.shape != operand.shape:
                    raise MetaStructureError(
                        f"parallel shape mismatch: {result.shape} vs "
                        f"{operand.shape} in {key}"
                    )
                result = result.multiply(operand).tocsr()
        else:
            raise MetaStructureError(f"unknown expression type {type(expr).__name__}")
        # Sort before publishing (still thread-private): concurrent
        # evaluations of the same key may duplicate work, but every
        # matrix that lands in the cache is already canonical, so
        # readers never mutate it.  Counts are integers, so the sort
        # cannot perturb any downstream floating-point result.
        result.sort_indices()
        if not isinstance(expr, Leaf):
            # Leaves are the bag's own matrices; spilling them would
            # only duplicate what the caller already holds.
            result = self._spill(key, result)
        self._cache[key] = result
        self._deps[key] = frozenset(expr.leaves())
        return result

    def _fold(
        self,
        key: str,
        base: sparse.csr_matrix,
        pending: Tuple[sparse.csr_matrix, ...],
    ) -> sparse.csr_matrix:
        """Materialize a seeded value: padded base plus exact changes.

        Components may sit at different (monotonically growing) shapes
        when several growth events seeded before any fold; everything
        pads to the largest.
        """
        parts = (base,) + pending
        shape = (
            max(part.shape[0] for part in parts),
            max(part.shape[1] for part in parts),
        )
        result = pad_csr(base, shape)
        for change in pending:
            result = (result + pad_csr(change, shape)).tocsr()
        result.eliminate_zeros()
        result.sort_indices()
        result = self._spill(key, result)
        self._cache[key] = result
        return result

    def seed_change(
        self, expr: Expr, change: sparse.csr_matrix
    ) -> bool:
        """Register the exact change of a cached sub-expression value.

        The delta algebra hands back the change of every sub-expression
        it telescoped through
        (:meth:`~repro.engine.incremental.DeltaEvaluator.updated_changes`)
        — exact by integer arithmetic — so after a matrix update the
        cache stays warm instead of re-running the expensive products.
        The O(nnz) fold is **deferred**: :meth:`components` serves
        targeted lookups from the unfolded parts, and :meth:`evaluate`
        folds only when the full matrix is demanded (eagerly past a
        small pending depth).  Returns whether a cached value existed
        to seed — an uncached expression has nothing to keep warm.
        """
        key = expr.key()
        with self._pending_lock:
            base = self._cache.get(key)
            if base is None:
                self._pending.pop(key, None)
                return False
            pending = self._pending.get(key, ()) + (change.tocsr(),)
            self._deps[key] = frozenset(expr.leaves())
            if len(pending) >= self._MAX_PENDING:
                # Publish the fold before dropping the pending entry —
                # the ordering lock-free readers rely on.
                self._fold(key, base, pending)
                self._pending.pop(key, None)
            else:
                self._pending[key] = pending
        return True

    def components(
        self, expr: Expr
    ) -> Optional[Tuple[sparse.csr_matrix, Tuple[sparse.csr_matrix, ...]]]:
        """Cached value of ``expr`` as ``(base, pending changes)``.

        The base may be at a smaller (pre-growth) shape than the
        changes; callers doing targeted lookups mask positions outside
        each component's shape instead of paying the fold.  ``None``
        when nothing is cached.
        """
        key = expr.key()
        with self._pending_lock:
            base = self._cache.get(key)
            if base is None:
                return None
            return base, self._pending.get(key, ())

    def invalidate(self) -> None:
        """Drop all memoized results (call after the anchor matrix changes)."""
        if self._arena is not None:
            for key in self._cache:
                self._arena.drop(self._arena_prefix + key)
        self._cache.clear()
        self._deps.clear()
        self._pending.clear()

    def update_matrix(self, name: str, matrix: sparse.csr_matrix) -> None:
        """Replace one named matrix and drop every result depending on it.

        Used by models that refresh the anchor matrix ``A`` after label
        queries: attribute-only diagrams (which never touch ``A``) keep
        their cached counts.
        """
        self.update_matrices({name: matrix})

    def update_matrices(
        self,
        updates: Mapping[str, sparse.csr_matrix],
        preserve: Iterable[str] = (),
    ) -> None:
        """Replace several named matrices in one invalidation pass.

        The generalized-delta entry point: a network evolution changes
        ``W1``/``W2``/adjacency (and pads ``A``) together, and every
        cached product depending on *any* of them must go — one sweep
        over the cache instead of one per matrix.  ``preserve`` names
        cache keys the caller has just brought current through
        :meth:`seed_change` (their seeded state equals the value over
        the new matrices, so purging them would only force a recount).
        Results cached before dependency tracking existed (none in
        normal operation) fall back to key parsing.
        """
        if not updates:
            return
        for name, matrix in updates.items():
            matrix.sort_indices()
            self._matrices[name] = matrix
        names = set(updates)
        preserved = set(preserve)
        stale = [
            key
            for key in self._cache
            if key not in preserved
            and (
                bool(names & self._deps[key])
                if key in self._deps
                else any(_key_mentions(key, name) for name in names)
            )
        ]
        for key in stale:
            del self._cache[key]
            self._deps.pop(key, None)
            self._pending.pop(key, None)
            if self._arena is not None:
                self._arena.drop(self._arena_prefix + key)


def _key_mentions(key: str, name: str) -> bool:
    """Whether a canonical expression key references matrix ``name``.

    Keys are built from matrix names joined by ``( ) @ * ^`` tokens, so a
    name occurrence is always delimited by one of those or string ends.
    """
    start = 0
    while True:
        index = key.find(name, start)
        if index < 0:
            return False
        before_ok = index == 0 or key[index - 1] in "(@*"
        end = index + len(name)
        after_ok = end == len(key) or key[end] in ")@*^"
        if before_ok and after_ok:
            return True
        start = index + 1
