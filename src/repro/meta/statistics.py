"""Support statistics for meta structure families.

For model debugging and feature selection it helps to know, per meta
structure, how many candidate user pairs it connects at all (support),
how heavy its instance counts are, and how well its proximity separates
anchors from non-anchors.  :func:`family_statistics` computes all three
in one pass over a family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


from repro.meta.algebra import CountingEngine
from repro.meta.context import build_matrix_bag
from repro.meta.diagrams import DiagramFamily, standard_diagram_family
from repro.meta.proximity import ProximityMatrix
from repro.networks.aligned import AlignedPair
from repro.types import LinkPair


@dataclass(frozen=True)
class StructureStats:
    """Statistics of one meta structure over the full candidate grid."""

    name: str
    support: int
    support_fraction: float
    total_instances: float
    max_count: float
    mean_anchor_proximity: float
    mean_background_proximity: float

    @property
    def separation(self) -> float:
        """Anchor-vs-background proximity ratio (∞-safe)."""
        if self.mean_background_proximity == 0:
            return float("inf") if self.mean_anchor_proximity > 0 else 0.0
        return self.mean_anchor_proximity / self.mean_background_proximity


def family_statistics(
    pair: AlignedPair,
    family: Optional[DiagramFamily] = None,
    known_anchors: Optional[Sequence[LinkPair]] = None,
) -> List[StructureStats]:
    """Compute :class:`StructureStats` for every structure in a family.

    ``known_anchors`` feeds the anchor matrix (defaults to all ground
    truth — appropriate for *diagnostics*, not for model features).
    """
    if family is None:
        family = standard_diagram_family()
    anchors = list(known_anchors) if known_anchors is not None else sorted(
        pair.anchors, key=repr
    )
    bag = build_matrix_bag(pair, known_anchors=anchors)
    engine = CountingEngine(bag)

    anchor_left, anchor_right = pair.pairs_to_indices(sorted(pair.anchors, key=repr))
    n_left = pair.left.node_count(pair.anchor_node_type)
    n_right = pair.right.node_count(pair.anchor_node_type)
    grid = n_left * n_right

    stats: List[StructureStats] = []
    for name, expr in zip(family.feature_names, family.exprs):
        counts = engine.evaluate(expr)
        proximity = ProximityMatrix(counts)
        dense = proximity.dense()
        anchor_scores = proximity.scores(anchor_left, anchor_right)
        anchor_total = float(anchor_scores.sum())
        background_mean = (
            (dense.sum() - anchor_total) / max(1, grid - anchor_left.size)
        )
        stats.append(
            StructureStats(
                name=name,
                support=int((counts > 0).sum()),
                support_fraction=float((counts > 0).sum() / grid),
                total_instances=float(counts.sum()),
                max_count=float(counts.max()) if counts.nnz else 0.0,
                mean_anchor_proximity=float(anchor_scores.mean())
                if anchor_scores.size
                else 0.0,
                mean_background_proximity=float(background_mean),
            )
        )
    return stats


def format_family_statistics(stats: Sequence[StructureStats]) -> str:
    """Render family statistics as an aligned plain-text table."""
    header = (
        f"{'structure':<14}{'support':>9}{'supp%':>8}{'inst.':>10}"
        f"{'anchor-s':>10}{'backgr-s':>10}{'sep':>8}"
    )
    lines = [header, "-" * len(header)]
    for item in stats:
        separation = (
            "inf" if item.separation == float("inf") else f"{item.separation:.1f}"
        )
        lines.append(
            f"{item.name:<14}{item.support:>9}{item.support_fraction:>8.2%}"
            f"{item.total_instances:>10.0f}{item.mean_anchor_proximity:>10.3f}"
            f"{item.mean_background_proximity:>10.4f}{separation:>8}"
        )
    return "\n".join(lines)
