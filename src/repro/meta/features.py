"""Per-link feature extraction from meta diagram proximities (§III-B.3).

For every candidate anchor link ``l = (u_i, u_j)`` in H and every meta
structure ``Φ_k`` in the configured family, the feature vector holds the
meta diagram proximity ``s_Φk(u_i, u_j)``, plus a trailing dummy ``1``
that folds the bias term into the weight vector (as the paper does).

:class:`FeatureExtractor` is retained as a thin compatibility wrapper;
all cached state now lives in an
:class:`~repro.engine.session.AlignmentSession`, which the wrapper
either creates or shares.  New code should use the session directly —
it adds delta anchor updates and in-place feature refreshing.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.meta.algebra import CountingEngine
from repro.meta.diagrams import DiagramFamily
from repro.meta.proximity import ProximityMatrix
from repro.networks.aligned import AlignedPair
from repro.types import LinkPair


class FeatureExtractor:
    """Extracts meta-diagram proximity features for candidate links.

    Parameters
    ----------
    pair:
        The aligned networks.
    family:
        Meta structure family to use; defaults to the paper's full Φ.
    known_anchors:
        Anchor links visible for path counting (training + queried).
        Pass only labeled positives — never test anchors.
    include_bias:
        Whether to append the dummy ``1`` feature.
    include_words:
        Whether to export word matrices (required if the family uses P7).
    session:
        Share an existing :class:`AlignmentSession` instead of building
        a private one (``pair``/``family``/anchor arguments are then
        ignored in favor of the session's own state).

    Notes
    -----
    The extractor delegates to a memoizing session; when the model
    learns new anchors mid-training call :meth:`update_anchors`, which
    applies sparse delta updates to anchor-dependent counts while
    attribute-only structures stay cached.
    """

    def __init__(
        self,
        pair: AlignedPair,
        family: Optional[DiagramFamily] = None,
        known_anchors: Optional[Iterable[LinkPair]] = None,
        include_bias: bool = True,
        include_words: bool = False,
        session=None,
    ) -> None:
        from repro.engine.session import AlignmentSession

        if session is None:
            session = AlignmentSession(
                pair,
                family=family,
                known_anchors=known_anchors,
                include_bias=include_bias,
                include_words=include_words,
            )
        self.session = session
        self.pair = session.pair
        self.family = session.family
        self.include_bias = session.include_bias

    # ------------------------------------------------------------------
    @classmethod
    def from_session(cls, session) -> "FeatureExtractor":
        """Wrap an existing session without building new state."""
        return cls(session.pair, session=session)

    @property
    def feature_names(self) -> List[str]:
        """Ordered feature names (meta structures, then optional bias)."""
        return self.session.feature_names

    @property
    def n_features(self) -> int:
        """Feature dimensionality d."""
        return self.session.n_features

    @property
    def engine(self) -> CountingEngine:
        """The underlying memoizing counting engine (for diagnostics)."""
        return self.session.engine

    # ------------------------------------------------------------------
    def update_anchors(self, known_anchors: Iterable[LinkPair]) -> None:
        """Refresh the anchor matrix ``A`` with a new known-anchor set.

        Anchor-dependent count matrices are delta-updated (or dropped
        for lazy re-evaluation when the change is large); attribute-only
        structures stay cached.
        """
        self.session.set_anchors(known_anchors)

    def proximity_matrices(self) -> List[ProximityMatrix]:
        """Proximity matrices for every structure in the family (cached)."""
        return self.session.proximity_matrices()

    def extract(self, pairs: Sequence[LinkPair]) -> np.ndarray:
        """Feature matrix ``X`` of shape ``(len(pairs), n_features)``.

        Row order matches ``pairs``; column order matches
        :attr:`feature_names`.
        """
        return self.session.extract(pairs)

    def extract_single(self, pair: LinkPair) -> np.ndarray:
        """Feature vector for one candidate link."""
        return self.session.extract_single(pair)


def extract_features(
    pair: AlignedPair,
    pairs: Sequence[LinkPair],
    known_anchors: Optional[Iterable[LinkPair]] = None,
    family: Optional[DiagramFamily] = None,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`FeatureExtractor`.

    An empty ``pairs`` sequence yields an empty ``(0, d)`` matrix, the
    same contract as :meth:`FeatureExtractor.extract`.
    """
    extractor = FeatureExtractor(pair, family=family, known_anchors=known_anchors)
    return extractor.extract(pairs)
