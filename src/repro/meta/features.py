"""Per-link feature extraction from meta diagram proximities (§III-B.3).

For every candidate anchor link ``l = (u_i, u_j)`` in H and every meta
structure ``Φ_k`` in the configured family, the feature vector holds the
meta diagram proximity ``s_Φk(u_i, u_j)``, plus a trailing dummy ``1``
that folds the bias term into the weight vector (as the paper does).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import FeatureError
from repro.meta.algebra import CountingEngine
from repro.meta.context import ANCHOR_MATRIX, build_matrix_bag
from repro.meta.diagrams import DiagramFamily, standard_diagram_family
from repro.meta.proximity import ProximityMatrix
from repro.networks.aligned import AlignedPair
from repro.types import LinkPair


class FeatureExtractor:
    """Extracts meta-diagram proximity features for candidate links.

    Parameters
    ----------
    pair:
        The aligned networks.
    family:
        Meta structure family to use; defaults to the paper's full Φ.
    known_anchors:
        Anchor links visible for path counting (training + queried).
        Pass only labeled positives — never test anchors.
    include_bias:
        Whether to append the dummy ``1`` feature.
    include_words:
        Whether to export word matrices (required if the family uses P7).

    Notes
    -----
    The extractor owns a memoizing :class:`CountingEngine`; when the
    model learns new anchors mid-training call :meth:`update_anchors`,
    which refreshes only anchor-dependent cached products.
    """

    def __init__(
        self,
        pair: AlignedPair,
        family: Optional[DiagramFamily] = None,
        known_anchors: Optional[Iterable[LinkPair]] = None,
        include_bias: bool = True,
        include_words: bool = False,
    ) -> None:
        self.pair = pair
        self.family = family if family is not None else standard_diagram_family(
            include_words=include_words
        )
        self.include_bias = include_bias
        needs_words = any("P7" in name for name in self.family.feature_names)
        bag = build_matrix_bag(
            pair,
            known_anchors=known_anchors,
            include_words=include_words or needs_words,
        )
        self._engine = CountingEngine(bag)
        self._proximities: Optional[List[ProximityMatrix]] = None

    # ------------------------------------------------------------------
    @property
    def feature_names(self) -> List[str]:
        """Ordered feature names (meta structures, then optional bias)."""
        names = list(self.family.feature_names)
        if self.include_bias:
            names.append("bias")
        return names

    @property
    def n_features(self) -> int:
        """Feature dimensionality d."""
        return len(self.family.feature_names) + (1 if self.include_bias else 0)

    @property
    def engine(self) -> CountingEngine:
        """The underlying memoizing counting engine (for diagnostics)."""
        return self._engine

    # ------------------------------------------------------------------
    def update_anchors(self, known_anchors: Iterable[LinkPair]) -> None:
        """Refresh the anchor matrix ``A`` with a new known-anchor set.

        Invalidates cached products that involve ``A`` and the cached
        proximity matrices; attribute-only structures stay cached.
        """
        anchor_matrix = self.pair.anchor_matrix(list(known_anchors))
        self._engine.update_matrix(ANCHOR_MATRIX, anchor_matrix)
        self._proximities = None

    def proximity_matrices(self) -> List[ProximityMatrix]:
        """Proximity matrices for every structure in the family (cached)."""
        if self._proximities is None:
            self._proximities = [
                ProximityMatrix(self._engine.evaluate(expr))
                for expr in self.family.exprs
            ]
        return self._proximities

    def extract(self, pairs: Sequence[LinkPair]) -> np.ndarray:
        """Feature matrix ``X`` of shape ``(len(pairs), n_features)``.

        Row order matches ``pairs``; column order matches
        :attr:`feature_names`.
        """
        if not pairs:
            return np.zeros((0, self.n_features), dtype=np.float64)
        left_idx, right_idx = self.pair.pairs_to_indices(pairs)
        columns = [
            proximity.scores(left_idx, right_idx)
            for proximity in self.proximity_matrices()
        ]
        if self.include_bias:
            columns.append(np.ones(len(pairs), dtype=np.float64))
        return np.column_stack(columns)

    def extract_single(self, pair: LinkPair) -> np.ndarray:
        """Feature vector for one candidate link."""
        return self.extract([pair])[0]


def extract_features(
    pair: AlignedPair,
    pairs: Sequence[LinkPair],
    known_anchors: Optional[Iterable[LinkPair]] = None,
    family: Optional[DiagramFamily] = None,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`FeatureExtractor`."""
    if not pairs:
        raise FeatureError("no candidate pairs supplied")
    extractor = FeatureExtractor(pair, family=family, known_anchors=known_anchors)
    return extractor.extract(pairs)
