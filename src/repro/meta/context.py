"""Typed-adjacency matrix bags for an aligned network pair.

The meta-structure counting algebra works on named matrices; this module
defines the canonical names for the paper's social schema and exports
them from an :class:`~repro.networks.aligned.AlignedPair`:

========  =============================================  ==========
name      meaning                                        shape
========  =============================================  ==========
``F1``    follow adjacency, left network                 U1 x U1
``F2``    follow adjacency, right network                U2 x U2
``W1``    write incidence, left                          U1 x P1
``W2``    write incidence, right                         U2 x P2
``T1``    post-timestamp incidence, left (shared vocab)  P1 x nT
``T2``    post-timestamp incidence, right                P2 x nT
``L1``    post-location incidence, left                  P1 x nL
``L2``    post-location incidence, right                 P2 x nL
``D1``    post-word incidence, left                      P1 x nW
``D2``    post-word incidence, right                     P2 x nW
``A``     *known* anchor links                           U1 x U2
========  =============================================  ==========

Only anchors passed by the caller enter ``A`` — model code must pass the
training/queried anchors, never the full ground truth, to avoid label
leakage through path counting.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.meta.algebra import MatrixBag
from repro.networks.aligned import AlignedPair
from repro.networks.schema import FOLLOW, LOCATION, TIMESTAMP, WORD, WRITE
from repro.types import LinkPair

FOLLOW_LEFT = "F1"
FOLLOW_RIGHT = "F2"
WRITE_LEFT = "W1"
WRITE_RIGHT = "W2"
TIMESTAMP_LEFT = "T1"
TIMESTAMP_RIGHT = "T2"
LOCATION_LEFT = "L1"
LOCATION_RIGHT = "L2"
WORD_LEFT = "D1"
WORD_RIGHT = "D2"
ANCHOR_MATRIX = "A"


def build_matrix_bag(
    pair: AlignedPair,
    known_anchors: Optional[Iterable[LinkPair]] = None,
    include_words: bool = True,
) -> MatrixBag:
    """Export the matrix bag for one aligned pair.

    Parameters
    ----------
    pair:
        The aligned networks.
    known_anchors:
        Anchor links visible to the model (training plus queried).
        ``None`` means *no* anchors are known, which zeroes every
        anchor-dependent path; pass ``pair.anchors`` only for oracle
        experiments.
    include_words:
        Whether to export the word incidence matrices (needed when the
        extended word meta path P7 is in use).
    """
    anchors = list(known_anchors) if known_anchors is not None else []
    bag: MatrixBag = {
        FOLLOW_LEFT: pair.left.typed_adjacency(FOLLOW),
        FOLLOW_RIGHT: pair.right.typed_adjacency(FOLLOW),
        WRITE_LEFT: pair.left.typed_adjacency(WRITE),
        WRITE_RIGHT: pair.right.typed_adjacency(WRITE),
        ANCHOR_MATRIX: pair.anchor_matrix(anchors),
    }
    timestamp_left, timestamp_right = pair.attribute_matrices(TIMESTAMP)
    bag[TIMESTAMP_LEFT] = timestamp_left
    bag[TIMESTAMP_RIGHT] = timestamp_right
    location_left, location_right = pair.attribute_matrices(LOCATION)
    bag[LOCATION_LEFT] = location_left
    bag[LOCATION_RIGHT] = location_right
    if include_words:
        word_left, word_right = pair.attribute_matrices(WORD)
        bag[WORD_LEFT] = word_left
        bag[WORD_RIGHT] = word_right
    return bag
