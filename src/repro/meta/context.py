"""Typed-adjacency matrix bags for an aligned network pair.

The meta-structure counting algebra works on named matrices; this module
defines the canonical names for the paper's social schema and exports
them from an :class:`~repro.networks.aligned.AlignedPair`:

========  =============================================  ==========
name      meaning                                        shape
========  =============================================  ==========
``F1``    follow adjacency, left network                 U1 x U1
``F2``    follow adjacency, right network                U2 x U2
``W1``    write incidence, left                          U1 x P1
``W2``    write incidence, right                         U2 x P2
``T1``    post-timestamp incidence, left (shared vocab)  P1 x nT
``T2``    post-timestamp incidence, right                P2 x nT
``L1``    post-location incidence, left                  P1 x nL
``L2``    post-location incidence, right                 P2 x nL
``D1``    post-word incidence, left                      P1 x nW
``D2``    post-word incidence, right                     P2 x nW
``A``     *known* anchor links                           U1 x U2
========  =============================================  ==========

Only anchors passed by the caller enter ``A`` — model code must pass the
training/queried anchors, never the full ground truth, to avoid label
leakage through path counting.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.meta.algebra import MatrixBag
from repro.networks.aligned import AlignedPair
from repro.networks.schema import (
    FOLLOW,
    LOCATION,
    POST,
    TIMESTAMP,
    USER,
    WORD,
    WRITE,
)
from repro.types import LinkPair

FOLLOW_LEFT = "F1"
FOLLOW_RIGHT = "F2"
WRITE_LEFT = "W1"
WRITE_RIGHT = "W2"
TIMESTAMP_LEFT = "T1"
TIMESTAMP_RIGHT = "T2"
LOCATION_LEFT = "L1"
LOCATION_RIGHT = "L2"
WORD_LEFT = "D1"
WORD_RIGHT = "D2"
ANCHOR_MATRIX = "A"


#: Attribute-matrix name pairs keyed by the attribute type they export.
_ATTRIBUTE_NAMES = {
    TIMESTAMP: (TIMESTAMP_LEFT, TIMESTAMP_RIGHT),
    LOCATION: (LOCATION_LEFT, LOCATION_RIGHT),
    WORD: (WORD_LEFT, WORD_RIGHT),
}


def build_matrix_bag(
    pair: AlignedPair,
    known_anchors: Optional[Iterable[LinkPair]] = None,
    include_words: bool = True,
    only: Optional[Set[str]] = None,
) -> MatrixBag:
    """Export the matrix bag for one aligned pair.

    Parameters
    ----------
    pair:
        The aligned networks.
    known_anchors:
        Anchor links visible to the model (training plus queried).
        ``None`` means *no* anchors are known, which zeroes every
        anchor-dependent path; pass ``pair.anchors`` only for oracle
        experiments.
    include_words:
        Whether to export the word incidence matrices (needed when the
        extended word meta path P7 is in use).
    only:
        Restrict the export to these matrix names (an attribute pair is
        exported when either side is requested — the shared vocabulary
        makes the two sides one unit).  The incremental session passes
        the fingerprint-stale names here so an evolution event re-exports
        only what actually changed.
    """
    anchors = list(known_anchors) if known_anchors is not None else []

    def wanted(name: str) -> bool:
        return only is None or name in only

    bag: MatrixBag = {}
    if wanted(FOLLOW_LEFT):
        bag[FOLLOW_LEFT] = pair.left.typed_adjacency(FOLLOW)
    if wanted(FOLLOW_RIGHT):
        bag[FOLLOW_RIGHT] = pair.right.typed_adjacency(FOLLOW)
    if wanted(WRITE_LEFT):
        bag[WRITE_LEFT] = pair.left.typed_adjacency(WRITE)
    if wanted(WRITE_RIGHT):
        bag[WRITE_RIGHT] = pair.right.typed_adjacency(WRITE)
    if wanted(ANCHOR_MATRIX):
        bag[ANCHOR_MATRIX] = pair.anchor_matrix(anchors)
    attributes = [TIMESTAMP, LOCATION] + ([WORD] if include_words else [])
    for attribute in attributes:
        left_name, right_name = _ATTRIBUTE_NAMES[attribute]
        if wanted(left_name) or wanted(right_name):
            left_matrix, right_matrix = pair.attribute_matrices(attribute)
            bag[left_name] = left_matrix
            bag[right_name] = right_matrix
    return bag


def bag_fingerprints(
    pair: AlignedPair, include_words: bool = True
) -> Dict[str, Tuple[int, ...]]:
    """Cheap change-detection fingerprints, one per bag matrix.

    Each fingerprint is a tuple of strictly monotone **mutation
    epochs** (per node type, relation and attribute — see
    :meth:`~repro.networks.heterogeneous.HeterogeneousNetwork.node_epoch`
    and friends) plus slot counts and per-side vocabulary sizes.
    Unlike raw counts, epochs move under removal too (a remove+add pair
    keeps every count equal while changing the matrix), so equal
    fingerprints still prove the exported matrix cannot have changed.
    Unequal fingerprints merely mean "re-export and diff" (attaching a
    duplicate attribute value bumps an epoch but yields a zero diff —
    conservative, never wrong).  Vocabulary sizes stay in the attribute
    fingerprints because shared-vocabulary *reordering* shows up as a
    left-side vocabulary growth.
    """
    left, right = pair.left, pair.right
    n_left = left.slot_count(USER)
    n_right = right.slot_count(USER)
    posts_left = left.slot_count(POST)
    posts_right = right.slot_count(POST)
    users_left = left.node_epoch(USER)
    users_right = right.node_epoch(USER)
    posts_epoch_left = left.node_epoch(POST)
    posts_epoch_right = right.node_epoch(POST)
    prints: Dict[str, Tuple[int, ...]] = {
        FOLLOW_LEFT: (n_left, users_left, left.edge_epoch(FOLLOW)),
        FOLLOW_RIGHT: (n_right, users_right, right.edge_epoch(FOLLOW)),
        WRITE_LEFT: (
            n_left,
            posts_left,
            users_left,
            posts_epoch_left,
            left.edge_epoch(WRITE),
        ),
        WRITE_RIGHT: (
            n_right,
            posts_right,
            users_right,
            posts_epoch_right,
            right.edge_epoch(WRITE),
        ),
        ANCHOR_MATRIX: (n_left, n_right),
    }
    attributes = [TIMESTAMP, LOCATION] + ([WORD] if include_words else [])
    for attribute in attributes:
        left_name, right_name = _ATTRIBUTE_NAMES[attribute]
        vocabulary_sizes = (
            left.attribute_vocabulary_size(attribute),
            right.attribute_vocabulary_size(attribute),
        )
        prints[left_name] = (
            posts_left,
            posts_epoch_left,
            *vocabulary_sizes,
            left.attribute_epoch(attribute),
        )
        prints[right_name] = (
            posts_right,
            posts_epoch_right,
            *vocabulary_sizes,
            right.attribute_epoch(attribute),
        )
    return prints
