"""Brute-force meta structure instance counting (test oracle).

This module counts meta path / diagram instances by direct traversal of
the network objects — an implementation deliberately independent of the
sparse matrix algebra in :mod:`repro.meta.algebra` so the test suite can
cross-validate the two on small networks.  It is exponentially slower
and must not be used on real workloads.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.exceptions import MetaStructureError
from repro.networks.aligned import AlignedPair
from repro.networks.schema import FOLLOW, WRITE
from repro.types import LinkPair, NodeId

#: Direction of the follow segment relative to the outer user:
#: ``"out"`` = outer user follows the anchored user (followee segment);
#: ``"in"``  = the anchored user follows the outer user (follower segment).
Direction = str

#: Direction profile of the four follow paths: (left side, right side).
FOLLOW_PATH_DIRECTIONS: Dict[str, Tuple[Direction, Direction]] = {
    "P1": ("out", "out"),
    "P2": ("in", "in"),
    "P3": ("out", "in"),
    "P4": ("in", "out"),
}

#: Attribute type used by each attribute path.
ATTRIBUTE_PATH_TYPES: Dict[str, str] = {
    "P5": "timestamp",
    "P6": "location",
    "P7": "word",
}


def _neighbors(pair: AlignedPair, side: str, user: NodeId, direction: Direction):
    """Follow-neighbors of ``user`` in the requested direction."""
    network = pair.left if side == "left" else pair.right
    if direction == "out":
        return network.successors(FOLLOW, user)
    if direction == "in":
        return network.predecessors(FOLLOW, user)
    raise MetaStructureError(f"unknown direction {direction!r}")


def count_follow_structure(
    pair: AlignedPair,
    anchors: Iterable[LinkPair],
    u1: NodeId,
    u2: NodeId,
    left_directions: Sequence[Direction],
    right_directions: Sequence[Direction],
) -> int:
    """Count instances of a (possibly stacked) follow structure.

    An instance is an anchored pair ``(x1, x2)`` such that ``x1`` relates
    to ``u1`` in *every* direction in ``left_directions`` and ``x2``
    relates to ``u2`` in every direction in ``right_directions``.  With a
    single direction per side this counts a meta path P1-P4; with two it
    counts a Ψ_f² stacking.
    """
    left_sets = [
        _neighbors(pair, "left", u1, direction) for direction in left_directions
    ]
    right_sets = [
        _neighbors(pair, "right", u2, direction) for direction in right_directions
    ]
    left_ok: Set[NodeId] = set.intersection(*left_sets) if left_sets else set()
    right_ok: Set[NodeId] = set.intersection(*right_sets) if right_sets else set()
    count = 0
    for x1, x2 in anchors:
        if x1 in left_ok and x2 in right_ok:
            count += 1
    return count


def count_follow_path(
    pair: AlignedPair,
    anchors: Iterable[LinkPair],
    name: str,
    u1: NodeId,
    u2: NodeId,
) -> int:
    """Count instances of one of P1-P4 between ``u1`` and ``u2``."""
    try:
        left_dir, right_dir = FOLLOW_PATH_DIRECTIONS[name]
    except KeyError:
        raise MetaStructureError(f"unknown follow path {name!r}") from None
    return count_follow_structure(pair, anchors, u1, u2, [left_dir], [right_dir])


def _shared_value_count(
    pair: AlignedPair, attribute: str, post1: NodeId, post2: NodeId
) -> int:
    """Number of distinct ``attribute`` values shared by a post pair."""
    left_values = set(pair.left.node_attributes(attribute, post1))
    right_values = set(pair.right.node_attributes(attribute, post2))
    return len(left_values & right_values)


def count_attribute_structure(
    pair: AlignedPair,
    u1: NodeId,
    u2: NodeId,
    attributes: Sequence[str],
) -> int:
    """Count instances of a (possibly stacked) attribute structure.

    For each post pair ``(p1, p2)`` written by ``u1`` and ``u2``, an
    instance chooses one shared value per attribute in ``attributes``;
    the instance count is therefore the sum over post pairs of the
    product of shared-value counts.  A single attribute counts P5/P6;
    several count a Ψ_a² stacking.
    """
    posts1 = pair.left.successors(WRITE, u1)
    posts2 = pair.right.successors(WRITE, u2)
    total = 0
    for post1 in posts1:
        for post2 in posts2:
            product = 1
            for attribute in attributes:
                product *= _shared_value_count(pair, attribute, post1, post2)
                if product == 0:
                    break
            total += product
    return total


def count_attribute_path(
    pair: AlignedPair, name: str, u1: NodeId, u2: NodeId
) -> int:
    """Count instances of P5/P6/P7 between ``u1`` and ``u2``."""
    try:
        attribute = ATTRIBUTE_PATH_TYPES[name]
    except KeyError:
        raise MetaStructureError(f"unknown attribute path {name!r}") from None
    return count_attribute_structure(pair, u1, u2, [attribute])


def count_endpoint_stack(branch_counts: Sequence[int]) -> int:
    """Count of an endpoint-stacked diagram from its branch counts.

    Branches share only the two user endpoints, so instances combine
    freely: the count is the product.
    """
    product = 1
    for count in branch_counts:
        product *= count
    return product


def all_user_pairs(pair: AlignedPair) -> List[LinkPair]:
    """Every candidate user pair in H (test helper; quadratic)."""
    return [
        (left_user, right_user)
        for left_user in pair.left_users()
        for right_user in pair.right_users()
    ]
