"""Meta diagram proximity (Definition 6).

Given the instance-count matrix ``M`` of a meta structure, the proximity
between ``u_i`` (left) and ``u_j`` (right) is the Dice-style ratio

    s(i, j) = 2 * M[i, j] / (rowsum(M)[i] + colsum(M)[j]),

which rewards many connecting instances while penalizing promiscuous
users with many instances to *anyone*.  Scores live in ``[0, 1]`` and are
``0`` when the denominator vanishes (neither user touches the structure).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.exceptions import FeatureError


class ProximityMatrix:
    """Lazy proximity lookup over one count matrix.

    Parameters
    ----------
    counts:
        |U1| x |U2| sparse instance-count matrix of one meta structure.

    Notes
    -----
    Row/column sums are precomputed; individual scores are evaluated on
    demand so extracting features for a candidate subset of H never
    densifies the full matrix.
    """

    def __init__(self, counts: sparse.csr_matrix) -> None:
        if counts.ndim != 2:
            raise FeatureError("count matrix must be two-dimensional")
        self._counts = counts.tocsr()
        self._row_sums = np.asarray(counts.sum(axis=1)).ravel()
        self._col_sums = np.asarray(counts.sum(axis=0)).ravel()

    @property
    def shape(self):
        """Shape of the underlying count matrix."""
        return self._counts.shape

    def score(self, i: int, j: int) -> float:
        """Proximity of left user ``i`` and right user ``j``."""
        denominator = self._row_sums[i] + self._col_sums[j]
        if denominator == 0:
            return 0.0
        return float(2.0 * self._counts[i, j] / denominator)

    def scores(self, left_indices: np.ndarray, right_indices: np.ndarray) -> np.ndarray:
        """Vectorized proximity for parallel index arrays.

        Parameters
        ----------
        left_indices, right_indices:
            Equal-length integer arrays selecting (i, j) pairs.
        """
        left_indices = np.asarray(left_indices, dtype=np.int64)
        right_indices = np.asarray(right_indices, dtype=np.int64)
        if left_indices.shape != right_indices.shape:
            raise FeatureError("index arrays must have equal shape")
        if left_indices.size == 0:
            return np.zeros(0, dtype=np.float64)
        counts = np.asarray(
            self._counts[left_indices, right_indices]
        ).ravel()
        denominators = self._row_sums[left_indices] + self._col_sums[right_indices]
        scores = np.zeros_like(denominators, dtype=np.float64)
        nonzero = denominators > 0
        scores[nonzero] = 2.0 * counts[nonzero] / denominators[nonzero]
        return scores

    def dense(self) -> np.ndarray:
        """Full dense proximity matrix (small networks / diagnostics only)."""
        counts = np.asarray(self._counts.todense(), dtype=np.float64)
        denominators = self._row_sums[:, None] + self._col_sums[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            scores = np.where(denominators > 0, 2.0 * counts / denominators, 0.0)
        return scores


def dice_proximity(counts: sparse.csr_matrix) -> ProximityMatrix:
    """Build a :class:`ProximityMatrix` from raw instance counts."""
    return ProximityMatrix(counts)
