"""Meta diagram proximity (Definition 6).

Given the instance-count matrix ``M`` of a meta structure, the proximity
between ``u_i`` (left) and ``u_j`` (right) is the Dice-style ratio

    s(i, j) = 2 * M[i, j] / (rowsum(M)[i] + colsum(M)[j]),

which rewards many connecting instances while penalizing promiscuous
users with many instances to *anyone*.  Scores live in ``[0, 1]`` and are
``0`` when the denominator vanishes (neither user touches the structure).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse

from repro.exceptions import FeatureError


class ProximityMatrix:
    """Lazy proximity lookup over one count matrix.

    Parameters
    ----------
    counts:
        |U1| x |U2| sparse instance-count matrix of one meta structure.

    Notes
    -----
    Row/column sums are precomputed; individual scores are evaluated on
    demand so extracting features for a candidate subset of H never
    densifies the full matrix.
    """

    def __init__(self, counts: sparse.csr_matrix) -> None:
        if counts.ndim != 2:
            raise FeatureError("count matrix must be two-dimensional")
        self._counts = counts.tocsr()
        self._counts.sort_indices()
        self._row_sums = np.asarray(counts.sum(axis=1)).ravel()
        self._col_sums = np.asarray(counts.sum(axis=0)).ravel()
        # Row-major linearized keys of the stored entries.  Scipy's CSR
        # fancy indexing walks entries one by one in Python; a single
        # searchsorted over these (sorted) keys serves batch lookups —
        # the hot path of feature extraction — in vectorized time.
        n_cols = self._counts.shape[1]
        row_lengths = np.diff(self._counts.indptr)
        self._entry_keys = (
            np.repeat(
                np.arange(self._counts.shape[0], dtype=np.int64), row_lengths
            )
            * n_cols
            + self._counts.indices
        )

    def _values_at(
        self, left_indices: np.ndarray, right_indices: np.ndarray
    ) -> np.ndarray:
        """Stored count values at (i, j) positions, zeros where absent."""
        return csr_values_at(
            self._counts,
            left_indices,
            right_indices,
            entry_keys=self._entry_keys,
        )

    @property
    def shape(self):
        """Shape of the underlying count matrix."""
        return self._counts.shape

    def score(self, i: int, j: int) -> float:
        """Proximity of left user ``i`` and right user ``j``."""
        denominator = self._row_sums[i] + self._col_sums[j]
        if denominator == 0:
            return 0.0
        return float(2.0 * self._counts[i, j] / denominator)

    def scores(self, left_indices: np.ndarray, right_indices: np.ndarray) -> np.ndarray:
        """Vectorized proximity for parallel index arrays.

        Parameters
        ----------
        left_indices, right_indices:
            Equal-length integer arrays selecting (i, j) pairs.
        """
        left_indices = np.asarray(left_indices, dtype=np.int64)
        right_indices = np.asarray(right_indices, dtype=np.int64)
        if left_indices.shape != right_indices.shape:
            raise FeatureError("index arrays must have equal shape")
        if left_indices.size == 0:
            return np.zeros(0, dtype=np.float64)
        counts = self._values_at(left_indices, right_indices)
        denominators = self._row_sums[left_indices] + self._col_sums[right_indices]
        return dice_scores(counts, denominators)

    def dense(self) -> np.ndarray:
        """Full dense proximity matrix (small networks / diagnostics only)."""
        counts = np.asarray(self._counts.todense(), dtype=np.float64)
        denominators = self._row_sums[:, None] + self._col_sums[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            scores = np.where(denominators > 0, 2.0 * counts / denominators, 0.0)
        return scores


def dice_proximity(counts: sparse.csr_matrix) -> ProximityMatrix:
    """Build a :class:`ProximityMatrix` from raw instance counts."""
    return ProximityMatrix(counts)


def dice_scores(
    values: np.ndarray, denominators: np.ndarray
) -> np.ndarray:
    """The Dice ratio ``2 v / d`` with the zero-denominator guard.

    Single home of the proximity formula (Definition 6); every scoring
    path — :meth:`ProximityMatrix.scores` and the incremental session's
    view scoring — must go through it so they stay bit-identical.
    """
    scores = np.zeros_like(denominators, dtype=np.float64)
    nonzero = denominators > 0
    scores[nonzero] = 2.0 * values[nonzero] / denominators[nonzero]
    return scores


def csr_values_at(
    matrix: sparse.csr_matrix,
    rows: np.ndarray,
    cols: np.ndarray,
    query_keys: Optional[np.ndarray] = None,
    entry_keys: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Batch-read ``matrix[rows[k], cols[k]]`` values, zeros where absent.

    ``query_keys`` may carry precomputed ``rows * n_cols + cols`` keys
    (the incremental engine caches them per candidate view), and
    ``entry_keys`` the matrix's precomputed sorted linearized keys
    (:class:`ProximityMatrix` caches them); both are built on the fly
    when absent.
    """
    matrix = matrix.tocsr()
    n_cols = matrix.shape[1]
    if entry_keys is None:
        matrix.sort_indices()
        row_lengths = np.diff(matrix.indptr)
        entry_keys = (
            np.repeat(np.arange(matrix.shape[0], dtype=np.int64), row_lengths)
            * n_cols
            + matrix.indices
        )
    if query_keys is None:
        query_keys = np.asarray(rows, dtype=np.int64) * n_cols + np.asarray(
            cols, dtype=np.int64
        )
    positions = np.searchsorted(entry_keys, query_keys)
    values = np.zeros(query_keys.size, dtype=np.float64)
    inside = positions < entry_keys.size
    hits = inside.copy()
    hits[inside] = entry_keys[positions[inside]] == query_keys[inside]
    values[hits] = matrix.data[positions[hits]]
    return values
