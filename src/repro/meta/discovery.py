"""Automatic inter-network meta path discovery from the schema graph.

The paper hand-picks six inter-network meta paths (Table I).  This
module enumerates *all* inter-network meta paths up to a length bound
directly from the aligned schema (Definition 4: paths from U(1) to
U(2) over network relations, the anchor relation and shared attribute
types), so the feature family can be grown systematically instead of
manually.

Enumeration rules (matching Definition 4's constraints):

* walks start at U(1) and end at U(2);
* the anchor edge is traversed at most once;
* a walk lives in network 1 until it crosses (via the anchor or via a
  shared attribute value node) and in network 2 afterwards — paths
  that bounce back are not *inter-network* paths;
* immediate reversal of the same typed edge (e.g. U -write-> P
  -write^T-> U inside one network) is forbidden: at the type level it
  is degenerate, while the legitimate attribute crossing
  P(1) -at-> T -at^T-> P(2) survives because the two steps use
  different matrices (T1 vs T2).

Discovered paths carry ready-to-evaluate count expressions and can be
converted to :class:`~repro.meta.paths.MetaPath` objects (and hence
stacked into diagrams) when they have the canonical shapes; the test
suite verifies the standard P1-P6 are rediscovered exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import MetaStructureError
from repro.meta.algebra import Chain, Expr, Leaf
from repro.meta.context import (
    ANCHOR_MATRIX,
    FOLLOW_LEFT,
    FOLLOW_RIGHT,
    LOCATION_LEFT,
    LOCATION_RIGHT,
    TIMESTAMP_LEFT,
    TIMESTAMP_RIGHT,
    WORD_LEFT,
    WORD_RIGHT,
    WRITE_LEFT,
    WRITE_RIGHT,
)
from repro.meta.paths import (
    ATTRIBUTE_CATEGORY,
    FOLLOW_CATEGORY,
    MetaPath,
)

#: Tagged schema node keys: ``("1", "user")``, ``("2", "post")``,
#: ``("shared", "timestamp")`` ...
SchemaNode = Tuple[str, str]

SOURCE: SchemaNode = ("1", "user")
SINK: SchemaNode = ("2", "user")


@dataclass(frozen=True)
class SchemaEdge:
    """One typed edge of the aligned schema graph.

    ``matrix`` is the canonical matrix-bag name whose rows are indexed
    by ``source`` and columns by ``target``; a walk may traverse the
    edge forward (use the matrix) or backward (use its transpose).
    """

    matrix: str
    source: SchemaNode
    target: SchemaNode


def schema_edges(include_words: bool = False) -> List[SchemaEdge]:
    """The aligned social schema of Figure 2 as a tagged edge list."""
    edges = [
        SchemaEdge(FOLLOW_LEFT, ("1", "user"), ("1", "user")),
        SchemaEdge(FOLLOW_RIGHT, ("2", "user"), ("2", "user")),
        SchemaEdge(WRITE_LEFT, ("1", "user"), ("1", "post")),
        SchemaEdge(WRITE_RIGHT, ("2", "user"), ("2", "post")),
        SchemaEdge(TIMESTAMP_LEFT, ("1", "post"), ("shared", "timestamp")),
        SchemaEdge(TIMESTAMP_RIGHT, ("2", "post"), ("shared", "timestamp")),
        SchemaEdge(LOCATION_LEFT, ("1", "post"), ("shared", "location")),
        SchemaEdge(LOCATION_RIGHT, ("2", "post"), ("shared", "location")),
        SchemaEdge(ANCHOR_MATRIX, ("1", "user"), ("2", "user")),
    ]
    if include_words:
        edges.append(SchemaEdge(WORD_LEFT, ("1", "post"), ("shared", "word")))
        edges.append(SchemaEdge(WORD_RIGHT, ("2", "post"), ("shared", "word")))
    return edges


@dataclass(frozen=True)
class DiscoveredPath:
    """One enumerated inter-network meta path.

    Attributes
    ----------
    steps:
        ``(matrix_name, forward)`` per hop.
    node_sequence:
        The tagged schema nodes visited (length = len(steps) + 1).
    expr:
        Count expression (chain of leaves).
    crossing:
        ``"anchor"`` or ``"attribute"`` — how the path switches networks.
    """

    steps: Tuple[Tuple[str, bool], ...]
    node_sequence: Tuple[SchemaNode, ...]
    expr: Expr
    crossing: str

    @property
    def length(self) -> int:
        """Number of hops."""
        return len(self.steps)

    @property
    def signature(self) -> str:
        """Human-readable arrow signature, e.g. ``F1> A> <F2``."""
        parts = []
        for matrix, forward in self.steps:
            parts.append(f"{matrix}>" if forward else f"<{matrix}")
        return " ".join(parts)

    def matches(self, path: MetaPath) -> bool:
        """Whether this discovered path computes the same counts as
        ``path`` (compared by canonical expression key)."""
        return self.expr.key() == path.expr.key()

    def to_meta_path(self, name: str, semantics: str = "") -> MetaPath:
        """Convert to a stackable :class:`MetaPath` when possible.

        Anchor-crossing paths become follow-category paths with
        pre/post-anchor segments; canonical attribute paths of shape
        ``W1 X Y^T W2^T`` become attribute-category paths.  Other
        shapes raise :class:`MetaStructureError`.
        """
        leaves = [
            Leaf(matrix, transpose=not forward) for matrix, forward in self.steps
        ]
        if self.crossing == "anchor":
            anchor_index = next(
                i for i, (matrix, _) in enumerate(self.steps)
                if matrix == ANCHOR_MATRIX
            )
            left_leaves = leaves[:anchor_index]
            right_leaves = leaves[anchor_index + 1:]
            if not left_leaves or not right_leaves:
                raise MetaStructureError(
                    f"path {self.signature!r} has an empty anchor segment"
                )
            left_segment = (
                left_leaves[0] if len(left_leaves) == 1 else Chain(left_leaves)
            )
            right_segment = (
                right_leaves[0] if len(right_leaves) == 1 else Chain(right_leaves)
            )
            return MetaPath(
                name=name,
                semantics=semantics or self.signature,
                category=FOLLOW_CATEGORY,
                expr=self.expr,
                notation=self.signature,
                left_segment=left_segment,
                right_segment=right_segment,
            )
        if (
            self.length == 4
            and self.steps[0] == (WRITE_LEFT, True)
            and self.steps[-1] == (WRITE_RIGHT, False)
        ):
            inner = Chain(leaves[1:3])
            return MetaPath(
                name=name,
                semantics=semantics or self.signature,
                category=ATTRIBUTE_CATEGORY,
                expr=self.expr,
                notation=self.signature,
                inner=inner,
            )
        raise MetaStructureError(
            f"path {self.signature!r} has no canonical MetaPath form"
        )


def discover_inter_network_paths(
    max_length: int = 4, include_words: bool = False
) -> List[DiscoveredPath]:
    """Enumerate all inter-network meta paths up to ``max_length`` hops.

    Returns paths sorted by (length, signature) for determinism.
    """
    if max_length < 1:
        raise MetaStructureError("max_length must be >= 1")
    edges = schema_edges(include_words=include_words)
    by_source: Dict[SchemaNode, List[Tuple[SchemaEdge, bool]]] = {}
    for edge in edges:
        by_source.setdefault(edge.source, []).append((edge, True))
        by_source.setdefault(edge.target, []).append((edge, False))

    results: List[DiscoveredPath] = []

    def _network_of(node: SchemaNode) -> str:
        return node[0]

    def _walk(
        node: SchemaNode,
        steps: List[Tuple[str, bool]],
        nodes: List[SchemaNode],
        used_anchor: bool,
        crossed: bool,
        last_step: Optional[Tuple[str, bool]],
    ) -> None:
        if node == SINK and len(steps) >= 2:
            # Record the path, then keep extending: longer paths pass
            # *through* the U(2) node type (e.g. P1 ends one follow hop
            # beyond the anchored user).  Length-1 (the bare anchor
            # edge) is excluded: "is a known anchor" is not a feature.
            crossing = "anchor" if used_anchor else "attribute"
            leaves = [
                Leaf(matrix, transpose=not forward) for matrix, forward in steps
            ]
            expr: Expr = leaves[0] if len(leaves) == 1 else Chain(leaves)
            results.append(
                DiscoveredPath(
                    steps=tuple(steps),
                    node_sequence=tuple(nodes),
                    expr=expr,
                    crossing=crossing,
                )
            )
        if len(steps) >= max_length:
            return
        for edge, forward in by_source.get(node, ()):
            next_node = edge.target if forward else edge.source
            if edge.matrix == ANCHOR_MATRIX:
                if used_anchor or not forward:
                    continue
            # No immediate reversal of the same matrix (degenerate).
            if last_step is not None and last_step == (edge.matrix, not forward):
                continue
            # Once in network 2, never return to network 1 or shared.
            network_now = _network_of(node)
            network_next = _network_of(next_node)
            if network_now == "2" and network_next != "2":
                continue
            # Never start in network 2 territory before crossing.
            new_crossed = crossed or network_next == "2"
            _walk(
                next_node,
                steps + [(edge.matrix, forward)],
                nodes + [next_node],
                used_anchor or edge.matrix == ANCHOR_MATRIX,
                new_crossed,
                (edge.matrix, forward),
            )

    _walk(SOURCE, [], [SOURCE], used_anchor=False, crossed=False, last_step=None)
    results.sort(key=lambda path: (path.length, path.signature))
    return results


def discovered_family(
    max_length: int = 4, include_words: bool = False
):
    """Build a full stacked diagram family from auto-discovered paths.

    Every discovered path with a canonical :class:`MetaPath` form (all
    anchor-crossing paths with non-empty segments, plus the canonical
    attribute paths) enters the family; the stacked diagrams are then
    generated exactly as for the hand-defined family.  With
    ``max_length=4`` this is a strict superset of the paper's Φ.

    Returns
    -------
    repro.meta.diagrams.DiagramFamily
    """
    from repro.meta.diagrams import build_diagram_family

    converted = []
    standard = discover_standard_paths(include_words=include_words)
    standard_by_key = {
        discovered.expr.key(): name for name, discovered in standard.items()
    }
    auto_index = 0
    for discovered in discover_inter_network_paths(
        max_length=max_length, include_words=include_words
    ):
        key = discovered.expr.key()
        if key in standard_by_key:
            name = standard_by_key[key]
        else:
            auto_index += 1
            name = f"Q{auto_index}"
        try:
            converted.append(discovered.to_meta_path(name))
        except MetaStructureError:
            continue  # no canonical stackable form; skip
    return build_diagram_family(converted)


def discover_standard_paths(include_words: bool = False) -> Dict[str, DiscoveredPath]:
    """Map the paper's path names to their discovered equivalents.

    Runs discovery at the bound covering Table I (4 hops) and matches
    each discovered path against the hand-defined P1-P6 (P7 with
    words) by canonical expression key.
    """
    from repro.meta.paths import standard_paths

    discovered = discover_inter_network_paths(
        max_length=4, include_words=include_words
    )
    mapping: Dict[str, DiscoveredPath] = {}
    for standard in standard_paths(include_words=include_words):
        for candidate in discovered:
            if candidate.matches(standard):
                mapping[standard.name] = candidate
                break
    return mapping
