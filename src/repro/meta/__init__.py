"""Inter-network meta paths, meta diagrams, proximities and features.

Implements Definitions 4-7 and Lemmas 1-2 of the paper: the six standard
inter-network meta paths, the stacked meta diagram family Φ, a memoizing
sparse count algebra, Dice-style meta diagram proximity and per-link
feature extraction.
"""

from repro.meta.algebra import (
    Chain,
    CountingEngine,
    Expr,
    Leaf,
    Parallel,
    dirty_expressions,
    expr_shape,
    pad_csr,
)
from repro.meta.context import (
    ANCHOR_MATRIX,
    bag_fingerprints,
    build_matrix_bag,
)
from repro.meta.diagrams import (
    DiagramFamily,
    MetaDiagram,
    stack_at_endpoints,
    stack_attribute_paths,
    stack_follow_pair,
    standard_diagram_family,
)
from repro.meta.discovery import (
    DiscoveredPath,
    discover_inter_network_paths,
    discover_standard_paths,
    schema_edges,
)
from repro.meta.features import FeatureExtractor, extract_features
from repro.meta.paths import (
    ATTRIBUTE_CATEGORY,
    FOLLOW_CATEGORY,
    MetaPath,
    attribute_paths,
    follow_paths,
    path_categories,
    paths_by_name,
    standard_paths,
)
from repro.meta.proximity import ProximityMatrix, dice_proximity

__all__ = [
    "ANCHOR_MATRIX",
    "ATTRIBUTE_CATEGORY",
    "Chain",
    "CountingEngine",
    "DiagramFamily",
    "DiscoveredPath",
    "Expr",
    "FOLLOW_CATEGORY",
    "FeatureExtractor",
    "Leaf",
    "MetaDiagram",
    "MetaPath",
    "Parallel",
    "ProximityMatrix",
    "attribute_paths",
    "bag_fingerprints",
    "build_matrix_bag",
    "dice_proximity",
    "dirty_expressions",
    "discover_inter_network_paths",
    "discover_standard_paths",
    "expr_shape",
    "extract_features",
    "follow_paths",
    "pad_csr",
    "path_categories",
    "paths_by_name",
    "schema_edges",
    "stack_at_endpoints",
    "stack_attribute_paths",
    "stack_follow_pair",
    "standard_diagram_family",
    "standard_paths",
]
