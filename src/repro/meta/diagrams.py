"""Inter-network meta diagrams (Definition 5, Table I bottom).

A meta diagram stacks meta paths at their shared node types.  Two cases
arise with the paper's path set:

* **follow x follow** — P_i and P_j (i, j in {1..4}) share *all* four
  node types (source user, the anchored user pair, sink user), so the
  stacked count Hadamard-multiplies the per-side follow segments around
  the shared anchor:  ``(M1_i ∘ M1_j) @ A @ (M2_i ∘ M2_j)``.
  Example: Ψ1 = P1 x P2 = mutual-follow neighbors on both sides
  ("Common Aligned Neighbors").
* **attribute x attribute** — P5 and P6 share the source user, the two
  post nodes and the sink user, so stacking Hadamard-multiplies the
  post-to-post inner products: ``W1 @ ((T1 T2ᵀ) ∘ (L1 L2ᵀ)) @ W2ᵀ``
  — a post pair at the *same place and same time* (Ψ2, "Common
  Attributes"; this is exactly the paper's fix for "dislocated"
  check-in records).
* **follow x attribute** — the paths share only source and sink users,
  so the stacked count is the elementwise product of the two count
  matrices (a diagram instance = one instance of each branch hanging off
  the same user pair).

The full family Φ used for features (Section III-B.2):
Φ = P  ∪  Ψ_f²  ∪  Ψ_a²  ∪  Ψ_f,a  ∪  Ψ_f,a²  ∪  Ψ_f²,a².

Every diagram records its **covering set** C(Ψ) — the meta paths it
decomposes into (Definition 7).  The sound direction of Lemma 1 (an
instance of Ψ projects to an instance of every covering path) makes the
covering set a valid search-space pruner and gives the subset property
tested in the suite:  support(Ψ) ⊆ ⋂_{P ∈ C(Ψ)} support(P), and
C(Ψi) ⊆ C(Ψj) ⇒ support(Ψj) ⊆ support(Ψi)  (Lemma 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, List, Sequence, Tuple

from repro.exceptions import MetaStructureError
from repro.meta.algebra import Chain, Expr, Leaf, Parallel
from repro.meta.context import ANCHOR_MATRIX, WRITE_LEFT, WRITE_RIGHT
from repro.meta.paths import (
    ATTRIBUTE_CATEGORY,
    FOLLOW_CATEGORY,
    MetaPath,
    path_categories,
    standard_paths,
)


@dataclass(frozen=True)
class MetaDiagram:
    """One inter-network meta diagram.

    Attributes
    ----------
    name:
        Identifier derived from the stacked paths, e.g. ``"P1xP2"``.
    semantics:
        Human-readable meaning.
    family:
        Which family of Φ this diagram belongs to (``"f2"``, ``"a2"``,
        ``"f.a"``, ``"f.a2"``, ``"f2.a2"``).
    expr:
        Count expression evaluating to the |U1| x |U2| instance counts.
    covering:
        Names of the meta paths in the minimum covering set C(Ψ).
    """

    name: str
    semantics: str
    family: str
    expr: Expr
    covering: FrozenSet[str]

    def covers(self, other: "MetaDiagram") -> bool:
        """Whether ``other``'s covering set is a subset of this one's.

        By Lemma 2, if ``self.covers(other)`` then every user pair
        connected by ``self`` is also connected by ``other``.
        """
        return other.covering <= self.covering


def _require_follow(path: MetaPath) -> None:
    if path.category != FOLLOW_CATEGORY:
        raise MetaStructureError(f"{path.name} is not a follow path")


def _require_attribute(path: MetaPath) -> None:
    if path.category != ATTRIBUTE_CATEGORY:
        raise MetaStructureError(f"{path.name} is not an attribute path")


def stack_follow_pair(path_a: MetaPath, path_b: MetaPath) -> MetaDiagram:
    """Stack two follow paths at all shared node types (Ψ_f² member)."""
    _require_follow(path_a)
    _require_follow(path_b)
    if path_a.name == path_b.name:
        raise MetaStructureError("stacking a path with itself is the path")
    expr = Chain(
        [
            Parallel([path_a.left_segment, path_b.left_segment]),
            Leaf(ANCHOR_MATRIX),
            Parallel([path_a.right_segment, path_b.right_segment]),
        ]
    )
    return MetaDiagram(
        name=f"{path_a.name}x{path_b.name}",
        semantics=(
            f"Common Aligned Neighbors ({path_a.semantics} + {path_b.semantics})"
        ),
        family="f2",
        expr=expr,
        covering=frozenset({path_a.name, path_b.name}),
    )


def stack_attribute_paths(paths: Sequence[MetaPath]) -> MetaDiagram:
    """Stack attribute paths at the shared post junctions (Ψ_a² member).

    With P5 and P6 this yields Ψ2 "Common Attributes": the same post pair
    shares both the timestamp and the location.
    """
    if len(paths) < 2:
        raise MetaStructureError("need at least two attribute paths to stack")
    for path in paths:
        _require_attribute(path)
    names = [path.name for path in paths]
    if len(set(names)) != len(names):
        raise MetaStructureError("attribute paths to stack must be distinct")
    expr = Chain(
        [
            Leaf(WRITE_LEFT),
            Parallel([path.inner for path in paths]),
            Leaf(WRITE_RIGHT, transpose=True),
        ]
    )
    return MetaDiagram(
        name="x".join(names),
        semantics="Common Attributes (same post pair shares "
        + " and ".join(path.semantics.replace("Common ", "").lower() for path in paths)
        + ")",
        family="a2",
        expr=expr,
        covering=frozenset(names),
    )


def stack_at_endpoints(
    branches: Sequence[Tuple[str, Expr, FrozenSet[str]]],
    semantics: str,
    family: str,
) -> MetaDiagram:
    """Stack count expressions that share only the user endpoints.

    Each branch is ``(name, U1xU2 expression, covering names)``; the
    stacked diagram's count is the Hadamard product of branch counts.
    """
    if len(branches) < 2:
        raise MetaStructureError("endpoint stacking needs >= 2 branches")
    expr = Parallel([branch_expr for _, branch_expr, _ in branches])
    covering: FrozenSet[str] = frozenset()
    for _, _, branch_covering in branches:
        covering |= branch_covering
    return MetaDiagram(
        name="x".join(name for name, _, _ in branches),
        semantics=semantics,
        family=family,
        expr=expr,
        covering=covering,
    )


@dataclass(frozen=True)
class DiagramFamily:
    """The full feature family Φ: standard paths plus all diagrams."""

    paths: Tuple[MetaPath, ...]
    diagrams: Tuple[MetaDiagram, ...]

    @property
    def feature_names(self) -> List[str]:
        """Ordered names of every feature Φ_k (paths first, then diagrams)."""
        return [path.name for path in self.paths] + [
            diagram.name for diagram in self.diagrams
        ]

    @property
    def exprs(self) -> List[Expr]:
        """Ordered count expressions aligned with :attr:`feature_names`."""
        return [path.expr for path in self.paths] + [
            diagram.expr for diagram in self.diagrams
        ]

    def subset(self, names: Sequence[str]) -> "DiagramFamily":
        """Restrict the family to the given feature names (order kept)."""
        wanted = set(names)
        unknown = wanted - set(self.feature_names)
        if unknown:
            raise MetaStructureError(f"unknown feature names: {sorted(unknown)}")
        return DiagramFamily(
            paths=tuple(path for path in self.paths if path.name in wanted),
            diagrams=tuple(
                diagram for diagram in self.diagrams if diagram.name in wanted
            ),
        )

    def paths_only(self) -> "DiagramFamily":
        """The meta-path-only family (features of the SVM-MP baseline)."""
        return DiagramFamily(paths=self.paths, diagrams=())


def standard_diagram_family(include_words: bool = False) -> DiagramFamily:
    """Build Φ = P ∪ Ψ_f² ∪ Ψ_a² ∪ Ψ_f,a ∪ Ψ_f,a² ∪ Ψ_f²,a².

    With the paper's six paths this yields 6 paths + 25 diagrams = 31
    features; ``include_words`` adds P7 and enlarges the attribute
    stackings accordingly.
    """
    return build_diagram_family(standard_paths(include_words=include_words))


def build_diagram_family(paths: Sequence[MetaPath]) -> DiagramFamily:
    """Build the full stacked family over an arbitrary path set.

    Generalizes :func:`standard_diagram_family` to any mix of follow-
    and attribute-category paths (e.g. paths produced by the automatic
    schema discovery of :mod:`repro.meta.discovery`): all pairwise
    follow stackings, the attribute stackings, and every endpoint
    product between them.
    """
    names = [path.name for path in paths]
    if len(set(names)) != len(names):
        raise MetaStructureError(f"duplicate path names: {sorted(names)}")
    paths = list(paths)
    follow, attribute = path_categories(paths)

    diagrams: List[MetaDiagram] = []

    # Ψ_f²: unordered pairs of distinct follow paths.
    follow_pairs = list(combinations(follow, 2))
    for path_a, path_b in follow_pairs:
        diagrams.append(stack_follow_pair(path_a, path_b))

    # Ψ_a²: all attribute paths stacked at the posts (one diagram for the
    # paper's P5/P6; pairwise + full stack when there are more than two;
    # none when fewer than two attribute paths exist).
    attribute_stacks: List[MetaDiagram] = []
    if len(attribute) == 2:
        attribute_stacks.append(stack_attribute_paths(attribute))
    elif len(attribute) > 2:
        for path_a, path_b in combinations(attribute, 2):
            attribute_stacks.append(stack_attribute_paths([path_a, path_b]))
        attribute_stacks.append(stack_attribute_paths(attribute))
    diagrams.extend(attribute_stacks)

    # Ψ_f,a: follow path x attribute path, sharing only the endpoints.
    for follow_path in follow:
        for attribute_path in attribute:
            diagrams.append(
                stack_at_endpoints(
                    [
                        (
                            follow_path.name,
                            follow_path.expr,
                            frozenset({follow_path.name}),
                        ),
                        (
                            attribute_path.name,
                            attribute_path.expr,
                            frozenset({attribute_path.name}),
                        ),
                    ],
                    semantics="Common Aligned Neighbor & Attribute",
                    family="f.a",
                )
            )

    if attribute_stacks:
        # Ψ_f,a²: follow path x (all attributes stacked at the posts).
        full_attribute_stack = attribute_stacks[-1]
        for follow_path in follow:
            diagrams.append(
                stack_at_endpoints(
                    [
                        (
                            follow_path.name,
                            follow_path.expr,
                            frozenset({follow_path.name}),
                        ),
                        (
                            full_attribute_stack.name,
                            full_attribute_stack.expr,
                            full_attribute_stack.covering,
                        ),
                    ],
                    semantics="Common Aligned Neighbor & Attributes",
                    family="f.a2",
                )
            )

        # Ψ_f²,a²: follow pair x attribute stack.
        for path_a, path_b in follow_pairs:
            pair_diagram = stack_follow_pair(path_a, path_b)
            diagrams.append(
                stack_at_endpoints(
                    [
                        (
                            pair_diagram.name,
                            pair_diagram.expr,
                            pair_diagram.covering,
                        ),
                        (
                            full_attribute_stack.name,
                            full_attribute_stack.expr,
                            full_attribute_stack.covering,
                        ),
                    ],
                    semantics="Common Aligned Neighbors & Attributes",
                    family="f2.a2",
                )
            )

    return DiagramFamily(paths=tuple(paths), diagrams=tuple(diagrams))
