"""The engine's execution layer: serial, thread and process executors.

Heavy engine work decomposes into *independent* units whose results are
merged in a fixed order — the 28 anchor-dependent delta expressions of
one anchor update, the per-structure feature columns of one extraction,
the scored blocks of one candidate sweep.  Scipy's sparse kernels and
numpy's searchsorted/ufuncs release the GIL, so a plain thread pool
parallelizes them without any serialization cost.

:class:`Executor` is the small abstraction the session and the candidate
stream program against.  Three implementations exist:

* :class:`SerialExecutor` — runs everything inline (the default, and the
  reference semantics);
* :class:`ThreadedExecutor` — a ``concurrent.futures.ThreadPoolExecutor``
  wrapper that preserves **input order** in all results, so the merged
  output of a threaded run is byte-identical to the serial run;
* :class:`ProcessExecutor` — a ``ProcessPoolExecutor`` wrapper for work
  whose units cross process boundaries: the function and every item
  must be **picklable**.  The engine's picklable work units are the
  arena-backed block descriptors of :mod:`repro.store.procwork` — the
  matrices themselves are shared through the arena's memory maps, not
  copied.  A non-picklable callable (a closure over live session state)
  degrades gracefully to inline execution, so a session handed a
  process executor still works everywhere — only the curated
  descriptor paths actually fan across processes.

A fourth implementation lives in :mod:`repro.store.rpc`:
:class:`~repro.store.rpc.RPCExecutor` honors the same contract but
ships the picklable work units to long-lived *remote* workers over a
content-addressed arena transport — the scale jump from one box to a
fleet.  It is resolved here via ``make_executor("rpc", ...)`` and
advertises itself through the :attr:`Executor.crosses_processes` flag,
the seam dispatchers use to choose descriptor-based work units.

Determinism contract: both :meth:`Executor.map` and
:meth:`Executor.imap` return results in the order of their inputs, never
in completion order, and callers fold results sequentially in that
order.  Because each work unit is a pure function of its inputs, the
executor choice can change wall-clock time but never a single bit of the
output — asserted by the engine test-suite and the parallel benchmark.

Nested use is safe: when a worker thread re-enters the executor (e.g. a
threaded block sweep whose scorer calls ``session.extract``, which
itself maps over structures), the inner call runs inline instead of
deadlocking the bounded pool.

:meth:`Executor.close` is **idempotent** on every implementation, and
executors are context managers — the pipeline, the experiment runner
and the CLI always release pools through ``with``/``finally`` so an
exception mid-run never leaks worker threads or processes.
"""

from __future__ import annotations

import logging
import pickle
import threading
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, List, Optional, TypeVar, Union

from repro.exceptions import AlignmentError

logger = logging.getLogger(__name__)


def _try_dumps(obj) -> Optional[bytes]:
    """``obj``'s pickle, or ``None`` when it doesn't survive pickling.

    The probe *is* the serialization: callers that go on to ship the
    bytes (the RPC executor registers them as the fn blob) reuse this
    result instead of pickling a second time.
    """
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None


def _picklable(obj) -> bool:
    """Whether ``obj`` survives pickling (the process-pool entry fee)."""
    return _try_dumps(obj) is not None

T = TypeVar("T")
R = TypeVar("R")

#: What the ``workers`` knobs accept: an executor, a worker count, or
#: ``None`` for the serial default.
WorkersSpec = Union["Executor", int, None]


class Executor:
    """Order-preserving work executor (see module docstring).

    Attributes
    ----------
    workers:
        Parallelism degree; ``1`` means strictly inline execution.
    kind:
        Short name of the execution backend (``"serial"``, ``"thread"``,
        ``"process"`` or ``"rpc"``) — recorded in experiment runtime
        metadata.
    crosses_processes:
        Whether work units leave this interpreter (pickled to a process
        pool or shipped to remote workers).  Dispatchers use this to
        decide between closure-based work and the arena-backed block
        descriptors of :mod:`repro.store.procwork`.
    """

    workers: int = 1
    kind: str = "serial"
    crosses_processes: bool = False

    def map(
        self, fn: Callable[[T], R], items: Iterable[T]
    ) -> List[R]:
        """Apply ``fn`` to every item; results in input order."""
        raise NotImplementedError

    def imap(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        window: Optional[int] = None,
    ) -> Iterator[R]:
        """Lazily apply ``fn`` over a stream; results in input order.

        Unlike :meth:`map`, the input iterable is consumed on demand
        with at most ``window`` items in flight, so an unboundedly long
        stream (the candidate block generator) never materializes.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release worker threads/processes, if any (always idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """Inline execution — the reference path every parallel run must match."""

    workers = 1
    kind = "serial"

    def map(self, fn, items):
        return [fn(item) for item in items]

    def imap(self, fn, items, window=None):
        return (fn(item) for item in items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


class ThreadedExecutor(Executor):
    """Thread-pool execution with input-order result merging.

    Parameters
    ----------
    workers:
        Pool size; must be >= 2 (use :class:`SerialExecutor` for 1).

    Notes
    -----
    The pool is created lazily on first use and torn down by
    :meth:`close` (or garbage collection).  Calls made *from* a pool
    worker run inline — see the module docstring on nested use.
    """

    kind = "thread"

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise AlignmentError(
                f"ThreadedExecutor needs >= 2 workers, got {workers}"
            )
        self.workers = int(workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._in_worker = threading.local()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                logger.debug("starting thread pool (workers=%d)", self.workers)
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-engine",
                )
            return self._pool

    def _entered(self, fn: Callable[[T], R]) -> Callable[[T], R]:
        """Wrap ``fn`` so nested executor calls detect the worker thread."""

        def run(item: T) -> R:
            self._in_worker.flag = True
            try:
                return fn(item)
            finally:
                self._in_worker.flag = False

        return run

    @property
    def _inside_worker(self) -> bool:
        return bool(getattr(self._in_worker, "flag", False))

    def map(self, fn, items):
        if self._inside_worker:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(self._entered(fn), items))

    def imap(self, fn, items, window=None):
        if self._inside_worker:
            return (fn(item) for item in items)
        if window is None:
            window = 2 * self.workers
        if window < 1:
            raise AlignmentError(f"window must be >= 1, got {window}")
        pool = self._ensure_pool()
        run = self._entered(fn)

        def results() -> Iterator[R]:
            pending = deque()
            iterator = iter(items)
            try:
                for item in iterator:
                    pending.append(pool.submit(run, item))
                    if len(pending) >= window:
                        yield pending.popleft().result()
                while pending:
                    yield pending.popleft().result()
            finally:
                for future in pending:
                    future.cancel()

        return results()

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadedExecutor(workers={self.workers})"


class ProcessExecutor(Executor):
    """Process-pool execution for picklable work units.

    Parameters
    ----------
    workers:
        Pool size; must be >= 2 (use :class:`SerialExecutor` for 1).

    Notes
    -----
    The pool is created lazily and torn down by :meth:`close`
    (idempotent).  Work whose callable does not pickle — the session's
    internal closures — runs inline, preserving correctness at serial
    speed; the engine's cross-process fan-outs go through the
    module-level job functions of :mod:`repro.store.procwork`, whose
    items are block descriptors resolved against a shared
    :class:`~repro.store.arena.MatrixArena`.  Result order always
    follows input order, so a process run is byte-identical to a serial
    one.
    """

    kind = "process"
    crosses_processes = True

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise AlignmentError(
                f"ProcessExecutor needs >= 2 workers, got {workers}"
            )
        self.workers = int(workers)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                logger.debug(
                    "starting process pool (workers=%d)", self.workers
                )
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool

    def map(self, fn, items):
        if not _picklable(fn):
            logger.debug(
                "ProcessExecutor.map: %r does not pickle; running inline", fn
            )
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))

    def imap(self, fn, items, window=None):
        if not _picklable(fn):
            return (fn(item) for item in items)
        if window is None:
            window = 2 * self.workers
        if window < 1:
            raise AlignmentError(f"window must be >= 1, got {window}")
        pool = self._ensure_pool()

        def results() -> Iterator[R]:
            pending = deque()
            iterator = iter(items)
            try:
                for item in iterator:
                    pending.append(pool.submit(fn, item))
                    if len(pending) >= window:
                        yield pending.popleft().result()
                while pending:
                    yield pending.popleft().result()
            finally:
                for future in pending:
                    future.cancel()

        return results()

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessExecutor(workers={self.workers})"


def make_executor(
    kind: str,
    workers: int = 1,
    addresses: Optional[Iterable[str]] = None,
    rpc_pipeline: Optional[int] = None,
) -> Executor:
    """Build an executor from a named backend and a worker count.

    The CLI's ``--executor {serial,thread,process,rpc}`` knob resolves
    through here; ``workers <= 1`` always yields the serial executor
    for the pooled kinds (a pool of one is just overhead).  ``"rpc"``
    ignores ``workers`` and instead needs ``addresses`` — the
    ``host:port`` endpoints of long-lived
    ``python -m repro.cli worker`` processes (see
    :class:`repro.store.rpc.RPCExecutor`); ``rpc_pipeline`` forwards
    the ``--rpc-pipeline`` dispatch-window depth (``1`` restores the
    blocking one-frame-per-round-trip dispatch).
    """
    if kind not in ("serial", "thread", "process", "rpc"):
        raise AlignmentError(
            f"unknown executor kind {kind!r}; "
            "choose from serial, thread, process, rpc"
        )
    if kind == "rpc":
        # Imported lazily: repro.store.rpc depends on this module.
        from repro.store.rpc import RPCExecutor

        addresses = list(addresses or ())
        if not addresses:
            raise AlignmentError(
                "executor kind 'rpc' needs worker addresses "
                "(host:port, e.g. --rpc-hosts 10.0.0.2:7421,10.0.0.3:7421)"
            )
        if rpc_pipeline is not None:
            return RPCExecutor(addresses, pipeline_depth=rpc_pipeline)
        return RPCExecutor(addresses)
    if kind == "serial" or workers <= 1:
        return SerialExecutor()
    if kind == "thread":
        return ThreadedExecutor(workers)
    return ProcessExecutor(workers)


def get_executor(workers: WorkersSpec) -> Executor:
    """Resolve a ``workers`` knob into an executor.

    ``None``, ``0`` and ``1`` mean serial; an integer >= 2 builds a
    :class:`ThreadedExecutor`; an :class:`Executor` instance passes
    through unchanged (letting several sessions share one pool).
    """
    if isinstance(workers, Executor):
        return workers
    if workers is None:
        return SerialExecutor()
    count = int(workers)
    if count < 0:
        raise AlignmentError(f"workers must be >= 0, got {workers}")
    if count <= 1:
        return SerialExecutor()
    return ThreadedExecutor(count)
