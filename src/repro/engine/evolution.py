"""Scripted network-evolution schedules for the evolve scenario.

The evolving-network workload needs *deterministic* drift: the delta
path and the full-recount baseline must replay byte-identical growth,
and a checkpoint resume must regenerate the very same schedule from the
CLI arguments alone.  :func:`scripted_delta_schedule` builds such a
schedule from a seeded RNG over one aligned pair:

* each event targets one side (alternating left/right);
* new users arrive with follow edges knitting them into the existing
  graph (and each other);
* new posts arrive from existing *and* new authors, carrying
  timestamps/locations/words drawn from the side's **own** attribute
  vocabulary — drawing from known values keeps the shared vocabulary
  order stable, so attribute-matrix growth stays pure padding and the
  per-event delta stays sparse;
* extra follow edges model ongoing edge churn among existing users.

Schedules are built entirely from the *base* pair (events may reference
users added by earlier events in the same schedule, tracked without
mutating the pair), so the same schedule object can be applied to any
identically constructed copy of the pair.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import AlignmentError
from repro.networks.aligned import AlignedPair, NetworkDelta
from repro.networks.schema import (
    FOLLOW,
    LOCATION,
    POST,
    TIMESTAMP,
    USER,
    WORD,
    WRITE,
)


def scripted_delta_schedule(
    pair: AlignedPair,
    events: int = 5,
    seed: int = 0,
    users_per_event: int = 1,
    posts_per_event: int = 4,
    edges_per_event: int = 6,
    words_per_post: int = 2,
    sides: Sequence[str] = ("left", "right"),
) -> List[NetworkDelta]:
    """Build a deterministic schedule of network deltas for ``pair``.

    Parameters
    ----------
    pair:
        The base (pre-evolution) aligned pair.  Not mutated.
    events:
        Number of :class:`~repro.networks.aligned.NetworkDelta` events.
    seed:
        RNG seed; the same pair and arguments always yield the same
        schedule.
    users_per_event, posts_per_event, edges_per_event:
        Growth per event: new users (knitted in with two follow edges
        each), new posts (with attributes), and extra follow churn among
        existing users.
    words_per_post:
        Word attachments per new post (``0`` when the side has no word
        vocabulary yet).
    sides:
        Sides to alternate over, in order.
    """
    if events < 1:
        raise AlignmentError("events must be >= 1")
    for side in sides:
        if side not in ("left", "right"):
            raise AlignmentError(f"unknown side {side!r}")
    rng = np.random.default_rng(seed)
    # Simulated per-side id universes; extended by earlier events so
    # later ones can reference their users without mutating the pair.
    users = {
        "left": list(pair.left_users()),
        "right": list(pair.right_users()),
    }
    vocabularies = {
        side: {
            attribute: network.attribute_values(attribute)
            for attribute in (TIMESTAMP, LOCATION, WORD)
        }
        for side, network in (("left", pair.left), ("right", pair.right))
    }
    schedule: List[NetworkDelta] = []
    user_counter = 0
    post_counter = 0
    for event in range(events):
        side = sides[event % len(sides)]
        known = users[side]
        new_users = []
        for _ in range(users_per_event):
            new_users.append(f"evo:{side}:u{user_counter}")
            user_counter += 1
        edges: List[Tuple[str, object, object]] = []
        for new_user in new_users:
            # Knit each arrival into the graph: one edge out, one in.
            edges.append(
                (FOLLOW, new_user, known[int(rng.integers(len(known)))])
            )
            edges.append(
                (FOLLOW, known[int(rng.integers(len(known)))], new_user)
            )
        for _ in range(edges_per_event):
            source = known[int(rng.integers(len(known)))]
            target = known[int(rng.integers(len(known)))]
            if source != target:
                edges.append((FOLLOW, source, target))
        authors = known + new_users
        new_posts = []
        attributes: List[Tuple[str, object, object]] = []
        for _ in range(posts_per_event):
            post_id = f"evo:{side}:p{post_counter}"
            post_counter += 1
            new_posts.append(post_id)
            edges.append((WRITE, authors[int(rng.integers(len(authors)))], post_id))
            attributes.extend(
                _post_attributes(
                    rng, vocabularies[side], post_id, words_per_post
                )
            )
        schedule.append(
            NetworkDelta.build(
                side,
                added_nodes={USER: new_users, POST: new_posts},
                added_edges=edges,
                updated_attributes=attributes,
            )
        )
        users[side] = known + new_users
    return schedule


def scripted_churn_schedule(
    pair: AlignedPair,
    events: int = 8,
    seed: int = 0,
    users_per_event: int = 1,
    posts_per_event: int = 3,
    edges_per_event: int = 4,
    words_per_post: int = 1,
    user_removals_per_event: int = 1,
    post_removals_per_event: int = 1,
    edge_removals_per_event: int = 2,
    attribute_churn_per_event: int = 2,
    sides: Sequence[str] = ("left", "right"),
) -> List[NetworkDelta]:
    """Deterministic *churn* schedule: interleaved grow/shrink/attach.

    The adversarial counterpart of :func:`scripted_delta_schedule`:
    every event grows the targeted side (new users, posts, edges and
    attribute cells, exactly like the growth schedule) **and** shrinks
    it — removing users and posts that *this schedule* added in earlier
    events, plus explicit edge removals — while also attaching extra
    attribute values to surviving scripted posts (attribute churn).
    Only scripted (``evo:``-prefixed) nodes are ever removed, so the
    base pair's users, anchors and candidate lists stay valid
    throughout; every delta rides the session's removal fast path.

    Like the growth schedule, the events are built entirely from the
    base pair plus simulated bookkeeping, so the same schedule replays
    onto any identically constructed copy of the pair.
    """
    if events < 1:
        raise AlignmentError("events must be >= 1")
    for side in sides:
        if side not in ("left", "right"):
            raise AlignmentError(f"unknown side {side!r}")
    rng = np.random.default_rng(seed)
    base_users = {
        "left": list(pair.left_users()),
        "right": list(pair.right_users()),
    }
    evo_users = {"left": [], "right": []}
    evo_posts = {"left": [], "right": []}
    # Edges this schedule knows exist (added by earlier events and not
    # yet removed or cascaded away) — the explicit-removal pool.
    live_edges = {"left": [], "right": []}
    vocabularies = {
        side: {
            attribute: network.attribute_values(attribute)
            for attribute in (TIMESTAMP, LOCATION, WORD)
        }
        for side, network in (("left", pair.left), ("right", pair.right))
    }
    schedule: List[NetworkDelta] = []
    user_counter = 0
    post_counter = 0

    def draw(pool: List, count: int) -> List:
        """Up to ``count`` distinct deterministic picks from ``pool``."""
        picked = []
        remaining = list(pool)
        for _ in range(min(count, len(remaining))):
            picked.append(remaining.pop(int(rng.integers(len(remaining)))))
        return picked

    for event in range(events):
        side = sides[event % len(sides)]
        # --- shrink: only nodes/edges earlier events added ------------
        removed_users = draw(evo_users[side], user_removals_per_event)
        removed_posts = draw(evo_posts[side], post_removals_per_event)
        dead = set(removed_users) | set(removed_posts)
        removable_edges = [
            edge
            for edge in live_edges[side]
            if edge[1] not in dead and edge[2] not in dead
        ]
        removed_edges = draw(removable_edges, edge_removals_per_event)
        # --- grow: same shape as the growth schedule ------------------
        survivors = [
            user for user in evo_users[side] if user not in dead
        ]
        known = base_users[side] + survivors
        new_users = []
        for _ in range(users_per_event):
            new_users.append(f"evo:{side}:u{user_counter}")
            user_counter += 1
        edges: List[Tuple[str, object, object]] = []
        for new_user in new_users:
            edges.append(
                (FOLLOW, new_user, known[int(rng.integers(len(known)))])
            )
            edges.append(
                (FOLLOW, known[int(rng.integers(len(known)))], new_user)
            )
        for _ in range(edges_per_event):
            source = known[int(rng.integers(len(known)))]
            target = known[int(rng.integers(len(known)))]
            if source != target:
                edges.append((FOLLOW, source, target))
        authors = known + new_users
        new_posts = []
        attributes: List[Tuple[str, object, object]] = []
        for _ in range(posts_per_event):
            post_id = f"evo:{side}:p{post_counter}"
            post_counter += 1
            new_posts.append(post_id)
            edges.append(
                (WRITE, authors[int(rng.integers(len(authors)))], post_id)
            )
            attributes.extend(
                _post_attributes(
                    rng, vocabularies[side], post_id, words_per_post
                )
            )
        # --- attribute churn on surviving scripted posts --------------
        surviving_posts = [
            post for post in evo_posts[side] if post not in dead
        ]
        for post_id in draw(surviving_posts, attribute_churn_per_event):
            attributes.extend(
                _post_attributes(rng, vocabularies[side], post_id, 0)
            )
        schedule.append(
            NetworkDelta.build(
                side,
                added_nodes={USER: new_users, POST: new_posts},
                added_edges=edges,
                updated_attributes=attributes,
                removed_nodes={USER: removed_users, POST: removed_posts},
                removed_edges=removed_edges,
            )
        )
        # --- bookkeeping ----------------------------------------------
        evo_users[side] = survivors + new_users
        evo_posts[side] = surviving_posts + new_posts
        kept = [
            edge
            for edge in live_edges[side]
            if edge not in removed_edges
            and edge[1] not in dead
            and edge[2] not in dead
        ]
        seen = set(kept)
        for edge in edges:
            if edge not in seen:
                kept.append(edge)
                seen.add(edge)
        live_edges[side] = kept
    return schedule


def _post_attributes(
    rng: np.random.Generator,
    vocabulary,
    post_id,
    words_per_post: int,
) -> List[Tuple[str, object, object]]:
    """Timestamp/location/word attachments for one scripted post."""
    attributes: List[Tuple[str, object, object]] = []
    timestamps = vocabulary[TIMESTAMP]
    if timestamps:
        attributes.append(
            (TIMESTAMP, post_id, timestamps[int(rng.integers(len(timestamps)))])
        )
    locations = vocabulary[LOCATION]
    if locations:
        attributes.append(
            (LOCATION, post_id, locations[int(rng.integers(len(locations)))])
        )
    words = vocabulary[WORD]
    for _ in range(words_per_post if words else 0):
        attributes.append(
            (WORD, post_id, words[int(rng.integers(len(words)))])
        )
    return attributes


def evolution_rounds(
    schedule: Sequence[NetworkDelta],
    every: int = 1,
    start: int = 1,
) -> List[Tuple[int, NetworkDelta]]:
    """Spread a schedule over query rounds for the drifting active loop.

    Returns ``(round, delta)`` events — one delta applied after rounds
    ``start, start + every, ...`` — in the shape
    :class:`~repro.core.activeiter.ActiveIter` accepts as
    ``evolution=``.
    """
    if every < 1:
        raise AlignmentError("every must be >= 1")
    if start < 1:
        raise AlignmentError("start must be >= 1")
    return [
        (start + index * every, delta)
        for index, delta in enumerate(schedule)
    ]


def replay_schedule(
    pair: AlignedPair, schedule: Sequence[NetworkDelta], upto: Optional[int] = None
) -> AlignedPair:
    """Apply (a prefix of) a schedule to a pair; returns the pair.

    Convenience for building the full-recount reference: grow an
    identically constructed pair to the same end state, then count from
    scratch.
    """
    for delta in schedule[:upto]:
        pair.apply_delta(delta)
    return pair
