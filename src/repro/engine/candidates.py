"""Batched candidate-pair streaming with degree/neighborhood pruning.

The full candidate space H is the cross product |U1| x |U2| — millions
of pairs already at modest network sizes, far too many to materialize
as a Python list of tuples.  :class:`CandidateGenerator` streams H in
blocks and prunes it two ways:

* **degree pruning** — users whose follow degrees differ by more than a
  ratio are unlikely counterparts (degree is roughly preserved across
  platforms for the same person);
* **neighborhood pruning** — a pair whose instance count is zero in
  *every* meta structure has an all-zero proximity vector, so
  :meth:`CandidateGenerator.from_support` restricts H to the union of
  the structures' support sets (computed from the session's cached
  count matrices — no extra counting).  Note the bias caveat: with a
  bias feature such pairs still score the bias weight, so callers must
  only apply this prune when that weight is below the selection
  threshold (:meth:`AlignmentPipeline.stream_predict` checks this).

:func:`streamed_selection` then runs scoring and the greedy one-to-one
selector over the stream block by block.  It is *exact*: the greedy
selector never labels a link with score ≤ threshold positive, so only
the above-threshold survivors of each block need to be retained for the
final global selection.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy import sparse

from repro.engine.parallel import (
    SerialExecutor,
    WorkersSpec,
    _picklable,
    get_executor,
)
from repro.exceptions import AlignmentError
from repro.matching.greedy import greedy_link_selection
from repro.networks.aligned import AlignedPair
from repro.networks.schema import FOLLOW
from repro.types import LinkPair, NodeId

#: A block of candidate pairs produced by the generator.
CandidateBlock = List[LinkPair]


def _follow_degrees(network) -> np.ndarray:
    """Total (in + out) follow degree per user, in node order."""
    adjacency = network.typed_adjacency(FOLLOW)
    out_degree = np.asarray(adjacency.sum(axis=1)).ravel()
    in_degree = np.asarray(adjacency.sum(axis=0)).ravel()
    return out_degree + in_degree


def _support_mask(
    session, min_structures: int, rows: Optional[np.ndarray] = None
) -> sparse.csr_matrix:
    """Structure-support indicator over H (or over selected rows only).

    With ``rows`` the scan touches only those rows of every count
    matrix — the dirty-row refresh path of
    :meth:`CandidateGenerator.refresh`.
    """
    support: Optional[sparse.csr_matrix] = None
    for counts in session.structure_counts().values():
        matrix = counts.tocsr()
        if rows is not None:
            matrix = matrix[rows]
        indicator = matrix.copy()
        indicator.data = np.ones_like(indicator.data)
        support = indicator if support is None else (support + indicator)
    if support is None:
        # A family with no structures supports no pair at all: stream a
        # clean empty candidate space instead of silently un-pruning to
        # the full cross product.  Shapes are slot counts — matrix
        # coordinates include tombstoned slots.
        user_type = session.pair.anchor_node_type
        n_rows = (
            len(rows)
            if rows is not None
            else session.pair.left.slot_count(user_type)
        )
        support = sparse.csr_matrix(
            (n_rows, session.pair.right.slot_count(user_type))
        )
    if min_structures > 1:
        support.data = np.where(support.data >= min_structures, 1.0, 0.0)
        support.eliminate_zeros()
    return support


def _pad_mask(
    mask: sparse.csr_matrix, shape: Tuple[int, int]
) -> sparse.csr_matrix:
    """Grow an admissibility mask to a larger candidate space."""
    from repro.engine.incremental import pad_csr

    return pad_csr(mask, shape)


def _replace_rows(
    base: sparse.csr_matrix, rows: np.ndarray, replacement: sparse.csr_matrix
) -> sparse.csr_matrix:
    """Splice ``replacement``'s rows into ``base`` at positions ``rows``.

    Built from two sparse products (a keep-diagonal and a scatter
    selector), so the cost is O(nnz) — no Python-level row loop.
    """
    keep = np.ones(base.shape[0], dtype=np.float64)
    keep[rows] = 0.0
    kept = sparse.diags(keep).tocsr() @ base
    scatter = sparse.csr_matrix(
        (
            np.ones(rows.size, dtype=np.float64),
            (rows, np.arange(rows.size, dtype=np.int64)),
        ),
        shape=(base.shape[0], rows.size),
    )
    spliced = (kept + scatter @ replacement).tocsr()
    spliced.eliminate_zeros()
    spliced.sort_indices()
    return spliced


class CandidateGenerator:
    """Streams pruned candidate anchor pairs in fixed-size blocks.

    Parameters
    ----------
    pair:
        The aligned networks.
    block_size:
        Maximum number of pairs per yielded block.
    max_degree_ratio:
        When set, keep ``(u, v)`` only if their smoothed follow degrees
        are within this ratio of each other:
        ``(1 + deg(u)) / (1 + deg(v)) ≤ r`` and vice versa.
    allowed:
        Optional explicit sparse |U1| x |U2| mask of admissible pairs
        (used by :meth:`from_support`); non-zero means admissible.
    exclude:
        Pairs to skip regardless of pruning (e.g. already-labeled
        links).
    """

    def __init__(
        self,
        pair: AlignedPair,
        block_size: int = 4096,
        max_degree_ratio: Optional[float] = None,
        allowed: Optional[sparse.spmatrix] = None,
        exclude: Iterable[LinkPair] = (),
    ) -> None:
        if block_size < 1:
            raise AlignmentError("block_size must be >= 1")
        if max_degree_ratio is not None and max_degree_ratio < 1.0:
            raise AlignmentError("max_degree_ratio must be >= 1")
        self.pair = pair
        self.block_size = int(block_size)
        self.max_degree_ratio = max_degree_ratio
        self._exclude: Set[LinkPair] = set(exclude)
        # Slot lists, not live-node lists: index ``i``/``j`` must agree
        # with matrix row/column coordinates, so tombstoned slots ride
        # along as ``None`` and are skipped during streaming.
        self._left_users = pair.left_user_slots()
        self._right_users = pair.right_user_slots()
        self._allowed = allowed.tocsr() if allowed is not None else None
        if self._allowed is not None:
            expected = (len(self._left_users), len(self._right_users))
            if self._allowed.shape != expected:
                raise AlignmentError(
                    f"allowed mask shape {self._allowed.shape} does not "
                    f"match the candidate space {expected}"
                )
        if max_degree_ratio is not None:
            self._left_degrees = _follow_degrees(pair.left)
            self._right_degrees = _follow_degrees(pair.right)
        else:
            self._left_degrees = None
            self._right_degrees = None
        # Set by from_support: lets refresh() rebuild the prune mask —
        # and track the session's delta epoch for dirty-row refreshes.
        self._support_min: Optional[int] = None
        self._support_epoch: Optional[int] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_support(
        cls,
        session,
        block_size: int = 4096,
        min_structures: int = 1,
        exclude: Iterable[LinkPair] = (),
    ) -> "CandidateGenerator":
        """Neighborhood pruning: pairs supported by ≥ ``min_structures``.

        Uses the session's cached count matrices — pairs outside every
        structure's support have identically zero proximity features and
        are dropped.  ``min_structures > 1`` tightens the prune to pairs
        connected by several kinds of evidence.  After the session's
        network evolves, :meth:`refresh` brings the generator current
        without rebuilding clean rows.
        """
        if min_structures < 1:
            raise AlignmentError("min_structures must be >= 1")
        generator = cls(
            session.pair,
            block_size=block_size,
            allowed=_support_mask(session, min_structures),
            exclude=exclude,
        )
        generator._support_min = min_structures
        generator._support_epoch = session.delta_epoch
        return generator

    def refresh(self, session=None, dirty_rows=None) -> "CandidateGenerator":
        """Bring the generator current after the pair evolved.

        Re-resolves the user lists and degree vectors (new users stream
        like any other row) and, for a support-pruned generator,
        rebuilds the admissibility mask for exactly the **dirty rows** —
        the left users whose counts a delta touched (taken from
        ``session.dirty_since`` unless ``dirty_rows`` overrides it) plus
        the newly added rows.  Clean rows keep their mask bits verbatim,
        so the refreshed generator is byte-identical to one built fresh
        with :meth:`from_support` at a fraction of the scan.  Returns
        ``self`` for chaining.
        """
        old_n_left = len(self._left_users)
        self._left_users = self.pair.left_user_slots()
        self._right_users = self.pair.right_user_slots()
        if self.max_degree_ratio is not None:
            self._left_degrees = _follow_degrees(self.pair.left)
            self._right_degrees = _follow_degrees(self.pair.right)
        if self._allowed is None:
            return self
        if self._support_min is None:
            raise AlignmentError(
                "cannot refresh an explicit allowed mask; rebuild the "
                "generator with the new mask instead"
            )
        if session is None:
            raise AlignmentError(
                "refreshing a support-pruned generator needs the session"
            )
        shape = (len(self._left_users), len(self._right_users))
        if dirty_rows is None and self._support_epoch is not None:
            dirty = session.dirty_since(self._support_epoch)
            if dirty is not None:
                dirty_rows = dirty[0]
        if dirty_rows is None:
            # Unknown dirty set (or log trimmed): full rebuild.
            self._allowed = _support_mask(session, self._support_min)
        else:
            rows = np.unique(
                np.concatenate(
                    [
                        np.asarray(dirty_rows, dtype=np.int64),
                        np.arange(old_n_left, shape[0], dtype=np.int64),
                    ]
                )
            )
            self._allowed = _pad_mask(self._allowed, shape)
            if rows.size:
                replacement = _support_mask(
                    session, self._support_min, rows=rows
                )
                self._allowed = _replace_rows(self._allowed, rows, replacement)
        self._support_epoch = session.delta_epoch
        return self

    # ------------------------------------------------------------------
    def _row_columns(self, i: int) -> np.ndarray:
        """Admissible right-user indices for left user ``i``."""
        if self._allowed is not None:
            start, end = self._allowed.indptr[i], self._allowed.indptr[i + 1]
            columns = self._allowed.indices[start:end]
        else:
            columns = np.arange(len(self._right_users))
        if self.max_degree_ratio is not None and columns.size:
            left_degree = 1.0 + self._left_degrees[i]
            right_degrees = 1.0 + self._right_degrees[columns]
            ratio = np.maximum(left_degree / right_degrees, right_degrees / left_degree)
            columns = columns[ratio <= self.max_degree_ratio]
        return columns

    def count(self) -> int:
        """Number of candidate pairs the stream will produce."""
        total = 0
        for i, left_user in enumerate(self._left_users):
            if left_user is None:
                continue  # tombstoned slot
            columns = self._row_columns(i)
            if self._exclude:
                total += sum(
                    1
                    for j in columns
                    if self._right_users[j] is not None
                    and (left_user, self._right_users[j]) not in self._exclude
                )
            else:
                total += sum(
                    1 for j in columns if self._right_users[j] is not None
                )
        return total

    def pairs(self) -> Iterator[LinkPair]:
        """Every candidate pair, in deterministic row-major order."""
        for block in self.blocks():
            yield from block

    def blocks(self) -> Iterator[CandidateBlock]:
        """Yield candidate pairs in blocks of at most ``block_size``."""
        block: CandidateBlock = []
        for i, left_user in enumerate(self._left_users):
            if left_user is None:
                continue  # tombstoned slot
            for j in self._row_columns(i):
                right_user = self._right_users[j]
                if right_user is None:
                    continue  # tombstoned slot (its mask bits are stale)
                candidate = (left_user, right_user)
                if candidate in self._exclude:
                    continue
                block.append(candidate)
                if len(block) >= self.block_size:
                    yield block
                    block = []
        if block:
            yield block


def linear_scorer(
    session, weights: np.ndarray
) -> Callable[[Sequence[LinkPair]], np.ndarray]:
    """Score function ``block -> X_block @ w`` over session features."""
    weights = np.asarray(weights, dtype=np.float64).ravel()
    if weights.shape[0] != session.n_features:
        raise AlignmentError(
            f"{weights.shape[0]} weights for {session.n_features} features"
        )

    def score(block: Sequence[LinkPair]) -> np.ndarray:
        return session.extract(block) @ weights

    return score


def _score_block_unit(
    item: Tuple[Callable[[Sequence[LinkPair]], np.ndarray], CandidateBlock],
) -> Tuple[CandidateBlock, np.ndarray]:
    """Score one block — module-level so process pools can pickle it."""
    score_fn, block = item
    return block, np.asarray(score_fn(block), dtype=np.float64).ravel()


def streamed_selection(
    generator: CandidateGenerator,
    score_fn: Callable[[Sequence[LinkPair]], np.ndarray],
    threshold: float = 0.5,
    blocked_left: Optional[Iterable[NodeId]] = None,
    blocked_right: Optional[Iterable[NodeId]] = None,
    workers: WorkersSpec = None,
) -> List[Tuple[LinkPair, float]]:
    """Greedy one-to-one selection over a streamed candidate space.

    Scores each block, keeps only links above ``threshold`` (the greedy
    selector can never pick the rest), and runs one exact global greedy
    pass over the survivors.  Returns the selected links with their
    scores, ordered by decreasing score.

    With ``workers`` (an integer or a shared
    :class:`~repro.engine.parallel.Executor`) blocks are scored across
    a thread pool; survivors are still merged in stream order, so the
    selection is byte-identical to a serial sweep.  A cross-process
    executor (process pool or RPC fleet) fans blocks across workers
    when ``score_fn`` is picklable — e.g. an
    :class:`~repro.store.procwork.ArenaLinearScorer` resolving features
    against a shared arena — and degrades to a serial sweep otherwise
    (a closure over live session state cannot cross the process
    boundary).  An empty candidate space yields an empty selection,
    never an error.
    """
    executor = get_executor(workers)
    if executor.crosses_processes and not _picklable(score_fn):
        executor = SerialExecutor()

    survivor_pairs: List[LinkPair] = []
    survivor_scores: List[np.ndarray] = []
    # Streaming imap, not map: blocks flow into the executor's bounded
    # in-flight window as the generator produces them (on an RPC fleet
    # that window is the protocol v3 pipelined dispatch — barrier-free,
    # so the greedy merge below never waits on a chunk boundary).
    scored = executor.imap(
        _score_block_unit, ((score_fn, block) for block in generator.blocks())
    )
    for block, scores in scored:
        if scores.shape[0] != len(block):
            raise AlignmentError(
                f"score function returned {scores.shape[0]} scores "
                f"for a block of {len(block)} candidates"
            )
        keep = scores > threshold
        if keep.any():
            survivor_pairs.extend(
                pair for pair, kept in zip(block, keep) if kept
            )
            survivor_scores.append(scores[keep])
    if not survivor_pairs:
        return []
    scores = np.concatenate(survivor_scores)
    labels = greedy_link_selection(
        survivor_pairs,
        scores,
        threshold=threshold,
        blocked_left=blocked_left,
        blocked_right=blocked_right,
    )
    selected = [
        (pair, float(score))
        for pair, score, label in zip(survivor_pairs, scores, labels)
        if label == 1
    ]
    selected.sort(key=lambda item: -item[1])
    return selected
