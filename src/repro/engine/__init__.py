"""Incremental alignment engine: sessions, delta updates, streaming.

The engine layer sits between the meta-structure counting algebra and
the models.  An :class:`~repro.engine.session.AlignmentSession` owns all
per-pair cached state (count matrices, proximities, the known anchor
set) and updates it incrementally as the active loop buys labels;
:mod:`repro.engine.candidates` streams the candidate space in pruned
blocks instead of materializing the |U1| x |U2| cross product.
"""

from repro.engine.candidates import (
    CandidateGenerator,
    linear_scorer,
    streamed_selection,
)
from repro.engine.incremental import (
    DeltaEvaluator,
    apply_delta,
    leaf_occurrences,
    supports_delta,
)
from repro.engine.session import AlignmentSession, SessionStats

__all__ = [
    "AlignmentSession",
    "CandidateGenerator",
    "DeltaEvaluator",
    "SessionStats",
    "apply_delta",
    "leaf_occurrences",
    "linear_scorer",
    "streamed_selection",
    "supports_delta",
]
