"""Incremental alignment engine: sessions, delta updates, streaming.

The engine layer sits between the meta-structure counting algebra and
the models.  An :class:`~repro.engine.session.AlignmentSession` owns all
per-pair cached state (count matrices, proximities, the known anchor
set) and updates it incrementally as the active loop buys labels;
:mod:`repro.engine.candidates` streams the candidate space in pruned
blocks instead of materializing the |U1| x |U2| cross product;
:mod:`repro.engine.streaming` carries whole fit problems in block form
(no |H| x d feature matrix); :mod:`repro.engine.parallel` provides
the executor abstraction that fans per-structure and per-block work out
across threads — or, with a store-backed session
(:mod:`repro.store`), across processes — with byte-identical results;
and :mod:`repro.engine.evolution` scripts deterministic network-growth
schedules for the evolving-network workload served by
``AlignmentSession.apply_network_delta``.
"""

from repro.engine.candidates import (
    CandidateGenerator,
    linear_scorer,
    streamed_selection,
)
from repro.engine.evolution import (
    evolution_rounds,
    replay_schedule,
    scripted_delta_schedule,
)
from repro.engine.incremental import (
    DeltaEvaluator,
    apply_delta,
    leaf_occurrences,
    pad_csr,
    supports_delta,
)
from repro.engine.parallel import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    get_executor,
    make_executor,
)
from repro.engine.session import AlignmentSession, SessionStats
from repro.engine.streaming import (
    AUTO_BLOCK_SIZE,
    StreamedAlignmentTask,
    blockify,
    resolve_block_size,
    tune_block_size,
)

__all__ = [
    "AUTO_BLOCK_SIZE",
    "AlignmentSession",
    "CandidateGenerator",
    "DeltaEvaluator",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "SessionStats",
    "StreamedAlignmentTask",
    "ThreadedExecutor",
    "apply_delta",
    "blockify",
    "evolution_rounds",
    "get_executor",
    "leaf_occurrences",
    "linear_scorer",
    "make_executor",
    "pad_csr",
    "replay_schedule",
    "resolve_block_size",
    "scripted_delta_schedule",
    "streamed_selection",
    "supports_delta",
    "tune_block_size",
]
