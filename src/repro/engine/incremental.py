"""Delta evaluation of count expressions under base-matrix updates.

The paper's incremental argument is *linearity*: matrix product and
Hadamard product both distribute over addition, so for any count
expression that references the anchor matrix ``A`` once,

    count(A + ΔA) = count(A) + count(ΔA).

This module generalizes that seam from the anchor-only special case to
a **delta algebra over arbitrary leaves**.  Any set of base matrices may
change at once — new posts grow ``W1``/``W2``, edge churn patches
``F1``/``F2``, query rounds grow ``A`` — and the exact change of every
count expression is obtained by telescoping the update through the
expression tree:

    (a + Δa)(b + Δb) - ab  =  Δa·(b + Δb) + a·Δb,

applied per Chain segment and (with Hadamard products) per Parallel
branch.  Every term contains at least one Δ factor, so each term's cost
is proportional to the delta's reach, not the matrix sizes; static
sub-expressions are fetched from the session's memoizing
:class:`CountingEngine`, so the expensive attribute products are never
recomputed.  Repeated occurrences of a changed leaf (both sides of a
chain, nested stackings) need no special casing — the telescoping is
exact for polynomial dependence, not just linear.

Because network growth also changes matrix *shapes* (new users append
rows/columns), cached old values are padded on the fly:
:func:`pad_csr` grows a CSR matrix to a larger shape without touching
its entries — node order is append-only, so old indices stay valid.

All base matrices are 0/1 and path counts are integers well below
2**53, so every delta is *bit-exact*: the incremental and from-scratch
paths produce byte-identical count and feature matrices.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np
from scipy import sparse

from repro.exceptions import MetaStructureError
from repro.meta.algebra import (
    Chain,
    CountingEngine,
    Expr,
    Leaf,
    Parallel,
    expr_shape,
    pad_csr,
)

__all__ = [
    "DeltaEvaluator",
    "apply_delta",
    "entries_to_csr",
    "leaf_occurrences",
    "pad_csr",
    "supports_delta",
]


def entries_to_csr(
    rows, cols, values, shape: Tuple[int, int]
) -> sparse.csr_matrix:
    """Canonical CSR delta from event-sourced entry lists.

    The event fast path accumulates one ``(row, col, ±1)`` entry per
    applied mutation; duplicate coordinates **sum** (an edge removed and
    re-added in one event telescopes to zero) and exact cancellations
    are pruned, so the result is the minimal sparse change of the leaf
    matrix — ready for :class:`DeltaEvaluator` without any re-export or
    matrix diff.
    """
    delta = sparse.csr_matrix(
        (
            np.asarray(values, dtype=np.float64),
            (
                np.asarray(rows, dtype=np.int64),
                np.asarray(cols, dtype=np.int64),
            ),
        ),
        shape=shape,
    )
    delta.sum_duplicates()
    delta.eliminate_zeros()
    delta.sort_indices()
    return delta


def leaf_occurrences(expr: Expr, name: str) -> int:
    """How many times matrix ``name`` appears as a leaf of ``expr``."""
    return sum(1 for leaf in expr.leaves() if leaf == name)


def supports_delta(expr: Expr, name: str = "A") -> bool:
    """Whether the delta algebra can update ``expr`` under a ``name`` delta.

    The generalized evaluator telescopes the update through the
    expression tree, so *any* expression built from the standard node
    types — including those repeating the matrix (both sides of a chain,
    nested stackings) — is covered exactly.  Only expression trees
    containing unknown node types must fall back to full re-evaluation.
    """
    del name  # any occurrence pattern is supported; only the tree matters
    if isinstance(expr, Leaf):
        return True
    if isinstance(expr, Chain):
        return all(supports_delta(segment) for segment in expr.segments)
    if isinstance(expr, Parallel):
        return all(supports_delta(branch) for branch in expr.branches)
    return False


#: What :class:`DeltaEvaluator` accepts as its delta argument: a single
#: sparse change (paired with a ``name``) or a name -> change mapping.
DeltaSpec = Union[sparse.spmatrix, Mapping[str, sparse.spmatrix]]


class DeltaEvaluator:
    """Evaluate the exact change of a count matrix under leaf deltas.

    Parameters
    ----------
    engine:
        The session's counting engine, still holding the *old* base
        matrices; supplies (cached) old values of every sub-expression.
        Callers must delta-evaluate **before** pushing the new matrices
        into the engine.
    deltas:
        Either a ``{name: change}`` mapping — sparse changes of several
        base matrices at once, each given at the matrix's *new* shape —
        or (legacy anchor form) a single matrix name with the change
        passed as ``delta=``.
    delta:
        The sparse change when ``deltas`` is a single name (``+1``
        entries for additions, ``-1`` for removals).
    shapes:
        Optional ``{name: (rows, cols)}`` of *new* leaf shapes.  Needed
        when a network evolution grew matrices that have no content
        delta (pure padding, e.g. ``A`` after new users); defaults to
        the delta shapes plus the engine's current shapes.

    Notes
    -----
    The recursion telescopes the update through the tree: a Chain's
    change is the sum over its delta-carrying segments of
    ``old(prefix) @ Δ(segment) @ new(suffix)``; a Parallel's change is
    the analogous Hadamard telescoping, evaluated by targeted lookups
    at exactly the delta entries (the product's support is contained in
    the delta branch's support).  Each instance memoizes per
    sub-expression, so shared anchored sub-chains are evaluated once
    per update.
    """

    def __init__(
        self,
        engine: CountingEngine,
        deltas: DeltaSpec,
        delta: Optional[sparse.spmatrix] = None,
        shapes: Optional[Mapping[str, Tuple[int, int]]] = None,
    ) -> None:
        self._engine = engine
        if isinstance(deltas, str):
            if delta is None:
                raise MetaStructureError(
                    f"a delta matrix is required with name {deltas!r}"
                )
            deltas = {deltas: delta}
        elif delta is not None:
            raise MetaStructureError(
                "pass either a name/delta pair or a deltas mapping, not both"
            )
        self._deltas: Dict[str, sparse.csr_matrix] = {
            name: change.tocsr() for name, change in deltas.items()
        }
        if not self._deltas:
            raise MetaStructureError("at least one leaf delta is required")
        self._names = frozenset(self._deltas)
        self._shapes: Dict[str, Tuple[int, int]] = {
            name: engine.matrix(name).shape for name in engine.matrix_names
        }
        for name, change in self._deltas.items():
            self._shapes[name] = change.shape
        if shapes is not None:
            self._shapes.update(
                {name: tuple(shape) for name, shape in shapes.items()}
            )
        self._delta_memo: Dict[str, Optional[sparse.csr_matrix]] = {}
        self._expr_memo: Dict[str, Expr] = {}
        self._value_memo: Dict[str, sparse.csr_matrix] = {}
        self._new_memo: Dict[str, Tuple[Expr, sparse.csr_matrix]] = {}
        # Sorted linearized entry keys per branch value, reused across
        # the many Parallel lookups that probe the same branch.  The
        # matrix is stored alongside its keys: the id() key is only
        # unique while the object is alive, so the memo must keep it so.
        self._entry_keys_memo: Dict[
            int, Tuple[sparse.csr_matrix, np.ndarray]
        ] = {}

    @property
    def names(self) -> frozenset:
        """The base-matrix names this evaluator carries deltas for."""
        return self._names

    def evaluate(self, expr: Expr) -> sparse.csr_matrix:
        """The change of ``expr``'s count matrix caused by the deltas.

        An expression touching none of the delta'd leaves changes by
        exactly nothing; its change is the empty matrix at the
        expression's (new) shape.
        """
        if not supports_delta(expr):
            raise MetaStructureError(
                f"unknown expression type in {expr.key()}; "
                "delta evaluation covers Leaf/Chain/Parallel trees only"
            )
        change = self._delta(expr)
        if change is None:
            return sparse.csr_matrix(self._shape(expr))
        return change

    # ------------------------------------------------------------------
    def _shape(self, expr: Expr) -> Tuple[int, int]:
        """The expression's shape under the new leaf shapes."""
        return expr_shape(expr, self._shapes)

    def _old(self, expr: Expr) -> sparse.csr_matrix:
        """Old value from the engine, padded to the new shape."""
        key = expr.key()
        value = self._value_memo.get(key)
        if value is None:
            value = pad_csr(self._engine.evaluate(expr), self._shape(expr))
            self._value_memo[key] = value
        return value

    def _new(self, expr: Expr) -> sparse.csr_matrix:
        """New value: padded old value plus the expression's change."""
        change = self._delta(expr)
        if change is None:
            return self._old(expr)
        key = expr.key()
        memoized = self._new_memo.get(key)
        if memoized is None:
            memoized = (expr, (self._old(expr) + change).tocsr())
            self._new_memo[key] = memoized
        return memoized[1]

    def updated_changes(self):
        """``(expr, change)`` for every delta-carrying sub-expression.

        Changes are exact (integer telescoping), so the caller can
        :meth:`~repro.meta.algebra.CountingEngine.seed_change` the
        engine with them — the expensive products a naive invalidation
        would recompute on the next update (or the next extraction)
        stay warm, and the O(nnz) folds are deferred until a full
        matrix is actually demanded.  Leaves are excluded (the engine
        serves them from the bag).
        """
        changes = []
        for key, change in self._delta_memo.items():
            if change is None:
                continue
            expr = self._expr_memo[key]
            if not isinstance(expr, Leaf):
                changes.append((expr, change))
        return changes

    def _delta(self, expr: Expr) -> Optional[sparse.csr_matrix]:
        """The expression's change, or ``None`` for provably zero."""
        if not expr.depends_on(self._names):
            return None
        key = expr.key()
        if key in self._delta_memo:
            return self._delta_memo[key]
        if isinstance(expr, Leaf):
            change = self._deltas[expr.name]
            result = change.transpose().tocsr() if expr.transpose else change
        elif isinstance(expr, Chain):
            result = self._delta_chain(expr)
        elif isinstance(expr, Parallel):
            result = self._delta_parallel(expr)
        else:  # pragma: no cover - guarded by supports_delta
            raise MetaStructureError(
                f"unknown expression type {type(expr).__name__}"
            )
        self._delta_memo[key] = result
        self._expr_memo[key] = expr
        return result

    def _delta_chain(self, expr: Chain) -> Optional[sparse.csr_matrix]:
        """Telescoped product delta: one term per delta-carrying segment.

        Term ``i`` is ``old(s_0..s_{i-1}) @ Δ(s_i) @ new(s_{i+1}..s_k)``;
        folding outward from the (sparse) delta factor keeps every
        multiply proportional to the delta's reach.
        """
        segments = expr.segments
        terms = []
        for i, segment in enumerate(segments):
            change = self._delta(segment)
            if change is None:
                continue
            term = change
            for later in segments[i + 1:]:
                term = (term @ self._new(later)).tocsr()
            for earlier in reversed(segments[:i]):
                term = (self._old(earlier) @ term).tocsr()
            terms.append(term)
        return self._sum_terms(terms)

    def _delta_parallel(self, expr: Parallel) -> Optional[sparse.csr_matrix]:
        """Telescoped Hadamard delta via targeted value lookups.

        Each term's support is contained in its delta branch's support,
        so instead of scipy's O(nnz(static)) elementwise multiplies the
        sibling branches' values are read at exactly the delta entries —
        O(m log nnz) for an m-entry branch delta.  Branches left of the
        delta branch contribute old values, branches right of it new
        values, which telescopes exactly to ``new(∘) - old(∘)``.
        """
        branches = expr.branches
        changes = [self._delta(branch) for branch in branches]
        terms = []
        for i, (branch, change) in enumerate(zip(branches, changes)):
            if change is None:
                continue
            part = change.tocoo()
            if part.nnz == 0:
                continue
            data = part.data.astype(np.float64, copy=True)
            for j, other in enumerate(branches):
                if j == i:
                    continue
                values = self._lookup_old(other, part.row, part.col)
                if j > i and changes[j] is not None:
                    values = values + self._values_at(
                        changes[j], part.row, part.col
                    )
                data *= values
            term = sparse.csr_matrix(
                (data, (part.row, part.col)), shape=self._shape(expr)
            )
            terms.append(term)
        return self._sum_terms(terms)

    def _lookup_old(
        self, expr: Expr, rows: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """Old values of ``expr`` at positions, without forcing a fold.

        A sub-expression the engine holds in seeded ``(base, pending)``
        form is read component-wise — padding and folding are both
        avoided; positions outside a smaller (pre-growth) component are
        zeros by construction.
        """
        component_view = self._engine.components(expr)
        if component_view is None:
            return self._values_at(self._old(expr), rows, cols)
        base, pending = component_view
        values = self._masked_values_at(base, rows, cols)
        for change in pending:
            values = values + self._masked_values_at(change, rows, cols)
        return values

    def _masked_values_at(
        self, matrix: sparse.csr_matrix, rows: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """Entry lookup tolerating positions beyond the matrix's shape."""
        inside = (rows < matrix.shape[0]) & (cols < matrix.shape[1])
        if inside.all():
            return self._values_at(matrix, rows, cols)
        values = np.zeros(rows.size, dtype=np.float64)
        values[inside] = self._values_at(matrix, rows[inside], cols[inside])
        return values

    def _values_at(
        self, matrix: sparse.csr_matrix, rows: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """Targeted entry lookup with per-matrix entry-key caching."""
        from repro.meta.proximity import csr_values_at

        cache_key = id(matrix)
        memoized = self._entry_keys_memo.get(cache_key)
        if memoized is None or memoized[0] is not matrix:
            matrix.sort_indices()
            row_lengths = np.diff(matrix.indptr)
            entry_keys = (
                np.repeat(
                    np.arange(matrix.shape[0], dtype=np.int64), row_lengths
                )
                * matrix.shape[1]
                + matrix.indices
            )
            self._entry_keys_memo[cache_key] = (matrix, entry_keys)
        else:
            entry_keys = memoized[1]
        return csr_values_at(matrix, rows, cols, entry_keys=entry_keys)

    @staticmethod
    def _sum_terms(terms) -> Optional[sparse.csr_matrix]:
        if not terms:
            return None
        result = terms[0]
        for term in terms[1:]:
            result = (result + term).tocsr()
        result.eliminate_zeros()
        result.sort_indices()
        return result


def apply_delta(
    base: Optional[sparse.csr_matrix], change: sparse.csr_matrix
) -> sparse.csr_matrix:
    """Add a delta count matrix onto the cached base counts.

    Cancelled entries (an anchor removed then re-added elsewhere) are
    pruned so the stored matrix stays canonical.
    """
    if base is None:
        updated = change.tocsr().copy()
    else:
        updated = (base + change).tocsr()
    updated.eliminate_zeros()
    return updated
