"""Delta evaluation of count expressions under anchor-matrix updates.

Every count expression in the paper's family references the anchor
matrix ``A`` **at most once**: follow paths are ``M1 @ A @ M2``, stacked
follow diagrams are ``(M1i ∘ M1j) @ A @ (M2i ∘ M2j)``, endpoint
stackings place the whole anchored chain inside exactly one Hadamard
branch, and attribute structures never touch ``A`` at all.  Matrix
product and Hadamard product both distribute over addition, so any such
expression is *linear* in ``A``:

    count(A + ΔA) = count(A) + count(ΔA).

When a query round adds ``k`` anchors, ``ΔA`` has only ``k`` non-zeros,
so evaluating the expression with ``A`` replaced by ``ΔA`` touches only
the affected rows/columns — a sparse low-rank update instead of a full
re-count.  Because every base matrix is 0/1 and path counts are
integers well below 2**53, the update is *bit-exact*: the incremental
and from-scratch paths produce byte-identical feature matrices.

:class:`DeltaEvaluator` implements the recursion; A-free sub-expressions
are fetched from the session's memoizing :class:`CountingEngine`, so the
expensive attribute products are never recomputed.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
from scipy import sparse

from repro.exceptions import MetaStructureError
from repro.meta.algebra import Chain, CountingEngine, Expr, Leaf, Parallel


def leaf_occurrences(expr: Expr, name: str) -> int:
    """How many times matrix ``name`` appears as a leaf of ``expr``."""
    return sum(1 for leaf in expr.leaves() if leaf == name)


def supports_delta(expr: Expr, name: str = "A") -> bool:
    """Whether ``expr`` is linear in ``name`` (appears at most once).

    Linearity is what makes ``count(A + ΔA) = count(A) + count(ΔA)``
    exact; expressions that repeat the matrix (none in the standard
    family, but possible with discovered path sets) must fall back to
    full re-evaluation.
    """
    return leaf_occurrences(expr, name) <= 1


class DeltaEvaluator:
    """Evaluate ``expr(ΔA)`` — the exact change of a count matrix.

    Parameters
    ----------
    engine:
        The session's counting engine; supplies (cached) values of every
        sub-expression that does not reference ``name``.
    name:
        The base matrix being updated (the anchor matrix ``"A"``).
    delta:
        Sparse change of that matrix (``+1`` entries for added anchors,
        ``-1`` for removed ones).

    Notes
    -----
    Only valid for expressions where ``name`` occurs exactly once; the
    recursion substitutes ``delta`` at that leaf, takes static values
    for every sibling from the engine, and memoizes per-instance so
    shared anchored sub-chains are evaluated once per update.
    """

    def __init__(
        self, engine: CountingEngine, name: str, delta: sparse.csr_matrix
    ) -> None:
        self._engine = engine
        self._name = name
        self._delta = delta.tocsr()
        self._memo: Dict[str, sparse.csr_matrix] = {}

    def evaluate(self, expr: Expr) -> sparse.csr_matrix:
        """The change of ``expr``'s count matrix caused by ``delta``."""
        occurrences = leaf_occurrences(expr, self._name)
        if occurrences != 1:
            raise MetaStructureError(
                f"delta evaluation needs exactly one {self._name!r} leaf, "
                f"found {occurrences} in {expr.key()}"
            )
        return self._evaluate(expr)

    # ------------------------------------------------------------------
    def _evaluate(self, expr: Expr) -> sparse.csr_matrix:
        key = expr.key()
        memoized = self._memo.get(key)
        if memoized is not None:
            return memoized
        if isinstance(expr, Leaf):
            if expr.name != self._name:  # pragma: no cover - guarded above
                raise MetaStructureError(
                    f"delta recursion reached static leaf {expr.key()}"
                )
            result = (
                self._delta.transpose().tocsr() if expr.transpose else self._delta
            )
        elif isinstance(expr, Chain):
            result = None
            for segment in expr.segments:
                operand = self._operand(segment)
                result = operand if result is None else (result @ operand).tocsr()
        elif isinstance(expr, Parallel):
            result = self._evaluate_parallel(expr)
        else:
            raise MetaStructureError(
                f"unknown expression type {type(expr).__name__}"
            )
        self._memo[key] = result
        return result

    def _evaluate_parallel(self, expr: Parallel) -> sparse.csr_matrix:
        """Hadamard delta: targeted lookups instead of full multiplies.

        The product's support is contained in the (tiny) delta branch's
        support, so instead of scipy's O(nnz(static)) elementwise
        multiply, read the static branches' values at exactly the delta
        branch's entries — O(m log nnz) for an m-entry delta.
        """
        from repro.meta.proximity import csr_values_at

        dynamic = next(
            branch
            for branch in expr.branches
            if leaf_occurrences(branch, self._name) > 0
        )
        delta_part = self._evaluate(dynamic).tocoo()
        data = delta_part.data.astype(np.float64, copy=True)
        for branch in expr.branches:
            if branch is dynamic:
                continue
            static = self._engine.evaluate(branch)
            data *= csr_values_at(static, delta_part.row, delta_part.col)
        result = sparse.csr_matrix(
            (data, (delta_part.row, delta_part.col)), shape=delta_part.shape
        )
        result.eliminate_zeros()
        return result

    def _operand(self, sub: Expr) -> sparse.csr_matrix:
        """Delta-evaluate the branch holding ``name``; engine-evaluate others."""
        if leaf_occurrences(sub, self._name) > 0:
            return self._evaluate(sub)
        return self._engine.evaluate(sub)


def apply_delta(
    base: Optional[sparse.csr_matrix], change: sparse.csr_matrix
) -> sparse.csr_matrix:
    """Add a delta count matrix onto the cached base counts.

    Cancelled entries (an anchor removed then re-added elsewhere) are
    pruned so the stored matrix stays canonical.
    """
    if base is None:
        updated = change.tocsr().copy()
    else:
        updated = (base + change).tocsr()
    updated.eliminate_zeros()
    return updated
