"""The incremental alignment session: shared state for one aligned pair.

:class:`AlignmentSession` is the engine-layer object threaded through
the pipeline, the active loop, the experiment harness and the CLI.  It
owns, for one :class:`~repro.networks.aligned.AlignedPair`:

* the memoizing :class:`~repro.meta.algebra.CountingEngine` over the
  pair's typed adjacency matrices;
* the per-structure count matrices, their row/column sums and
  :class:`~repro.meta.proximity.ProximityMatrix` views of the
  configured diagram family;
* the current *known anchor* set (training positives plus queried
  positives);
* cached *candidate views* — the index arrays and per-structure count
  values of candidate lists that are scored repeatedly.

Updates are **incremental** through the generalized delta algebra of
:mod:`repro.engine.incremental`.  Anchor updates: adding ``k`` anchors
applies a sparse low-rank delta to each anchor-dependent count matrix,
its row/column sums, and the cached candidate-view values — and
:meth:`refresh_features` then rewrites only the affected columns of an
existing feature matrix in place, without any O(nnz) recount or
re-scan.  Network updates: :meth:`apply_network_delta` grows ``W1``/
``W2``/adjacency in place (append-only node order makes growth pure
padding), folds one-sided delta products for exactly the structures the
changed matrices touch, and leaves everything else — including
attribute-only counts under anchor churn — untouched across query
rounds, refits, experiment folds and evolution events alike.  All
updates are bit-exact: counts are integer-valued, and
products/Hadamards/sums of integers below 2**53 are exact in float64.
"""

from __future__ import annotations

import copy
import logging
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np
from scipy import sparse

from repro.engine.incremental import (
    DeltaEvaluator,
    apply_delta,
    entries_to_csr,
    pad_csr,
    supports_delta,
)
from repro.engine.parallel import Executor, WorkersSpec, get_executor
from repro.exceptions import FeatureError, StoreError
from repro.meta.algebra import CountingEngine, Expr
from repro.meta.context import (
    ANCHOR_MATRIX,
    FOLLOW_LEFT,
    FOLLOW_RIGHT,
    LOCATION_LEFT,
    LOCATION_RIGHT,
    TIMESTAMP_LEFT,
    TIMESTAMP_RIGHT,
    WORD_LEFT,
    WORD_RIGHT,
    WRITE_LEFT,
    WRITE_RIGHT,
    bag_fingerprints,
    build_matrix_bag,
)
from repro.meta.diagrams import DiagramFamily, standard_diagram_family
from repro.meta.proximity import ProximityMatrix, csr_values_at, dice_scores
from repro.networks.aligned import AlignedPair, DeltaApplication, NetworkDelta
from repro.networks.schema import FOLLOW, LOCATION, POST, TIMESTAMP, WORD, WRITE
from repro.obs.metrics import CounterGroup, MetricsRegistry
from repro.obs.tracing import get_tracer
from repro.store.arena import MatrixArena, as_arena
from repro.store.procwork import (
    SESSION_META,
    SESSION_SLOTS,
    ArenaSpec,
    col_sums_slot,
    counts_slot,
    row_sums_slot,
)
from repro.types import LinkPair

logger = logging.getLogger(__name__)

#: Session state-dict format, for checkpoint compatibility checks.
#: Version 2 added the evolution log; version 3 marks the model-backend
#: era — snapshots are structurally unchanged, but the fallback counter
#: joined the stats block and active-loop checkpoints may now carry
#: model-backend state alongside the session.  Version 4 adds the
#: compaction epoch and (after a compaction) the pair snapshot the
#: truncated evolution log replays from.  Version 1-3 snapshots still
#: load.
_STATE_FORMAT_VERSION = 4

#: State-dict versions :meth:`AlignmentSession.load_state_dict` accepts.
_LOADABLE_STATE_VERSIONS = (1, 2, 3, 4)

#: How many delta events the dirty-region log retains; consumers whose
#: marker fell off the log get a conservative "everything dirty" answer.
_DELTA_LOG_LIMIT = 64

#: Relation / attribute -> bag-matrix name, per side.  The event fast
#: path covers exactly the paper schema's exports; anything else falls
#: back to the fingerprint-diff path.
_RELATION_NAMES = {
    "left": {FOLLOW: FOLLOW_LEFT, WRITE: WRITE_LEFT},
    "right": {FOLLOW: FOLLOW_RIGHT, WRITE: WRITE_RIGHT},
}
_ATTRIBUTE_NAMES = {
    "left": {
        TIMESTAMP: TIMESTAMP_LEFT,
        LOCATION: LOCATION_LEFT,
        WORD: WORD_LEFT,
    },
    "right": {
        TIMESTAMP: TIMESTAMP_RIGHT,
        LOCATION: LOCATION_RIGHT,
        WORD: WORD_RIGHT,
    },
}
_ATTRIBUTE_PAIRS = {
    TIMESTAMP: (TIMESTAMP_LEFT, TIMESTAMP_RIGHT),
    LOCATION: (LOCATION_LEFT, LOCATION_RIGHT),
    WORD: (WORD_LEFT, WORD_RIGHT),
}


class SessionStats(CounterGroup):
    """Counters describing how much work the session avoided.

    Since the ``repro.obs`` unification this is a *view* over
    ``session.`` counters in a :class:`~repro.obs.metrics.MetricsRegistry`
    (the session's own, reachable as ``session.metrics``), not a
    dataclass — but the surface is unchanged: attribute reads and
    ``+=``, keyword construction, equality, and :meth:`summary` all
    behave exactly as before, and :meth:`~repro.obs.metrics.CounterGroup.as_dict`
    round-trips through checkpoints where ``dataclasses.asdict`` did.
    A pickled/copied ``SessionStats`` detaches onto a private registry,
    so stat snapshots taken mid-run stay frozen.

    Attributes
    ----------
    anchor_updates:
        ``set_anchors`` calls that actually changed the known set.
    network_updates:
        ``apply_network_delta`` calls that actually changed a matrix.
    delta_updates:
        Structure count matrices updated via the sparse delta path.
    full_recounts:
        Structure count matrices evaluated from scratch (initial
        evaluation included).
    fallback_invalidations:
        Materialized structures an update *dropped* because the sparse
        delta path could not serve it (a fold switch, a delta on a
        non-delta-capable expression, an uncovered delta shape) — every
        one forces a later full recount, so this is the counter that
        makes the silent slow path visible (it is also logged and
        recorded in experiment runtime metadata).
    removal_updates:
        ``apply_network_delta`` calls whose event shrank something —
        removed edges, removed (tombstoned) nodes, detached attribute
        cells or dropped known anchors.  Removals ride the same sparse
        delta path as growth, so this counter rising while
        ``fallback_invalidations`` stays flat is the removal-delta
        feature working as intended.
    compactions:
        :meth:`AlignmentSession.compact` calls that actually rewrote
        slots or truncated the evolution log.
    columns_refreshed:
        Feature-matrix columns rewritten in place by
        :meth:`AlignmentSession.refresh_features`.
    extract_calls:
        Full feature-extraction calls served.
    """

    _prefix = "session."
    _fields = (
        "anchor_updates",
        "network_updates",
        "delta_updates",
        "full_recounts",
        "fallback_invalidations",
        "removal_updates",
        "compactions",
        "columns_refreshed",
        "extract_calls",
    )

    def summary(self) -> str:
        """One-line human-readable rendering."""
        return " ".join(
            f"{name}={getattr(self, name)}" for name in self._fields
        )

    def __str__(self) -> str:
        return self.summary()


@dataclass
class _Structure:
    """One feature structure tracked by the session.

    ``pending`` holds delta count matrices that have been applied to
    the sums and the candidate views but not yet folded into ``counts``
    — the active loop scores through views only, so the O(nnz) sparse
    addition is deferred until someone actually reads the counts.
    """

    name: str
    expr: Expr
    anchor_dependent: bool
    delta_capable: bool
    counts: Optional[sparse.csr_matrix] = None
    row_sums: Optional[np.ndarray] = None
    col_sums: Optional[np.ndarray] = None
    proximity: Optional[ProximityMatrix] = field(default=None, repr=False)
    pending: List[sparse.csr_matrix] = field(default_factory=list, repr=False)
    # Guards lazy count evaluation/folding when extraction fans out
    # across threads; each structure is independent, so contention is
    # only ever two scorers racing to materialize the same counts.
    lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )


@dataclass
class _CandidateView:
    """Cached per-candidate-list state for repeated scoring.

    Holds the resolved index arrays of one candidate list plus, per
    structure, the count values at exactly those positions.  Delta
    anchor updates patch the cached values at the (few) positions the
    delta touches and record per-structure *dirty position* sets, so a
    subsequent feature refresh rewrites only the affected entries of
    ``X`` — a delta with ``m`` non-zeros costs O(m log q), not O(q).

    The sorted permutations of the keys and of the left/right index
    arrays are what make the inverted lookups (delta entry -> view
    positions, changed row/col -> view positions) logarithmic.
    """

    pairs: Sequence[LinkPair]  # kept alive so id() stays unique
    left_indices: np.ndarray
    right_indices: np.ndarray
    query_keys: np.ndarray  # linearized row-major (i, j) lookup keys
    key_order: np.ndarray  # argsort of query_keys
    keys_sorted: np.ndarray
    left_order: np.ndarray  # argsort of left_indices
    left_sorted: np.ndarray
    right_order: np.ndarray  # argsort of right_indices
    right_sorted: np.ndarray
    values: Dict[str, np.ndarray] = field(default_factory=dict)
    dirty: Dict[str, List[np.ndarray]] = field(default_factory=dict)

    def positions_of_rows(self, rows: np.ndarray) -> np.ndarray:
        """View positions whose left user index is in ``rows``."""
        return self._positions(self.left_order, self.left_sorted, rows)

    def positions_of_cols(self, cols: np.ndarray) -> np.ndarray:
        """View positions whose right user index is in ``cols``."""
        return self._positions(self.right_order, self.right_sorted, cols)

    @staticmethod
    def _positions(
        order: np.ndarray, sorted_values: np.ndarray, wanted: np.ndarray
    ) -> np.ndarray:
        starts = np.searchsorted(sorted_values, wanted, side="left")
        ends = np.searchsorted(sorted_values, wanted, side="right")
        if not len(starts):
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(
            [order[start:end] for start, end in zip(starts, ends)]
        )


class AlignmentSession:
    """Incremental feature/proximity state for one aligned pair.

    Parameters
    ----------
    pair:
        The aligned networks.
    family:
        Meta structure family; defaults to the paper's full Φ.
    known_anchors:
        Initial known anchor links (training positives only — never the
        test ground truth).
    include_bias:
        Whether extracted feature matrices carry the trailing dummy
        ``1`` column.
    include_words:
        Whether to export word matrices (required if the family uses P7).
    incremental:
        When ``False`` every anchor update re-counts anchor-dependent
        structures from scratch (the baseline path the benchmark
        compares against).  Results are bit-identical either way.
    strict_deltas:
        Verification knob for the event-sourced network-delta fast
        path: after every event fold the engine's leaf matrices are
        re-exported and compared entry-for-entry, raising
        :class:`~repro.exceptions.FeatureError` on any mismatch.
        O(nnz) per event — use in tests and when debugging custom
        schedules, not in production loops.
    compact_every:
        When set, :meth:`compact` runs automatically once the evolution
        log reaches this many events since the last compaction —
        bounding a long-drift session's tombstones, log length, and
        store footprint.
    workers:
        Execution-layer knob: ``None``/``1`` for serial (the default),
        an integer >= 2 for a thread pool, or a shared
        :class:`~repro.engine.parallel.Executor`.  Per-structure delta
        evaluation, feature-column extraction and dirty-column refresh
        fan out across workers; results are merged in family order and
        are byte-identical to the serial path.
    view_cache_size:
        Upper bound on cached candidate views.  Each cached view holds
        the per-structure count values of one candidate list, so the
        bound is also the session's feature-memory bound: streamed fits
        with more blocks than this deliberately recompute lookups per
        pass (bounded memory) — raise it to trade memory for speed when
        a streamed task's block count is known and affordable.
    store:
        Disk-backed matrix store: a directory path or a shared
        :class:`~repro.store.arena.MatrixArena`.  When set, every
        materialized count matrix (and every memoized counting-engine
        product) is spilled to the store and served back as a memory
        map, so the session's resident set is the pages in flight, not
        the sum of all matrices.  The store is also the shared-state
        substrate of the :class:`~repro.engine.parallel.ProcessExecutor`
        (see :meth:`flush_store`) and the natural home of
        :class:`~repro.store.checkpoint.SessionCheckpoint` files.
        ``None`` (the default) keeps everything in RAM.
    """

    def __init__(
        self,
        pair: AlignedPair,
        family: Optional[DiagramFamily] = None,
        known_anchors: Optional[Iterable[LinkPair]] = None,
        include_bias: bool = True,
        include_words: bool = False,
        incremental: bool = True,
        workers: WorkersSpec = None,
        view_cache_size: int = 16,
        store: Optional[Union[str, Path, MatrixArena]] = None,
        strict_deltas: bool = False,
        compact_every: Optional[int] = None,
    ) -> None:
        self.pair = pair
        self.strict_deltas = bool(strict_deltas)
        if compact_every is not None and compact_every < 1:
            raise FeatureError("compact_every must be >= 1")
        self.compact_every = compact_every
        self.family = family if family is not None else standard_diagram_family(
            include_words=include_words
        )
        self.include_bias = include_bias
        self.incremental = bool(incremental)
        self.executor: Executor = get_executor(workers)
        self._owns_executor = not isinstance(workers, Executor)
        if view_cache_size < 1:
            raise FeatureError("view_cache_size must be >= 1")
        self.view_cache_size = int(view_cache_size)
        self.arena, self._owns_arena = as_arena(store)
        self._store_dirty = self.arena is not None
        self._store_meta_written = False
        # Every session counter lives in this registry; ``stats`` is
        # the legacy attribute-shaped view over its ``session.*`` slice.
        self.metrics = MetricsRegistry()
        self.stats = SessionStats(registry=self.metrics)
        self._anchors: Set[LinkPair] = set(known_anchors or ())
        self._views: Dict[int, _CandidateView] = {}
        # One lock for the cross-structure shared state: the stats
        # counters and the view cache.  Never held around heavy work.
        self._state_lock = threading.Lock()
        # Evolution events applied to the pair through this session, in
        # order — snapshotted so checkpoint resume can replay them.
        # compact() truncates the log into a *snapshot epoch*: the pair
        # is deep-copied, the log restarts empty, and state dicts carry
        # (epoch, snapshot) so resume replays from the snapshot instead
        # of from the session's construction-time pair.
        self._evolution_log: List[NetworkDelta] = []
        self._applied_evolution = 0
        self._compaction_epoch = 0
        self._pair_snapshot: Optional[AlignedPair] = None
        # Monotonic delta epoch + bounded log of per-event dirty user
        # rows/cols; lets streamed consumers rescore only dirty blocks.
        self._delta_epoch = 0
        self._delta_log: List[
            Tuple[int, Optional[np.ndarray], Optional[np.ndarray]]
        ] = []

        needs_words = any("P7" in name for name in self.family.feature_names)
        self._include_word_matrices = include_words or needs_words
        bag = build_matrix_bag(
            pair,
            known_anchors=self._anchors,
            include_words=self._include_word_matrices,
        )
        self._bag_fingerprints = bag_fingerprints(
            pair, include_words=self._include_word_matrices
        )
        # Shared-vocabulary caches, synchronized with the *engine's*
        # attribute-matrix columns: value -> column maps let the event
        # fast path patch incidence cells without re-exporting, and the
        # cached lists detect column reordering (a fallback condition).
        self._shared_vocab: Dict[str, List] = {}
        self._shared_vocab_index: Dict[str, Dict] = {}
        self._refresh_vocab_cache()
        self._engine = CountingEngine(bag, arena=self.arena)
        self._structures: List[_Structure] = [
            _Structure(
                name=name,
                expr=expr,
                anchor_dependent=ANCHOR_MATRIX in expr.leaves(),
                delta_capable=supports_delta(expr, ANCHOR_MATRIX),
            )
            for name, expr in zip(self.family.feature_names, self.family.exprs)
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def engine(self) -> CountingEngine:
        """The underlying memoizing counting engine."""
        return self._engine

    @property
    def workers(self) -> int:
        """Parallelism degree of the session's executor."""
        return self.executor.workers

    @property
    def known_anchors(self) -> Set[LinkPair]:
        """The current known anchor set (a copy)."""
        return set(self._anchors)

    @property
    def feature_names(self) -> List[str]:
        """Ordered feature names (structures, then optional bias)."""
        names = [structure.name for structure in self._structures]
        if self.include_bias:
            names.append("bias")
        return names

    @property
    def n_features(self) -> int:
        """Feature dimensionality d."""
        return len(self._structures) + (1 if self.include_bias else 0)

    @property
    def anchor_feature_columns(self) -> List[int]:
        """Column indices whose features depend on the anchor matrix."""
        return [
            i
            for i, structure in enumerate(self._structures)
            if structure.anchor_dependent
        ]

    @property
    def static_feature_columns(self) -> List[int]:
        """Column indices that never change when anchors change."""
        columns = [
            i
            for i, structure in enumerate(self._structures)
            if not structure.anchor_dependent
        ]
        if self.include_bias:
            columns.append(len(self._structures))
        return columns

    @property
    def evolution_log(self) -> List[NetworkDelta]:
        """Evolution events applied through this session (a copy)."""
        return list(self._evolution_log)

    # ------------------------------------------------------------------
    # Dirty-region tracking (consumed by streamed score caches)
    # ------------------------------------------------------------------
    @property
    def delta_epoch(self) -> int:
        """Monotonic counter bumped by every feature-changing update."""
        return self._delta_epoch

    def _record_dirty(
        self,
        rows: Optional[np.ndarray] = None,
        cols: Optional[np.ndarray] = None,
        everything: bool = False,
    ) -> None:
        """Log one update's dirty left rows / right cols (or *all*)."""
        with self._state_lock:
            self._delta_epoch += 1
            if everything:
                entry = (self._delta_epoch, None, None)
            else:
                entry = (
                    self._delta_epoch,
                    np.unique(np.asarray(rows, dtype=np.int64)),
                    np.unique(np.asarray(cols, dtype=np.int64)),
                )
            self._delta_log.append(entry)
            del self._delta_log[:-_DELTA_LOG_LIMIT]

    def dirty_since(
        self, epoch: int
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Union of dirty (left rows, right cols) since a past epoch.

        Returns ``None`` when the answer is unknown or unbounded — the
        marker fell off the bounded log, a full invalidation happened,
        or the epoch is not one this session issued — in which case the
        caller must treat everything as dirty.  Feature rows outside the
        returned index sets are bit-identical to their values at
        ``epoch``, so consumers may reuse anything derived from them.
        """
        with self._state_lock:
            if epoch == self._delta_epoch:
                empty = np.zeros(0, dtype=np.int64)
                return empty, empty
            if epoch > self._delta_epoch:
                return None
            relevant = [
                entry for entry in self._delta_log if entry[0] > epoch
            ]
            if len(relevant) != self._delta_epoch - epoch:
                return None  # the log was trimmed past the marker
            if any(entry[1] is None for entry in relevant):
                return None  # a full invalidation happened in between
            rows = np.unique(
                np.concatenate([entry[1] for entry in relevant])
            )
            cols = np.unique(
                np.concatenate([entry[2] for entry in relevant])
            )
            return rows, cols

    # ------------------------------------------------------------------
    # Count / proximity state
    # ------------------------------------------------------------------
    def _publish_counts(
        self, structure: _Structure, counts: sparse.csr_matrix
    ) -> sparse.csr_matrix:
        """Spill folded counts to the arena (if any) and serve the mmap.

        A matrix already served from the arena (the counting engine
        spills its memoized products, including top-level expressions)
        passes through untouched — re-spilling it would just duplicate
        files and page traffic.
        """
        if self.arena is None or getattr(counts, "_arena_slot", None):
            return counts
        slot = counts_slot(structure.name)
        self.arena.put(slot, counts)
        return self.arena.get(slot)

    def _release_store_pages(self) -> None:
        """Drop resident pages of mapped matrices between work units.

        Only meaningful in store mode: after a unit of heavy work (one
        structure's evaluation, one anchor round) the pages it touched
        are advised away, so the session's peak RSS tracks the columns
        in flight, not the sum of every matrix read so far.
        """
        if self.arena is not None:
            self.arena.release_pages()

    def _ensure_counts(self, structure: _Structure) -> None:
        with structure.lock:
            if structure.counts is None:
                counts = self._engine.evaluate(structure.expr)
                structure.pending.clear()
                structure.row_sums = np.asarray(counts.sum(axis=1)).ravel()
                structure.col_sums = np.asarray(counts.sum(axis=0)).ravel()
                structure.proximity = None
                structure.counts = self._publish_counts(structure, counts)
                with self._state_lock:
                    self.stats.full_recounts += 1
                # Evaluation touched shared intermediates; let the
                # kernel reclaim those pages before the next structure.
                self._release_store_pages()
            elif structure.pending:
                counts = structure.counts
                for change in structure.pending:
                    counts = apply_delta(counts, change)
                # Canonicalize before publishing so concurrent batched
                # lookups never race an in-place index sort.
                counts.sort_indices()
                structure.counts = self._publish_counts(structure, counts)
                structure.pending.clear()

    def _proximity(self, structure: _Structure) -> ProximityMatrix:
        self._ensure_counts(structure)
        if structure.proximity is None:
            structure.proximity = ProximityMatrix(structure.counts)
        return structure.proximity

    def proximity_matrices(self) -> List[ProximityMatrix]:
        """Proximity matrices for every structure, in family order."""
        return [self._proximity(structure) for structure in self._structures]

    # ------------------------------------------------------------------
    # Anchor updates
    # ------------------------------------------------------------------
    def add_anchors(self, new_anchors: Iterable[LinkPair]) -> bool:
        """Grow the known anchor set; returns whether anything changed."""
        return self.set_anchors(self._anchors | set(new_anchors))

    @contextmanager
    def _phase(self, name: str, **attributes):
        """Time one session phase: a tracer span (no-op when tracing
        is disabled) plus a ``phase.<name>`` histogram in the session
        registry.  Used only at per-round / per-event granularity."""
        start = time.monotonic()
        with get_tracer().span(name, **attributes) as span:
            yield span
        self.metrics.histogram("phase." + name).observe(
            time.monotonic() - start
        )

    def metrics_snapshot(self) -> Dict:
        """The unified registry snapshot: session *and* executor.

        Merges this session's ``session.*`` counters and ``phase.*``
        histograms with the executor's registry when it has one (the
        RPC executor's ``rpc.*`` counters), so one dict shows
        everything about how the work was produced — the surface
        behind ``repro.cli engine diagnose`` and
        :class:`~repro.eval.experiment.RuntimeMetadata.metrics`.
        """
        snapshot = self.metrics.snapshot()
        registry = getattr(self.executor, "registry", None)
        if registry is not None:
            for kind, values in registry.snapshot().items():
                snapshot.setdefault(kind, {}).update(values)
        return snapshot

    def set_anchors(self, known_anchors: Iterable[LinkPair]) -> bool:
        """Replace the known anchor set; returns whether anything changed.

        Chooses the cheapest correct path per structure: when the
        symmetric difference is smaller than the new set (the active
        loop's few-anchors-per-round regime) anchor-dependent counts,
        sums and cached view values receive an exact sparse delta;
        otherwise (e.g. switching experiment folds) they are dropped for
        lazy re-evaluation.  Attribute-only structures are untouched in
        both cases.
        """
        with self._phase("session.set_anchors") as span:
            changed = self._set_anchors(known_anchors)
            span.annotate(changed=changed)
            return changed

    def _set_anchors(self, known_anchors: Iterable[LinkPair]) -> bool:
        new_set = set(known_anchors)
        added = new_set - self._anchors
        removed = self._anchors - new_set
        if not added and not removed:
            return False
        # Build (and thereby validate) the new anchor matrix before any
        # state changes, so a bad anchor leaves the session untouched.
        new_anchor_matrix = self.pair.anchor_matrix(new_set)
        self.stats.anchor_updates += 1
        self._store_dirty = self.arena is not None
        use_delta = (
            self.incremental and len(added) + len(removed) < len(new_set)
        )
        self._anchors = new_set

        evaluator: Optional[DeltaEvaluator] = None
        if use_delta:
            delta = self.pair.anchor_matrix(added)
            if removed:
                delta = (delta - self.pair.anchor_matrix(removed)).tocsr()
            evaluator = DeltaEvaluator(self._engine, ANCHOR_MATRIX, delta)

        delta_structures: List[_Structure] = []
        invalidated_visible = False
        fallbacks: List[str] = []
        for structure in self._structures:
            if not structure.anchor_dependent:
                continue
            if (
                evaluator is not None
                and structure.delta_capable
                and structure.counts is not None
            ):
                delta_structures.append(structure)
            else:
                # A never-materialized structure has nothing cached
                # downstream; dropping it is invisible to consumers.
                if structure.counts is not None:
                    invalidated_visible = True
                    fallbacks.append(structure.name)
                self._invalidate_structure(structure)
        self._log_fallbacks("anchor update", fallbacks)
        # The per-structure delta expressions are independent (the
        # shared A-free sub-products are served by the memoizing
        # engine), so their evaluation — the expensive spgemm work —
        # fans out across the executor.  It must complete (the map is
        # eager) before the engine sees the new A: expressions that
        # repeat the anchor leaf telescope through *old* values of
        # anchored sub-chains.  Applying the changes to session state
        # stays serial, in family order, which keeps the threaded path
        # byte-identical to the serial one.
        changes = (
            self.executor.map(
                lambda structure: evaluator.evaluate(structure.expr),
                delta_structures,
            )
            if delta_structures
            else []
        )
        self._engine.update_matrix(ANCHOR_MATRIX, new_anchor_matrix)
        self._apply_structure_changes(
            delta_structures, changes, invalidated_visible
        )
        return True

    def _log_fallbacks(self, cause: str, names: List[str]) -> None:
        """Count and log one update's full-recount fallbacks.

        An update that drops a *materialized* structure instead of
        delta-patching it silently converts an O(delta) refresh into a
        later O(nnz) recount; the counter (surfaced in
        :meth:`SessionStats.summary`, the ``engine`` CLI diagnostics
        and experiment runtime metadata) and the log line make that
        slow path observable.
        """
        if not names:
            return
        with self._state_lock:
            self.stats.fallback_invalidations += len(names)
        logger.info(
            "%s fell back to full recount for %d structure(s): %s",
            cause,
            len(names),
            ", ".join(names),
        )

    def _invalidate_structure(self, structure: _Structure) -> None:
        """Drop one structure's cached counts, views and store slots.

        The partial-arena GC lives here: a structure invalidated by an
        anchor switch or a network delta also drops its dedicated fold
        slot and sum vectors from the arena (the counting engine already
        GCs its own memoized products on ``update_matrices``), so stale
        entries no longer accumulate until session close.
        """
        with structure.lock:
            structure.counts = None
            structure.pending.clear()
            structure.row_sums = None
            structure.col_sums = None
            structure.proximity = None
        if self.arena is not None:
            for slot in (
                counts_slot(structure.name),
                row_sums_slot(structure.name),
                col_sums_slot(structure.name),
            ):
                self.arena.drop(slot)
        with self._state_lock:
            for view in self._views.values():
                view.values.pop(structure.name, None)
                view.dirty.pop(structure.name, None)

    def _apply_structure_delta(
        self, structure: _Structure, change: sparse.csr_matrix
    ) -> None:
        """Exact sparse update of one structure's cached state."""
        if change.nnz == 0:
            return
        structure.pending.append(change)
        coo = change.tocoo()
        row_sums = structure.row_sums.copy()
        np.add.at(row_sums, coo.row, coo.data)
        structure.row_sums = row_sums
        col_sums = structure.col_sums.copy()
        np.add.at(col_sums, coo.col, coo.data)
        structure.col_sums = col_sums
        structure.proximity = None  # rebuilt lazily from updated counts
        change_keys = (
            coo.row.astype(np.int64) * change.shape[1] + coo.col
        )
        changed_rows = np.unique(coo.row.astype(np.int64))
        changed_cols = np.unique(coo.col.astype(np.int64))
        with self._state_lock:
            for view in self._views.values():
                values = view.values.get(structure.name)
                if values is None:
                    continue
                # Patch cached count values at the delta's (few) entries:
                # inverted lookup — search the view's sorted keys for
                # each delta key, honoring duplicate candidate pairs.
                starts = np.searchsorted(view.keys_sorted, change_keys, "left")
                ends = np.searchsorted(view.keys_sorted, change_keys, "right")
                for start, end, amount in zip(starts, ends, coo.data):
                    if start < end:
                        values[view.key_order[start:end]] += amount
                # Scores change wherever a row or column sum changed.
                affected = np.concatenate(
                    [
                        view.positions_of_rows(changed_rows),
                        view.positions_of_cols(changed_cols),
                    ]
                )
                if affected.size:
                    view.dirty.setdefault(structure.name, []).append(affected)
            self.stats.delta_updates += 1

    # ------------------------------------------------------------------
    # Network evolution
    # ------------------------------------------------------------------
    def apply_network_delta(
        self,
        delta: Optional[NetworkDelta] = None,
        side: Optional[str] = None,
        added_nodes=None,
        added_edges=(),
        updated_attributes=(),
        added_anchors=(),
        removed_nodes=None,
        removed_edges=(),
        **unknown,
    ) -> bool:
        """Mutate the pair in place and fold exact count deltas.

        Accepts either a prebuilt
        :class:`~repro.networks.aligned.NetworkDelta` or the loose
        keyword form (``side=``, ``added_nodes=``, ``added_edges=``,
        ``updated_attributes=``, ``added_anchors=``, ``removed_nodes=``,
        ``removed_edges=``) which is normalized through
        :meth:`NetworkDelta.build`.

        The update is **event-sourced**: the applied mutation record
        (inserted/removed edge positions, patched attribute cells, new
        slots) is turned directly into per-leaf sparse deltas — no
        matrix re-export, no diffing — and folded through the
        generalized delta algebra into exactly the dirty structures.
        Events whose shape the fast path does not cover (a custom
        schema, a shared-vocabulary reordering) fall back to the
        re-export-and-diff path, which remains exact.  New nodes append
        to the end of the index order and removed nodes leave
        *tombstoned* slots behind, so existing count entries, candidate
        views and extracted feature rows stay position-stable; only
        dirty feature columns/rows need a refresh
        (:meth:`refresh_features` / :meth:`dirty_since`).  Results are
        byte-identical to a full recount on the mutated network.

        Returns whether any matrix actually changed.  With
        ``incremental=False`` (the benchmark baseline) dirty structures
        are dropped for lazy full recounting instead — bit-identical,
        slower.
        """
        if unknown:
            raise FeatureError(
                "apply_network_delta got unknown keyword argument(s) "
                f"{sorted(unknown)}; supported: side=, added_nodes=, "
                "added_edges=, updated_attributes=, added_anchors=, "
                "removed_nodes=, removed_edges="
            )
        loose = (
            side is not None
            or added_nodes
            or added_edges
            or updated_attributes
            or added_anchors
            or removed_nodes
            or removed_edges
        )
        if delta is None:
            if side is None:
                raise FeatureError(
                    "apply_network_delta needs a NetworkDelta or side="
                )
            delta = NetworkDelta.build(
                side,
                added_nodes=added_nodes,
                added_edges=added_edges,
                updated_attributes=updated_attributes,
                added_anchors=added_anchors,
                removed_nodes=removed_nodes,
                removed_edges=removed_edges,
            )
        elif loose:
            raise FeatureError(
                "pass either a delta or the loose keyword form, not both"
            )
        with self._phase("session.apply_network_delta", side=delta.side) as span:
            # A removed user may carry a *known* anchor; its matrix cell
            # must be captured before the tombstone erases the position
            # lookup.
            dead_anchors, anchor_cells = self._known_anchor_removals(delta)
            application = self.pair.apply_delta(delta)  # validates first
            self._evolution_log.append(delta)
            self._applied_evolution += 1
            if dead_anchors:
                self._anchors.difference_update(dead_anchors)
            if (
                application.removed_edges
                or application.removed_nodes
                or application.removed_attribute_cells
                or dead_anchors
            ):
                with self._state_lock:
                    self.stats.removal_updates += 1
            changed = self._fold_application(application, anchor_cells)
            if (
                self.compact_every is not None
                and len(self._evolution_log) >= self.compact_every
            ):
                changed = self.compact() or changed
            span.annotate(changed=changed)
            return changed

    def _known_anchor_removals(
        self, delta: NetworkDelta
    ) -> Tuple[List[LinkPair], List[Tuple[int, int]]]:
        """Known anchors that a delta's user removals take down.

        Returns the dead anchor pairs plus their ``(row, col)`` cells in
        the known-anchor matrix, resolved *before* the pair mutates —
        tombstoning removes the user from the position index.
        """
        if not delta.removed_nodes or not self._anchors:
            return [], []
        user_type = self.pair.anchor_node_type
        removed_users = {
            node_id
            for node_type, ids in delta.removed_nodes
            if node_type == user_type
            for node_id in ids
        }
        if not removed_users:
            return [], []
        endpoint = 0 if delta.side == "left" else 1
        dead: List[LinkPair] = []
        cells: List[Tuple[int, int]] = []
        for known in self._anchors:
            if known[endpoint] not in removed_users:
                continue
            dead.append(known)
            cells.append(
                (
                    self.pair.left.node_position(user_type, known[0]),
                    self.pair.right.node_position(user_type, known[1]),
                )
            )
        return dead, cells

    def _fold_application(
        self,
        application: DeltaApplication,
        anchor_cells: Sequence[Tuple[int, int]],
    ) -> bool:
        """Fold one applied event: fast path first, diff fallback second."""
        event = self._event_leaf_deltas(application, anchor_cells)
        if event is None:
            # The anchor-matrix fingerprint is slot counts only; a
            # content-only anchor removal needs an explicit stale mark.
            force = (
                frozenset((ANCHOR_MATRIX,)) if anchor_cells else frozenset()
            )
            return self._fold_network_change(force_stale=force)
        deltas, shapes, vocab_commit = event
        changed = self._fold_event(deltas, shapes, vocab_commit)
        if self.strict_deltas:
            self._verify_event_fold()
        return changed

    def _event_leaf_deltas(
        self,
        application: DeltaApplication,
        anchor_cells: Sequence[Tuple[int, int]],
    ) -> Optional[Tuple[Dict, Dict, Dict]]:
        """Per-leaf sparse deltas built straight from the event record.

        Returns ``(deltas, shapes, vocab_commit)`` — nonzero leaf
        deltas, the post-event shape of every bag matrix, and the
        shared-vocabulary cache updates to commit after the fold — or
        ``None`` when the event has a shape the fast path does not
        cover (an unknown relation/attribute/node type, or a
        shared-vocabulary reordering), telling the caller to fall back
        to the fingerprint-diff path.
        """
        pair = self.pair
        user_type = pair.anchor_node_type
        relation_names = _RELATION_NAMES[application.side]
        attribute_names = _ATTRIBUTE_NAMES[application.side]
        known_types = (user_type, POST)
        for node_type, _count in application.added_slots:
            if node_type not in known_types:
                return None
        for node_type, _node, _slot in application.removed_nodes:
            if node_type not in known_types:
                return None
        # Shared-vocabulary growth: a pure append extends the cached
        # value -> column map; anything that moves an existing column
        # reorders attribute matrices and must take the diff path.
        vocab_commit: Dict[str, List] = {}
        indexes: Dict[str, Dict] = {}
        for attribute, _value in application.new_vocabulary:
            if attribute in vocab_commit:
                continue
            if attribute == WORD and not self._include_word_matrices:
                continue  # word matrices are not exported; invisible
            if attribute not in attribute_names:
                return None
            cached = self._shared_vocab.get(attribute)
            if cached is None:
                return None
            shared = pair.shared_vocabulary(attribute)
            if shared[: len(cached)] != cached:
                return None  # column reordering
            vocab_commit[attribute] = shared
            indexes[attribute] = {
                value: column for column, value in enumerate(shared)
            }

        entries: Dict[str, Tuple[List[int], List[int], List[float]]] = {}

        def add(name: str, row: int, col: int, value: float) -> None:
            rows, cols, values = entries.setdefault(name, ([], [], []))
            rows.append(row)
            cols.append(col)
            values.append(value)

        for relation, source, target in application.inserted_edges:
            name = relation_names.get(relation)
            if name is None:
                return None
            add(name, source, target, 1.0)
        for relation, source, target in application.removed_edges:
            name = relation_names.get(relation)
            if name is None:
                return None
            add(name, source, target, -1.0)
        for sign, cells in (
            (1.0, application.new_attribute_cells),
            (-1.0, application.removed_attribute_cells),
        ):
            for attribute, slot, value in cells:
                if attribute == WORD and not self._include_word_matrices:
                    continue
                name = attribute_names.get(attribute)
                if name is None:
                    return None
                index = indexes.get(attribute)
                if index is None:
                    index = self._shared_vocab_index.get(attribute)
                if index is None:
                    return None
                column = index.get(value)
                if column is None:
                    return None  # cache out of sync: stay exact
                add(name, slot, column, sign)
        for row, col in anchor_cells:
            add(ANCHOR_MATRIX, row, col, -1.0)

        shapes = self._bag_shapes(vocab_commit)
        deltas: Dict[str, sparse.csr_matrix] = {}
        for name, (rows, cols, values) in entries.items():
            leaf_delta = entries_to_csr(rows, cols, values, shapes[name])
            if leaf_delta.nnz:
                deltas[name] = leaf_delta
        return deltas, shapes, vocab_commit

    def _bag_shapes(
        self, vocab_commit: Optional[Dict[str, List]] = None
    ) -> Dict[str, Tuple[int, int]]:
        """Current (post-event) shape of every exported bag matrix."""
        pair = self.pair
        user_type = pair.anchor_node_type
        n_left = pair.left.slot_count(user_type)
        n_right = pair.right.slot_count(user_type)
        posts_left = pair.left.slot_count(POST)
        posts_right = pair.right.slot_count(POST)
        shapes: Dict[str, Tuple[int, int]] = {
            FOLLOW_LEFT: (n_left, n_left),
            FOLLOW_RIGHT: (n_right, n_right),
            WRITE_LEFT: (n_left, posts_left),
            WRITE_RIGHT: (n_right, posts_right),
            ANCHOR_MATRIX: (n_left, n_right),
        }
        for attribute, (left_name, right_name) in _ATTRIBUTE_PAIRS.items():
            if attribute == WORD and not self._include_word_matrices:
                continue
            if vocab_commit and attribute in vocab_commit:
                n_vocab = len(vocab_commit[attribute])
            else:
                n_vocab = len(self._shared_vocab[attribute])
            shapes[left_name] = (posts_left, n_vocab)
            shapes[right_name] = (posts_right, n_vocab)
        return shapes

    def _fold_event(
        self,
        deltas: Dict[str, sparse.csr_matrix],
        shapes: Dict[str, Tuple[int, int]],
        vocab_commit: Dict[str, List],
    ) -> bool:
        """Fold event-sourced leaf deltas into the engine — no diffing."""
        changed: Dict[str, sparse.csr_matrix] = {}
        for name, shape in shapes.items():
            old = self._engine.matrix(name)
            leaf_delta = deltas.get(name)
            if leaf_delta is None and old.shape == shape:
                continue  # untouched leaf: keep the engine's matrix as is
            base = old if old.shape == shape else pad_csr(old, shape)
            changed[name] = (
                apply_delta(base, leaf_delta)
                if leaf_delta is not None
                else base
            )
        prints = bag_fingerprints(
            self.pair, include_words=self._include_word_matrices
        )
        folded = self._fold_deltas(changed, deltas, shapes, prints)
        for attribute, values in vocab_commit.items():
            self._shared_vocab[attribute] = values
            self._shared_vocab_index[attribute] = {
                value: column for column, value in enumerate(values)
            }
        return folded

    def _verify_event_fold(self) -> None:
        """``strict_deltas``: prove the folded leaves match a fresh export."""
        bag = build_matrix_bag(
            self.pair,
            known_anchors=self._anchors,
            include_words=self._include_word_matrices,
        )
        for name, expected in bag.items():
            expected = expected.tocsr()
            actual = self._engine.matrix(name)
            if expected.shape != actual.shape:
                raise FeatureError(
                    f"strict delta verification failed: {name!r} has shape "
                    f"{actual.shape}, a fresh export has {expected.shape}"
                )
            difference = (expected - actual).tocsr()
            difference.eliminate_zeros()
            if difference.nnz:
                raise FeatureError(
                    f"strict delta verification failed: {name!r} differs "
                    f"from a fresh export at {difference.nnz} entries"
                )

    def _refresh_vocab_cache(self) -> None:
        """Rebuild the vocab caches from the pair (engine-export time)."""
        attributes = [TIMESTAMP, LOCATION]
        if self._include_word_matrices:
            attributes.append(WORD)
        for attribute in attributes:
            values = self.pair.shared_vocabulary(attribute)
            self._shared_vocab[attribute] = values
            self._shared_vocab_index[attribute] = {
                value: column for column, value in enumerate(values)
            }

    def _fold_network_change(
        self, force_stale: frozenset = frozenset()
    ) -> bool:
        """Diff the pair's matrices against the engine and fold deltas.

        The exact fallback for events the fast path does not cover: the
        fingerprint-stale matrices are re-exported (O(nnz)), diffed
        against the engine's (padded) old matrices, and the diffs fold
        through the same delta algebra.
        """
        prints = bag_fingerprints(
            self.pair, include_words=self._include_word_matrices
        )
        stale = {
            name
            for name, fingerprint in prints.items()
            if self._bag_fingerprints.get(name) != fingerprint
        } | set(force_stale)
        if not stale:
            return False
        # Re-export only the fingerprint-stale matrices; the rest are
        # provably identical to what the engine already holds.  The new
        # fingerprints are committed only once the fold completes, so
        # an exception mid-fold leaves them stale and a retry re-diffs
        # instead of silently no-opping.
        new_bag = build_matrix_bag(
            self.pair,
            known_anchors=self._anchors,
            include_words=self._include_word_matrices,
            only=stale,
        )
        changed: Dict[str, sparse.csr_matrix] = {}
        deltas: Dict[str, sparse.csr_matrix] = {}
        shapes = {name: matrix.shape for name, matrix in new_bag.items()}
        for name, new in new_bag.items():
            if name not in stale:
                # The partner side of an attribute pair rode along in the
                # export; its fingerprint proves it unchanged — skip the
                # O(nnz) diff.
                continue
            new = new.tocsr()
            old = self._engine.matrix(name)
            grew = old.shape != new.shape
            base = pad_csr(old, new.shape) if grew else old
            diff = (new - base).tocsr()
            diff.eliminate_zeros()
            if not grew and diff.nnz == 0:
                continue
            changed[name] = new
            if diff.nnz:
                deltas[name] = diff
        folded = self._fold_deltas(changed, deltas, shapes, prints)
        self._refresh_vocab_cache()
        return folded

    def _fold_deltas(
        self,
        changed: Dict[str, sparse.csr_matrix],
        deltas: Dict[str, sparse.csr_matrix],
        new_shapes: Dict[str, Tuple[int, int]],
        prints: Dict[str, Tuple[int, ...]],
    ) -> bool:
        """Shared fold tail: delta-evaluate, update engine, patch state."""
        if not changed:
            # Mutation epochs can move with no matrix change (a duplicate
            # edge add, a repeated attachment): commit the fingerprints
            # anyway so the next event does not re-diff this one.
            self._bag_fingerprints = prints
            return False
        self.stats.network_updates += 1
        self._store_dirty = self.arena is not None
        # Network shape/position facts (n_right, user-position maps)
        # live in the once-written session meta; a network mutation can
        # invalidate them (appended users, grown count columns), so the
        # next flush must republish meta or arena-side workers would
        # compute entry keys against a stale n_right.
        self._store_meta_written = False
        counts_shape = (
            self.pair.left.slot_count(self.pair.anchor_node_type),
            self.pair.right.slot_count(self.pair.anchor_node_type),
        )
        n_right_grew = (
            counts_shape[1] != self._engine.matrix(ANCHOR_MATRIX).shape[1]
        )

        delta_names = frozenset(deltas)
        evaluator: Optional[DeltaEvaluator] = None
        if deltas and self.incremental:
            evaluator = DeltaEvaluator(self._engine, deltas, shapes=new_shapes)

        delta_structures: List[_Structure] = []
        invalidated: List[_Structure] = []
        for structure in self._structures:
            if not structure.expr.depends_on(delta_names):
                continue  # pad-only growth; counts provably unchanged
            if (
                evaluator is not None
                and structure.delta_capable
                and structure.counts is not None
            ):
                delta_structures.append(structure)
            else:
                invalidated.append(structure)
        # Delta expressions read the engine's *old* cached values, so
        # they are evaluated (eagerly, fanned across the executor)
        # before the engine sees the new matrices.
        changes = (
            self.executor.map(
                lambda structure: evaluator.evaluate(structure.expr),
                delta_structures,
            )
            if delta_structures
            else []
        )
        # The telescoping produced the exact change of every dirty
        # sub-expression; register them as pending seeds (no O(nnz)
        # folds — lookups are served component-wise) and preserve the
        # seeded keys through the matrix update, so the next event (or
        # extraction) never recounts the expensive products a naive
        # invalidation would drop.
        preserve = []
        if evaluator is not None:
            for expr, change in evaluator.updated_changes():
                if self._engine.seed_change(expr, change):
                    preserve.append(expr.key())
        self._engine.update_matrices(changed, preserve=preserve)
        if n_right_grew:
            self._rebind_view_keys()
        for structure in self._structures:
            self._pad_structure(structure, counts_shape)
        fallbacks = [
            structure.name
            for structure in invalidated
            if structure.counts is not None
        ]
        invalidated_visible = bool(fallbacks)
        for structure in invalidated:
            self._invalidate_structure(structure)
        self._log_fallbacks("network delta", fallbacks)
        self._apply_structure_changes(
            delta_structures, changes, invalidated_visible
        )
        self._bag_fingerprints = prints
        return True

    def compact(self) -> bool:
        """Rewrite live slots without tombstones and truncate the log.

        Long-drift maintenance: a session that keeps removing nodes
        accumulates tombstoned (all-zero) slots in every matrix and an
        ever-growing evolution log.  Compaction

        * drops tombstoned slots from both networks (live nodes keep
          their relative order),
        * slices every materialized count matrix and its sums down to
          the live rows/columns (exact — dead slots hold only zeros),
        * re-exports the engine's leaf matrices at the compact shapes,
        * truncates the evolution log into a new **snapshot epoch**:
          the compacted pair is deep-copied and later state dicts carry
          ``(epoch, snapshot)`` so checkpoint resume replays post-
          compaction events from the snapshot, and
        * vacuums the matrix arena (when one is attached), dropping
          orphaned spill files so the on-disk footprint shrinks too.

        Candidate views and dirty-region logs are cleared — positions
        shift, so everything derived from the old coordinates is
        conservatively marked dirty.  Returns whether anything was
        rewritten (``False`` for a tombstone-free session with an empty
        evolution log).
        """
        user_type = self.pair.anchor_node_type
        has_tombstones = any(
            network.tombstone_count(node_type)
            for network in (self.pair.left, self.pair.right)
            for node_type in network.schema.node_types
        )
        if not has_tombstones and not self._evolution_log:
            return False
        # Fold pending deltas first: the slice below must see final
        # counts, and only materialized structures have state to keep.
        for structure in self._structures:
            if structure.counts is not None:
                self._ensure_counts(structure)
        kept = self.pair.compact()
        left_kept = kept["left"].get(user_type)
        right_kept = kept["right"].get(user_type)
        if left_kept is not None or right_kept is not None:
            for structure in self._structures:
                with structure.lock:
                    if structure.counts is None:
                        continue
                    counts = structure.counts
                    if left_kept is not None:
                        counts = counts[left_kept]
                        structure.row_sums = np.array(
                            structure.row_sums[left_kept]
                        )
                    if right_kept is not None:
                        counts = counts[:, right_kept]
                        structure.col_sums = np.array(
                            structure.col_sums[right_kept]
                        )
                    counts = counts.tocsr()
                    counts.sort_indices()
                    structure.counts = self._publish_counts(structure, counts)
                    structure.proximity = None
        # Every leaf shifted positions: rebuild the whole bag and drop
        # the engine's memoized products (their indices are stale).
        self._engine.update_matrices(
            build_matrix_bag(
                self.pair,
                known_anchors=self._anchors,
                include_words=self._include_word_matrices,
            )
        )
        self._bag_fingerprints = bag_fingerprints(
            self.pair, include_words=self._include_word_matrices
        )
        self._refresh_vocab_cache()
        with self._state_lock:
            self._views.clear()
            self._delta_log.clear()
            self.stats.compactions += 1
        self._record_dirty(everything=True)
        self._compaction_epoch += 1
        self._pair_snapshot = copy.deepcopy(self.pair)
        self._evolution_log = []
        self._applied_evolution = 0
        if self.arena is not None:
            self._store_dirty = True
            self._store_meta_written = False  # position maps shifted
            self.arena.vacuum()
        self._release_store_pages()
        return True

    @property
    def compaction_epoch(self) -> int:
        """How many times :meth:`compact` has rewritten this session."""
        return self._compaction_epoch

    def _apply_structure_changes(
        self,
        delta_structures: List[_Structure],
        changes: List[sparse.csr_matrix],
        invalidated_visible: bool,
    ) -> None:
        """Fold evaluated deltas into session state and log the dirt.

        Shared tail of :meth:`set_anchors` and
        :meth:`_fold_network_change`: applies each change serially in
        family order, collects the touched rows/columns, and records
        one dirty-region event (or an everything-dirty marker when a
        structure invalidation made the region unbounded).
        """
        if delta_structures:
            dirty_rows: List[np.ndarray] = []
            dirty_cols: List[np.ndarray] = []
            for structure, change in zip(delta_structures, changes):
                self._apply_structure_delta(structure, change)
                coo = change.tocoo()
                dirty_rows.append(coo.row.astype(np.int64))
                dirty_cols.append(coo.col.astype(np.int64))
            if invalidated_visible:
                self._record_dirty(everything=True)
            else:
                self._record_dirty(
                    rows=np.concatenate(dirty_rows) if dirty_rows else (),
                    cols=np.concatenate(dirty_cols) if dirty_cols else (),
                )
        elif invalidated_visible:
            self._record_dirty(everything=True)
        self._release_store_pages()

    def _pad_structure(
        self, structure: _Structure, shape: Tuple[int, int]
    ) -> None:
        """Grow one structure's cached state to a larger |U1| x |U2|."""
        with structure.lock:
            if structure.counts is None or structure.counts.shape == shape:
                return
            structure.counts = pad_csr(structure.counts, shape)
            structure.pending = [
                pad_csr(change, shape) for change in structure.pending
            ]
            structure.row_sums = np.concatenate(
                [
                    structure.row_sums,
                    np.zeros(
                        shape[0] - structure.row_sums.shape[0],
                        dtype=structure.row_sums.dtype,
                    ),
                ]
            )
            structure.col_sums = np.concatenate(
                [
                    structure.col_sums,
                    np.zeros(
                        shape[1] - structure.col_sums.shape[0],
                        dtype=structure.col_sums.dtype,
                    ),
                ]
            )
            structure.proximity = None

    def _rebind_view_keys(self) -> None:
        """Recompute cached views' linearized keys after |U2| grew.

        Query keys are row-major ``i * |U2| + j``, so a new right-side
        user count changes every key — but not the per-position cached
        *values*, which stay valid and keep their delta patches.
        """
        n_right = self.pair.right.slot_count(self.pair.anchor_node_type)
        with self._state_lock:
            for view in self._views.values():
                view.query_keys = (
                    view.left_indices.astype(np.int64) * n_right
                    + view.right_indices
                )
                view.key_order = np.argsort(view.query_keys, kind="stable")
                view.keys_sorted = view.query_keys[view.key_order]

    # ------------------------------------------------------------------
    # Candidate views
    # ------------------------------------------------------------------
    def _view_for(self, pairs: Sequence[LinkPair]) -> _CandidateView:
        """Resolve (and cache) the index arrays of a candidate list.

        Views are keyed by list identity: the active loop refreshes the
        same ``task.pairs`` object every round, so the pair-to-index
        resolution and the per-structure count values are computed once
        and then delta-patched.
        """
        with self._state_lock:
            view = self._views.get(id(pairs))
            if view is not None and view.pairs is pairs:
                # LRU touch: keep hot views (the active loop's task list)
                # safe from eviction by bursts of streamed block extracts.
                self._views.pop(id(pairs))
                self._views[id(pairs)] = view
                return view
        left_indices, right_indices = self.pair.pairs_to_indices(pairs)
        n_right = self.pair.right.slot_count(self.pair.anchor_node_type)
        query_keys = left_indices.astype(np.int64) * n_right + right_indices
        key_order = np.argsort(query_keys, kind="stable")
        left_order = np.argsort(left_indices, kind="stable")
        right_order = np.argsort(right_indices, kind="stable")
        view = _CandidateView(
            pairs=pairs,
            left_indices=left_indices,
            right_indices=right_indices,
            query_keys=query_keys,
            key_order=key_order,
            keys_sorted=query_keys[key_order],
            left_order=left_order,
            left_sorted=left_indices[left_order],
            right_order=right_order,
            right_sorted=right_indices[right_order],
        )
        # Bound the cache: streamed extraction passes short-lived block
        # lists that would otherwise accumulate (dicts preserve insertion
        # order, so eviction drops the oldest view first).
        with self._state_lock:
            existing = self._views.get(id(pairs))
            if existing is not None and existing.pairs is pairs:
                return existing
            while len(self._views) >= self.view_cache_size:
                self._views.pop(next(iter(self._views)))
            self._views[id(pairs)] = view
        return view

    def _view_values(
        self, view: _CandidateView, structure: _Structure
    ) -> np.ndarray:
        """Count values of one structure at the view's positions."""
        values = view.values.get(structure.name)
        if values is None:
            self._ensure_counts(structure)
            values = csr_values_at(
                structure.counts,
                view.left_indices,
                view.right_indices,
                query_keys=view.query_keys,
            )
            view.values[structure.name] = values
        return values

    def _view_scores(
        self, view: _CandidateView, structure: _Structure
    ) -> np.ndarray:
        """Dice proximity scores of one structure at the view's positions.

        ``_view_values`` guarantees counts and sums exist; afterwards the
        sums are maintained by the delta path without folding pending
        changes into the count matrix.
        """
        values = self._view_values(view, structure)
        denominators = (
            structure.row_sums[view.left_indices]
            + structure.col_sums[view.right_indices]
        )
        return dice_scores(values, denominators)

    # ------------------------------------------------------------------
    # Feature extraction
    # ------------------------------------------------------------------
    def extract(self, pairs: Sequence[LinkPair]) -> np.ndarray:
        """Feature matrix ``X`` of shape ``(len(pairs), n_features)``.

        Per-structure score columns are independent, so they fan out
        across the session's executor; stacking in family order keeps
        the result byte-identical to a serial extraction.
        """
        with self._state_lock:
            self.stats.extract_calls += 1
        if not pairs:
            return np.zeros((0, self.n_features), dtype=np.float64)
        view = self._view_for(pairs)
        columns = self.executor.map(
            lambda structure: self._view_scores(view, structure),
            self._structures,
        )
        if self.include_bias:
            columns.append(np.ones(len(pairs), dtype=np.float64))
        return np.column_stack(columns)

    def extract_single(self, pair: LinkPair) -> np.ndarray:
        """Feature vector for one candidate link."""
        return self.extract([pair])[0]

    def refresh_features(
        self, X: np.ndarray, pairs: Sequence[LinkPair]
    ) -> np.ndarray:
        """Rewrite the dirty proximity columns of ``X`` in place.

        ``X`` must be a matrix previously extracted by this session for
        the same ``pairs`` (row order included).  Only the columns whose
        structures an update actually touched are recomputed — anchor
        updates dirty the anchor-dependent columns, network deltas dirty
        exactly the columns their changed matrices propagate to — and
        whenever the update took the sparse path the rewrite covers only
        the delta-patched positions.  The bias column and clean columns
        are never written.  Returns ``X`` for chaining.
        """
        expected = (len(pairs), self.n_features)
        if X.shape != expected:
            raise FeatureError(
                f"feature matrix shape {X.shape} does not match {expected}"
            )
        if not pairs:
            return X
        view = self._view_for(pairs)

        def compute(column: int):
            """(column, positions, scores) update, or None if current."""
            structure = self._structures[column]
            dirty = view.dirty.get(structure.name)
            if structure.name in view.values and dirty is not None:
                # Only the positions touching a changed row/column sum
                # can have changed scores; rewrite exactly those.
                positions = np.unique(np.concatenate(dirty))
                values = view.values[structure.name][positions]
                denominators = (
                    structure.row_sums[view.left_indices[positions]]
                    + structure.col_sums[view.right_indices[positions]]
                )
                return column, positions, dice_scores(values, denominators)
            if structure.name in view.values:
                # No delta touched this structure since the last refresh;
                # the column is already current.
                return None
            return column, None, self._view_scores(view, structure)

        # Score recomputation fans out across the executor; the in-place
        # writes stay serial in column order (deterministic, and X is
        # never touched from worker threads).  Every structure column is
        # *checked*; clean ones (cached values, no dirty positions) cost
        # a dictionary probe and are never written.
        structure_columns = range(len(self._structures))
        for update in self.executor.map(compute, structure_columns):
            if update is None:
                continue
            column, positions, scores = update
            view.dirty.pop(self._structures[column].name, None)
            if positions is None:
                X[:, column] = scores
            else:
                X[positions, column] = scores
            self.stats.columns_refreshed += 1
        return X

    # ------------------------------------------------------------------
    def structure_counts(self) -> Dict[str, sparse.csr_matrix]:
        """name -> sparse count matrix for every structure (evaluated)."""
        for structure in self._structures:
            self._ensure_counts(structure)
        return {
            structure.name: structure.counts for structure in self._structures
        }

    # ------------------------------------------------------------------
    # Disk-backed store
    # ------------------------------------------------------------------
    @property
    def store_dir(self) -> Optional[Path]:
        """Directory of the session's matrix store, or ``None``."""
        return self.arena.store_dir if self.arena is not None else None

    def flush_store(self) -> ArenaSpec:
        """Publish a consistent snapshot of feature state to the arena.

        Folds every pending delta, spills all count matrices plus their
        row/column sums, and (once) the session metadata worker
        processes need to resolve block descriptors — structure order,
        bias flag, user-position maps.  Returns the
        :class:`~repro.store.procwork.ArenaSpec` stamping the manifest
        version just published; dispatchers attach it to every work
        unit so stale workers reload before serving.  A flush with no
        changes since the last one is a cheap no-op.
        """
        if self.arena is None:
            raise StoreError(
                "flush_store() needs a session constructed with store="
            )
        if self._store_dirty or not self._store_meta_written:
            slots: Dict[str, str] = {}
            for structure in self._structures:
                self._ensure_counts(structure)
                slot = getattr(structure.counts, "_arena_slot", None)
                if slot is None or slot not in self.arena:
                    # Counts live only in RAM (e.g. restored from a
                    # checkpoint) or their engine slot was invalidated:
                    # give them a dedicated slot workers can open.
                    slot = counts_slot(structure.name)
                    self.arena.put(slot, structure.counts)
                    structure.counts = self.arena.get(slot)
                slots[structure.name] = slot
                self.arena.put_array(
                    row_sums_slot(structure.name), structure.row_sums
                )
                self.arena.put_array(
                    col_sums_slot(structure.name), structure.col_sums
                )
            self.arena.put_object(SESSION_SLOTS, slots)
            if not self._store_meta_written:
                anchor_type = self.pair.anchor_node_type
                self.arena.put_object(
                    SESSION_META,
                    {
                        "structure_names": [
                            structure.name for structure in self._structures
                        ],
                        "include_bias": bool(self.include_bias),
                        "n_right": self.pair.right.slot_count(anchor_type),
                        "left_positions": {
                            user: self.pair.left.node_position(
                                anchor_type, user
                            )
                            for user in self.pair.left_users()
                        },
                        "right_positions": {
                            user: self.pair.right.node_position(
                                anchor_type, user
                            )
                            for user in self.pair.right_users()
                        },
                    },
                )
                self._store_meta_written = True
            self._store_dirty = False
            self._release_store_pages()
        # With tracing on, the spec carries the dispatching span's
        # context into worker processes, so same-host workers parent
        # their job spans on the driver's trace (no-op otherwise).
        return ArenaSpec(
            store_dir=str(self.arena.store_dir),
            version=self.arena.version,
            trace=get_tracer().current_context(),
        )

    # ------------------------------------------------------------------
    # Checkpointable state
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        """Picklable snapshot of all anchor- and network-derived state.

        Captures the known anchor set, every structure's folded counts,
        row/column sums and still-pending deltas, the work counters,
        and the **evolution log** — every network delta applied through
        this session, so a restore replays the same growth onto a
        freshly built pair byte-identically.  Candidate views are *not*
        captured: they are derived caches, rebuilt bit-exactly from
        counts on demand.  Restoring the snapshot with
        :meth:`load_state_dict` makes the session byte-indistinguishable
        from one that reached the same anchor set and network state
        live — the foundation of checkpoint/resume determinism.
        """
        structures = {}
        for structure in self._structures:
            with structure.lock:
                structures[structure.name] = {
                    "counts": (
                        sparse.csr_matrix(structure.counts, copy=True)
                        if structure.counts is not None
                        else None
                    ),
                    "row_sums": (
                        np.array(structure.row_sums)
                        if structure.row_sums is not None
                        else None
                    ),
                    "col_sums": (
                        np.array(structure.col_sums)
                        if structure.col_sums is not None
                        else None
                    ),
                    "pending": [
                        sparse.csr_matrix(change, copy=True)
                        for change in structure.pending
                    ],
                }
        return {
            "format_version": _STATE_FORMAT_VERSION,
            "anchors": set(self._anchors),
            "structures": structures,
            "stats": self.stats.as_dict(),
            "evolution": list(self._evolution_log),
            # The snapshot epoch: the evolution list above replays on
            # top of pair_snapshot (when epoch > 0), not on the
            # construction-time pair.  The snapshot object is shared,
            # never mutated — compact() always installs a fresh copy.
            "compaction_epoch": self._compaction_epoch,
            "pair_snapshot": self._pair_snapshot,
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this session.

        The session must be over the same family and the same pair *as
        it was at session construction* (structure names are verified;
        anchor endpoints are validated against the pair).  A snapshot
        carrying evolution events the session has not applied yet
        replays them onto the pair first, so restoring onto a freshly
        built (pre-evolution) pair reconstructs the grown network
        byte-identically.  Views are dropped and rebuilt lazily; the
        counting engine's matrices are replaced so later full
        evaluations agree with the restored state.
        """
        version = state.get("format_version")
        if version not in _LOADABLE_STATE_VERSIONS:
            raise StoreError(
                f"unsupported session state format version {version!r}"
            )
        expected = {structure.name for structure in self._structures}
        found = set(state["structures"])
        if found != expected:
            raise StoreError(
                "session state structures do not match this session's "
                f"family (missing {sorted(expected - found)}, "
                f"unexpected {sorted(found - expected)})"
            )
        evolution = list(state.get("evolution", ()))
        state_epoch = state.get("compaction_epoch", 0)
        if state_epoch < self._compaction_epoch:
            raise StoreError(
                f"snapshot is from compaction epoch {state_epoch} but this "
                f"session already compacted {self._compaction_epoch} "
                "time(s); pre-compaction state cannot be restored in place"
            )
        if state_epoch > self._compaction_epoch:
            # The snapshot is from a later compaction epoch: the live
            # pair's slot coordinates no longer match.  Adopt a pristine
            # copy of the compacted pair and replay the truncated log
            # from there — byte-identical to the session that compacted.
            snapshot = state.get("pair_snapshot")
            if snapshot is None:
                raise StoreError(
                    "snapshot from a later compaction epoch carries no "
                    "pair snapshot to restore from"
                )
            pristine = copy.deepcopy(snapshot)
            self.pair = pristine
            self._pair_snapshot = snapshot
            self._compaction_epoch = state_epoch
            for delta in evolution:
                self.pair.apply_delta(delta)
            replayed = True
        else:
            if len(evolution) < self._applied_evolution:
                raise StoreError(
                    f"snapshot carries {len(evolution)} evolution events "
                    f"but this session already applied "
                    f"{self._applied_evolution}"
                )
            for delta in evolution[self._applied_evolution:]:
                self.pair.apply_delta(delta)
            replayed = len(evolution) > self._applied_evolution
            if state_epoch and self._pair_snapshot is None:
                self._pair_snapshot = state.get("pair_snapshot")
        self._evolution_log = evolution
        self._applied_evolution = len(evolution)
        anchors = set(state["anchors"])
        # Validates every anchor endpoint before any count-state changes.
        anchor_matrix = self.pair.anchor_matrix(anchors)
        self._anchors = anchors
        if replayed:
            # The replay grew the pair's matrices: refresh the whole bag
            # (cheap O(nnz) exports; counts come from the snapshot).
            self._engine.update_matrices(
                build_matrix_bag(
                    self.pair,
                    known_anchors=self._anchors,
                    include_words=self._include_word_matrices,
                )
            )
            self._bag_fingerprints = bag_fingerprints(
                self.pair, include_words=self._include_word_matrices
            )
            self._refresh_vocab_cache()
        else:
            self._engine.update_matrix(ANCHOR_MATRIX, anchor_matrix)
        with self._state_lock:
            self._views.clear()
        for structure in self._structures:
            snapshot = state["structures"][structure.name]
            with structure.lock:
                structure.counts = snapshot["counts"]
                structure.row_sums = snapshot["row_sums"]
                structure.col_sums = snapshot["col_sums"]
                structure.pending = list(snapshot["pending"])
                structure.proximity = None
        self.stats = SessionStats(registry=self.metrics, **state["stats"])
        # Anything derived from this session before the restore is
        # unverifiable now; downstream caches must rebuild.
        self._record_dirty(everything=True)
        if self.arena is not None:
            self._store_dirty = True
            self._store_meta_written = False  # restored pair may differ

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release owned resources (idempotent).

        Closes the executor when the session built it from a ``workers``
        count (a shared :class:`~repro.engine.parallel.Executor` is the
        caller's to close) and the arena when built from a ``store``
        path.  Spilled matrices stay on disk.
        """
        if self._owns_executor:
            self.executor.close()
        if self.arena is not None and self._owns_arena:
            self.arena.close()

    def __enter__(self) -> "AlignmentSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AlignmentSession(pair={self.pair!r}, "
            f"structures={len(self._structures)}, "
            f"anchors={len(self._anchors)}, incremental={self.incremental})"
        )
