"""Streamed alignment tasks: the fit path without the |H| x d matrix.

An :class:`~repro.core.base.AlignmentTask` freezes the candidate space H
together with its dense feature matrix ``X`` — fine for sampled tasks,
prohibitive when H approaches the |U1| x |U2| cross product.
:class:`StreamedAlignmentTask` is the block-streamed analog: it keeps
the candidate list and the labeled indices, but features are
(re-)extracted block by block from the owning
:class:`~repro.engine.session.AlignmentSession` on every pass, and the
only dense objects ever produced are

* the d x d (weighted) Gram matrix ``XᵀΩX`` and d-vectors ``Xᵀt``
  accumulated for the closed-form ridge step,
* training-row gathers sized by the *label* budget (the streamed SVM
  backend's working set — see :meth:`StreamedAlignmentTask.labeled_rows`
  and :mod:`repro.ml.backends`), and
* per-candidate *vectors* over H (scores, labels) that the alternating
  loop needs anyway.

The full ``|H| x d`` matrix is never allocated; peak feature memory is
``block_size x d`` per in-flight block (times the executor window when
extraction fans out across threads).  All block passes merge results in
stream order, so a threaded run is byte-identical to a serial one.

Two distinct exactness guarantees apply.  *Threaded vs serial* is
bit-exact by construction (identical operations in identical order).
*Streamed vs materialized* is bit-exact only in the single-block case,
where the accumulated Gram/rhs reduce to the very same dense products;
with several blocks the partial-sum order differs from one dense BLAS
product, so weights agree to rounding error and the equality of query
sets and labels — asserted throughout the test suite — holds because
both paths are deterministic and candidate scores are never within an
ulp of a decision boundary on real count features, not as an algebraic
identity.

:meth:`StreamedAlignmentTask.scored_blocks` re-slices whole-of-H score
and label vectors into :class:`~repro.active.strategies.ScoredBlock`
records for the streamed query strategies — no extraction involved.
"""

from __future__ import annotations

import logging
import time
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.active.strategies import ScoredBlock
from repro.engine.candidates import CandidateBlock, CandidateGenerator
from repro.engine.session import AlignmentSession
from repro.exceptions import ModelError
from repro.ml.backends import LinearModelState, apply_model_state, gather_rows
from repro.store.procwork import (
    BlockDescriptor,
    extract_block_job,
    model_score_block_job,
)
from repro.types import LinkPair

logger = logging.getLogger(__name__)

#: Sentinel accepted by the ``block_size`` knobs: measure throughput and
#: pick a size instead of using a fixed number.
AUTO_BLOCK_SIZE = "auto"

#: What a ``block_size`` knob accepts: a fixed size or ``"auto"``.
BlockSizeSpec = Union[int, str]

# Auto-tune envelope: blocks small enough to keep peak feature memory
# modest and pipelines responsive, large enough to amortize per-block
# lookup overhead.
_AUTO_MIN_BLOCK = 256
_AUTO_MAX_BLOCK = 65536
_AUTO_PROBE_SIZE = 512
_AUTO_TARGET_SECONDS = 0.2


def blockify(
    pairs: Sequence[LinkPair], block_size: int
) -> List[CandidateBlock]:
    """Chop a candidate list into generator-style blocks.

    A list shorter than ``block_size`` yields exactly one block; an
    empty list yields an empty stream — mirroring
    :meth:`CandidateGenerator.blocks`.
    """
    if block_size < 1:
        raise ModelError("block_size must be >= 1")
    return [
        list(pairs[start: start + block_size])
        for start in range(0, len(pairs), block_size)
    ]


def tune_block_size(
    session: AlignmentSession,
    pairs: Sequence[LinkPair],
    target_seconds: float = _AUTO_TARGET_SECONDS,
    probe_size: int = _AUTO_PROBE_SIZE,
) -> int:
    """Measured-throughput block sizing for streamed tasks.

    Extracts one probe block through the session, measures pairs/second
    and returns the size that makes a block pass take about
    ``target_seconds``, clamped to ``[256, 65536]``.  The measurement
    replaces the fixed ``block_size`` knob when callers pass
    ``"auto"``: slow feature families (many structures, dense counts)
    get small responsive blocks, fast ones get large blocks that
    amortize per-block lookup overhead.

    The probe is a real extraction, so its cost is not wasted — the
    session's count matrices are materialized exactly once either way.
    Note the size depends on measured wall-clock: two hosts may chop
    the same task differently (query sets still agree — the streamed
    strategies select identically for any block partition).
    """
    if not pairs:
        return _AUTO_MIN_BLOCK
    probe = list(pairs[: min(int(probe_size), len(pairs))])
    started = time.perf_counter()
    session.extract(probe)
    elapsed = max(time.perf_counter() - started, 1e-9)
    rate = len(probe) / elapsed
    return int(min(_AUTO_MAX_BLOCK, max(_AUTO_MIN_BLOCK, rate * target_seconds)))


def resolve_block_size(
    session: AlignmentSession,
    pairs: Sequence[LinkPair],
    block_size: BlockSizeSpec,
) -> int:
    """Turn a ``block_size`` knob (int or ``"auto"``) into a number."""
    if block_size == AUTO_BLOCK_SIZE:
        return tune_block_size(session, pairs)
    if not isinstance(block_size, int):
        raise ModelError(
            f"block_size must be an integer or {AUTO_BLOCK_SIZE!r}, "
            f"got {block_size!r}"
        )
    return block_size


class StreamedAlignmentTask:
    """One alignment problem instance streamed in feature-space blocks.

    Parameters
    ----------
    session:
        The alignment session features are extracted from.  Its
        executor drives every block pass, and its anchor set is read at
        extraction time — so a refresh between query rounds is just
        ``session.set_anchors``; the next pass sees the new features.
    blocks:
        Candidate blocks (e.g. from :func:`blockify` or
        :meth:`CandidateGenerator.blocks`).  Block objects are kept
        alive so the session's view cache can serve repeated passes.
    labeled_indices, labeled_values:
        Known-label positions in the concatenated candidate order and
        their 0/1 values, exactly as on ``AlignmentTask``.
    """

    def __init__(
        self,
        session: AlignmentSession,
        blocks: Iterable[CandidateBlock],
        labeled_indices: np.ndarray,
        labeled_values: np.ndarray,
    ) -> None:
        self.session = session
        self.blocks: List[CandidateBlock] = [
            list(block) for block in blocks if len(block)
        ]
        self.pairs: List[LinkPair] = [
            pair for block in self.blocks for pair in block
        ]
        if not self.pairs:
            raise ModelError("no candidate links supplied")
        self.offsets: List[int] = []
        offset = 0
        for block in self.blocks:
            self.offsets.append(offset)
            offset += len(block)

        self.labeled_indices = np.asarray(labeled_indices, dtype=np.int64)
        self.labeled_values = np.asarray(labeled_values, dtype=np.int64)
        if self.labeled_indices.shape != self.labeled_values.shape:
            raise ModelError("labeled indices/values must align")
        if self.labeled_indices.size:
            if (
                self.labeled_indices.min() < 0
                or self.labeled_indices.max() >= len(self.pairs)
            ):
                raise ModelError("labeled index out of range")
            if (
                len(set(self.labeled_indices.tolist()))
                != self.labeled_indices.size
            ):
                raise ModelError("labeled indices contain duplicates")
        bad = set(np.unique(self.labeled_values).tolist()) - {0, 1}
        if bad:
            raise ModelError(f"labels must be 0/1, got {sorted(bad)}")
        self._pair_index: Optional[dict] = None
        self._descriptors: Optional[List[BlockDescriptor]] = None
        #: Block size the task was built with (set by :meth:`from_pairs`;
        #: ``None`` when blocks came from a generator or explicit list).
        self.block_size: Optional[int] = None
        #: Re-probe the auto block size every N block passes (set by
        #: :meth:`from_pairs`; ``None`` keeps the construction-time size).
        self.retune_every: Optional[int] = None
        #: Times the auto size was re-probed and the stream re-chopped.
        self.retunes: int = 0
        self._passes_since_tune = 0
        # Last whole-of-H score vector: (weights, scores, session delta
        # epoch).  A rescore under identical weights re-extracts only
        # the blocks the session marked dirty since the epoch.
        self._score_cache: Optional[
            Tuple[np.ndarray, np.ndarray, int]
        ] = None
        #: Rescore telemetry: full passes, dirty-block-only passes, and
        #: how many blocks the partial passes actually re-extracted.
        self.full_score_passes = 0
        self.partial_score_passes = 0
        self.blocks_rescored = 0

    # ------------------------------------------------------------------
    # AlignmentTask-compatible surface (what models and the alternating
    # state read; X is deliberately absent).
    # ------------------------------------------------------------------
    @property
    def n_candidates(self) -> int:
        """|H| — number of candidate links."""
        return len(self.pairs)

    @property
    def n_features(self) -> int:
        """Feature dimensionality d (from the session)."""
        return self.session.n_features

    @property
    def n_blocks(self) -> int:
        """Number of streamed blocks."""
        return len(self.blocks)

    @property
    def unlabeled_mask(self) -> np.ndarray:
        """Boolean mask of candidates without a known label."""
        mask = np.ones(self.n_candidates, dtype=bool)
        mask[self.labeled_indices] = False
        return mask

    def index_of(self, pair: LinkPair) -> int:
        """Index of a candidate pair (built lazily, cached)."""
        if self._pair_index is None:
            self._pair_index = {
                pair_: i for i, pair_ in enumerate(self.pairs)
            }
        try:
            return self._pair_index[pair]
        except KeyError:
            raise ModelError(f"pair {pair!r} is not a candidate") from None

    # ------------------------------------------------------------------
    # Block passes
    # ------------------------------------------------------------------
    def _block_descriptors(self) -> List[BlockDescriptor]:
        """Picklable index-form descriptors of the blocks (cached)."""
        if self._descriptors is None:
            self._descriptors = []
            for offset, block in zip(self.offsets, self.blocks):
                left, right = self.session.pair.pairs_to_indices(block)
                self._descriptors.append(
                    BlockDescriptor(
                        offset=offset, left_indices=left, right_indices=right
                    )
                )
        return self._descriptors

    def _maybe_retune(self) -> None:
        """Re-probe the auto block size every ``retune_every`` passes.

        Streamed-fit backpressure: the construction-time measurement
        goes stale under drifting load (deltas densify counts, caches
        warm up, co-tenants come and go), so the task re-measures
        throughput periodically and re-chops the *same* candidate order
        into blocks of the new size.  Labeled indices and score vectors
        are over the concatenated order, which never changes — only the
        partition does, and the streamed strategies select identically
        for any partition.
        """
        if self.retune_every is None or self.block_size is None:
            return
        self._passes_since_tune += 1
        if self._passes_since_tune < self.retune_every:
            return
        self._passes_since_tune = 0
        new_size = tune_block_size(self.session, self.pairs)
        if new_size == self.block_size:
            return
        self.block_size = new_size
        self.blocks = blockify(self.pairs, new_size)
        self.offsets = []
        offset = 0
        for block in self.blocks:
            self.offsets.append(offset)
            offset += len(block)
        self._descriptors = None
        self.retunes += 1

    def feature_blocks(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Ordered ``(offset, X_block)`` stream, freshly extracted.

        Extraction fans out across the session's executor with a
        bounded in-flight window; results arrive in stream order, so
        sequential folds over this iterator are deterministic.  On an
        RPC fleet that window is barrier-free (protocol v3): block
        jobs flow into per-worker pipeline windows straight from this
        generator, with no chunk boundary stalling the stream while a
        slow consumer (an incremental fit folding block by block)
        drains it.

        With an executor whose work leaves this interpreter
        (:attr:`~repro.engine.parallel.Executor.crosses_processes` —
        the process pool or the RPC fleet) and a store-backed session,
        each pass first flushes a consistent snapshot to the arena and
        then ships only block *descriptors* to the workers — matrices
        reach them as shared memory maps (or the content-addressed
        sync), and the extraction kernel is the session's own, so the
        stream is byte-identical to the in-process one.
        """
        self._maybe_retune()
        executor = self.session.executor
        if executor.crosses_processes and self.session.arena is not None:
            spec = self.session.flush_store()
            logger.debug(
                "streaming %d block descriptor(s) across %s executor",
                len(self.blocks),
                executor.kind,
            )
            return executor.imap(
                extract_block_job,
                ((spec, descriptor) for descriptor in self._block_descriptors()),
            )

        def extract(item: Tuple[int, CandidateBlock]):
            offset, block = item
            return offset, self.session.extract(block)

        return executor.imap(extract, zip(self.offsets, self.blocks))

    def block_spans(self) -> List[Tuple[int, int]]:
        """``(offset, length)`` of every block in stream order.

        The cheap partition map consumers capture before a selective
        pass: it reads no features, so a working-set fit can decide
        which blocks it needs without touching the arena.  The spans
        stay valid until the next full :meth:`feature_blocks` pass (the
        only place auto-retune may re-chop the stream).
        """
        return [
            (offset, len(block))
            for offset, block in zip(self.offsets, self.blocks)
        ]

    def selected_feature_blocks(
        self, block_indices: Sequence[int]
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Extract only the requested blocks, in the given order.

        The working-set fit path: blocks whose every remaining dual is
        screened out are simply not in ``block_indices`` and are never
        read from the session (or the arena behind it).  Honors the same
        executor seam as :meth:`feature_blocks` — cross-process
        executors receive picklable descriptors against the flushed
        store — but never re-tunes the partition, so offsets stay
        aligned with the :meth:`block_spans` the caller captured.
        """
        wanted = [int(b) for b in block_indices]
        for b in wanted:
            if b < 0 or b >= len(self.blocks):
                raise ModelError(f"block index {b} out of range")
        executor = self.session.executor
        if executor.crosses_processes and self.session.arena is not None:
            spec = self.session.flush_store()
            descriptors = self._block_descriptors()
            return executor.imap(
                extract_block_job,
                ((spec, descriptors[b]) for b in wanted),
            )

        def extract(item: Tuple[int, CandidateBlock]):
            offset, block = item
            return offset, self.session.extract(block)

        return executor.imap(
            extract,
            ((self.offsets[b], self.blocks[b]) for b in wanted),
        )

    def gram(
        self, sample_weight: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Accumulate the (weighted) Gram matrix ``XᵀΩX`` over blocks."""
        gram = np.zeros((self.n_features, self.n_features), dtype=np.float64)
        for offset, X in self.feature_blocks():
            if sample_weight is None:
                gram += X.T @ X
            else:
                weights = sample_weight[offset: offset + X.shape[0]]
                gram += (X.T * weights) @ X
        return gram

    def xt_dot(self, target: np.ndarray) -> np.ndarray:
        """Accumulate ``Xᵀ t`` over blocks for a whole-of-H vector."""
        target = np.asarray(target, dtype=np.float64).ravel()
        if target.shape[0] != self.n_candidates:
            raise ModelError(
                f"target length {target.shape[0]} does not match "
                f"{self.n_candidates} candidates"
            )
        result = np.zeros(self.n_features, dtype=np.float64)
        for offset, X in self.feature_blocks():
            result += X.T @ target[offset: offset + X.shape[0]]
        return result

    def scores(self, weights: np.ndarray) -> np.ndarray:
        """Whole-of-H raw scores ``ŷ = Xw``, one block at a time.

        The last score vector is cached together with its weights and
        the session's delta epoch.  A repeat call with the *same*
        weights after a sparse session update (an anchor round, a
        network delta) re-extracts only the **dirty blocks** — those
        whose left rows or right columns the update touched — and reuses
        the rest byte-for-byte; feature rows outside the dirty region
        are bit-identical by the delta algebra's exactness, so the
        partial rescore equals a full sweep exactly.  New weights, an
        unknown epoch, or a full invalidation fall back to the full
        sweep.
        """
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if weights.shape[0] != self.n_features:
            raise ModelError(
                f"weight length {weights.shape[0]} does not match "
                f"{self.n_features} features"
            )
        epoch = self.session.delta_epoch
        cached = self._score_cache
        if cached is not None and np.array_equal(cached[0], weights):
            if cached[2] == epoch:
                return cached[1].copy()
            dirty = self.session.dirty_since(cached[2])
            if dirty is not None:
                return self._rescore_dirty(weights, cached[1], dirty, epoch)
        scores = np.empty(self.n_candidates, dtype=np.float64)
        for offset, X in self.feature_blocks():
            scores[offset: offset + X.shape[0]] = X @ weights
        self.full_score_passes += 1
        self._score_cache = (weights.copy(), scores.copy(), epoch)
        return scores

    def _rescore_dirty(
        self,
        weights: np.ndarray,
        cached_scores: np.ndarray,
        dirty: Tuple[np.ndarray, np.ndarray],
        epoch: int,
    ) -> np.ndarray:
        """Re-extract and re-score only the blocks a delta touched."""
        rows, cols = dirty
        scores = cached_scores.copy()
        rescored = 0
        for descriptor, block in zip(self._block_descriptors(), self.blocks):
            if not (
                np.isin(descriptor.left_indices, rows).any()
                or np.isin(descriptor.right_indices, cols).any()
            ):
                continue
            X = self.session.extract(block)
            scores[descriptor.offset: descriptor.offset + len(block)] = (
                X @ weights
            )
            rescored += 1
        self.partial_score_passes += 1
        self.blocks_rescored += rescored
        logger.debug(
            "partial rescore: %d of %d block(s) dirty", rescored, len(self.blocks)
        )
        self._score_cache = (weights.copy(), scores.copy(), epoch)
        return scores

    def labeled_rows(self) -> np.ndarray:
        """``X[labeled_indices]`` gathered in one block pass.

        A convenience over :func:`~repro.ml.backends.gather_rows` for
        parity checks and custom consumers.  Row values are copied
        verbatim from their home blocks, so the gather is bit-identical
        to fancy-indexing the materialized matrix.  (The built-in
        ``"labeled"`` model backends call ``gather_rows`` directly with
        their own — possibly grown — clamped index set rather than this
        task-initial one.)
        """
        return gather_rows(self, self.labeled_indices)

    def linear_model_scores(self, state: LinearModelState) -> np.ndarray:
        """Whole-of-H scores of a picklable model state, block by block.

        The model-backend scoring sweep: each raw feature block runs
        through :func:`~repro.ml.backends.apply_model_state` (feature
        map, scaler, linear form).  With a cross-process executor
        (process pool or RPC fleet) and a store-backed session the
        state ships to the workers alongside the block descriptors
        (:func:`~repro.store.procwork.model_score_block_job`), so SVM
        decision passes and landmark transforms fan across processes;
        the worker kernel is the same function, so results are
        byte-identical to the inline sweep.
        """
        executor = self.session.executor
        scores = np.empty(self.n_candidates, dtype=np.float64)
        if executor.crosses_processes and self.session.arena is not None:
            spec = self.session.flush_store()
            stream = executor.imap(
                model_score_block_job,
                (
                    (spec, descriptor, state)
                    for descriptor in self._block_descriptors()
                ),
            )
        else:
            stream = (
                (offset, apply_model_state(state, X))
                for offset, X in self.feature_blocks()
            )
        for offset, block_scores in stream:
            scores[offset: offset + block_scores.shape[0]] = block_scores
        return scores

    def scored_blocks(
        self,
        scores: np.ndarray,
        labels: np.ndarray,
        queryable: np.ndarray,
    ) -> Iterator[ScoredBlock]:
        """Re-slice whole-of-H vectors into strategy-facing blocks."""
        for offset, block in zip(self.offsets, self.blocks):
            end = offset + len(block)
            yield ScoredBlock(
                pairs=block,
                scores=scores[offset:end],
                labels=labels[offset:end],
                queryable=queryable[offset:end],
                offset=offset,
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(
        cls,
        session: AlignmentSession,
        pairs: Sequence[LinkPair],
        labeled_indices: np.ndarray,
        labeled_values: np.ndarray,
        block_size: BlockSizeSpec = 4096,
        retune_every: Optional[int] = None,
    ) -> "StreamedAlignmentTask":
        """Build from a flat candidate list, chopped into blocks.

        ``block_size="auto"`` replaces the fixed knob with a measured
        probe extraction (:func:`tune_block_size`); ``retune_every=N``
        additionally re-probes every N block passes and re-chops the
        stream — backpressure for drifting load (see
        :meth:`_maybe_retune`).
        """
        if retune_every is not None:
            if block_size != AUTO_BLOCK_SIZE:
                raise ModelError(
                    f"retune_every requires block_size={AUTO_BLOCK_SIZE!r}"
                )
            if retune_every < 1:
                raise ModelError("retune_every must be >= 1")
        pairs = list(pairs)
        resolved = resolve_block_size(session, pairs, block_size)
        task = cls(
            session,
            blockify(pairs, resolved),
            labeled_indices,
            labeled_values,
        )
        task.block_size = resolved
        task.retune_every = retune_every
        return task

    @classmethod
    def from_generator(
        cls,
        session: AlignmentSession,
        generator: CandidateGenerator,
        labeled: Sequence[Tuple[LinkPair, int]] = (),
    ) -> "StreamedAlignmentTask":
        """Build from a candidate generator's pruned block stream.

        ``labeled`` maps known links to 0/1 labels; every labeled link
        must survive the generator's pruning (otherwise the model could
        not see its own training data).
        """
        blocks = list(generator.blocks())
        task_pairs = {
            pair: index
            for index, pair in enumerate(
                pair for block in blocks for pair in block
            )
        }
        indices: List[int] = []
        values: List[int] = []
        for pair, label in labeled:
            try:
                indices.append(task_pairs[pair])
            except KeyError:
                raise ModelError(
                    f"labeled link {pair!r} was pruned from the candidate "
                    "stream; loosen pruning or exclude it from training"
                ) from None
            values.append(label)
        return cls(
            session,
            blocks,
            np.asarray(indices, dtype=np.int64),
            np.asarray(values, dtype=np.int64),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamedAlignmentTask(candidates={self.n_candidates}, "
            f"blocks={self.n_blocks}, features={self.n_features})"
        )
