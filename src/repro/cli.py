"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro.cli table2 [--scale small]
    python -m repro.cli table3 [--scale small] [--np-ratios 5,10,20]
    python -m repro.cli table4 [--scale small] [--sample-ratios 0.2,0.6,1.0]
    python -m repro.cli fig3   [--scale small]
    python -m repro.cli fig4   [--scale small]
    python -m repro.cli fig5   [--scale small] [--budgets 10,25,50,75,100]
    python -m repro.cli discover  [--max-length 4]   # auto meta paths
    python -m repro.cli baselines [--scale small]    # unsupervised methods
    python -m repro.cli validate  [--scale small]    # data integrity report
    python -m repro.cli stats     [--scale small]    # per-structure stats
    python -m repro.cli evolve    [--scale small] [--events 4]
                                  [--np-ratio 10] [--sweep] [--churn]
                                  [--compact-every N] [--strict-deltas]
                                  [--model {ridge,svm,svm-pu}] [--feature-map MAP]
    python -m repro.cli experiment [--scale small] [--budget 50]
                                  [--model {ridge,svm,svm-pu}] [--feature-map MAP]
                                  [--streamed]       # one custom lineup
    python -m repro.cli engine    [--scale small] [--budget 30] [--batch 2]
                                  [--workers 4] [--streamed]
                                  [--model {ridge,svm,svm-pu}] [--feature-map MAP]
                                  [--store-dir DIR]
                                  [--executor {serial,thread,process,rpc}]
                                  [--rpc-hosts HOST:PORT,HOST:PORT]
                                  [--rpc-pipeline N]
    python -m repro.cli engine checkpoint --store-dir DIR
                                  [--interrupt-after 3]
    python -m repro.cli engine resume --store-dir DIR
    python -m repro.cli worker --listen HOST:PORT --store-dir DIR
                               [--cache-bytes N] [--delay-ms MS]
    python -m repro.cli trace summarize TRACE.jsonl
    python -m repro.cli trace tree TRACE.jsonl [--trace-id ID]

Every command prints a plain-text analog of the corresponding paper
artifact.  Defaults are sized for minutes-scale runs; raise ``--scale``
and the sweep lists to approach the paper's full grid.

``--model`` selects the model backend of the internal fit step (the
paper's ridge, a streamed supervised SVM, or ``svm-pu`` — the biased
positive-unlabeled SVM training on all of H through the working-set
streamed solver, ``--unlabeled-c`` setting the soft-negative cost) and
``--feature-map`` composes a kernel feature map (``nystroem``,
``fourier``, ``poly``) — both ride the streamed/parallel/process
stack; see :mod:`repro.ml.backends`.
``evolve --sweep`` re-evaluates the full method lineup (streamed SVM
included) at every scheduled network delta.  ``evolve --churn``
switches to the adversarial grow/shrink schedule (node and edge
removals plus attribute churn), ``--compact-every N`` auto-compacts
the session every N events, and ``--strict-deltas`` cross-checks every
event-sourced fold against a fresh export.

``engine checkpoint`` runs a deterministic active fit that snapshots
its state to ``--store-dir`` after every query round
(``--interrupt-after N`` simulates a crash after round N); ``engine
resume`` picks the fit back up from the snapshot, runs it to
completion, and verifies the result is byte-identical to an
uninterrupted run.

``worker`` starts a long-lived RPC worker that serves block-descriptor
jobs to a remote driver over the content-addressed arena transport
(see :mod:`repro.store.rpc`); a driver reaches its fleet with
``engine --store-dir DIR --executor rpc --rpc-hosts h1:p,h2:p``.
``--cache-bytes N`` caps the worker's blob cache with LRU eviction for
long-lived fleets (evictions are counted in the driver's RPC metrics).
``--rpc-pipeline N`` sets the driver's per-worker in-flight window
(protocol v3 pipelined dispatch; ``1`` restores the blocking
one-job-per-round-trip loop), and ``worker --delay-ms MS`` injects a
per-frame latency on the worker — the fault-injection knob the RPC
bench uses to demonstrate the pipelining win on a single host.

``engine``, ``evolve``, ``experiment`` and ``worker`` accept
``--trace-out PATH`` (stream :mod:`repro.obs` spans to a JSONL file;
read it back with ``trace summarize`` / ``trace tree``) and
``--log-level``/``--log-format`` (wire the package loggers through
:func:`repro.obs.logging_setup`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Sequence

from repro.datasets import foursquare_twitter_like
from repro.eval.convergence import convergence_study, format_convergence
from repro.eval.experiment import (
    ExperimentOutcome,
    MethodSpec,
    run_experiment,
)
from repro.eval.plots import ascii_line_chart, sparkline
from repro.eval.protocol import ProtocolConfig
from repro.eval.report import format_single_outcome, format_sweep_table
from repro.eval.timing import format_timing, scalability_study
from repro.networks.stats import aligned_pair_stats, format_table2


def _parse_int_list(raw: str) -> List[int]:
    return [int(item) for item in raw.split(",") if item]


def _parse_float_list(raw: str) -> List[float]:
    return [float(item) for item in raw.split(",") if item]


def cmd_table2(args: argparse.Namespace) -> str:
    """Dataset statistics (Table II analog)."""
    pair = foursquare_twitter_like(scale=args.scale, seed=args.seed)
    return format_table2(aligned_pair_stats(pair))


def cmd_table3(args: argparse.Namespace) -> str:
    """NP-ratio sweep (Table III analog)."""
    pair = foursquare_twitter_like(scale=args.scale, seed=args.seed)
    outcomes: Dict[object, ExperimentOutcome] = {}
    for np_ratio in args.np_ratios:
        config = ProtocolConfig(
            np_ratio=np_ratio,
            sample_ratio=args.sample_ratio,
            n_repeats=args.repeats,
            seed=args.seed,
        )
        outcomes[np_ratio] = run_experiment(pair, config)
    return format_sweep_table(
        f"Table III analog (sample-ratio={args.sample_ratio:.0%})",
        "NP-ratio",
        args.np_ratios,
        outcomes,
    )


def cmd_table4(args: argparse.Namespace) -> str:
    """Sample-ratio sweep (Table IV analog)."""
    pair = foursquare_twitter_like(scale=args.scale, seed=args.seed)
    outcomes: Dict[object, ExperimentOutcome] = {}
    for sample_ratio in args.sample_ratios:
        config = ProtocolConfig(
            np_ratio=args.np_ratio,
            sample_ratio=sample_ratio,
            n_repeats=args.repeats,
            seed=args.seed,
        )
        outcomes[sample_ratio] = run_experiment(pair, config)
    return format_sweep_table(
        f"Table IV analog (NP-ratio={args.np_ratio})",
        "sample-ratio",
        args.sample_ratios,
        outcomes,
    )


def cmd_fig3(args: argparse.Namespace) -> str:
    """Convergence traces (Figure 3 analog)."""
    pair = foursquare_twitter_like(scale=args.scale, seed=args.seed)
    traces = convergence_study(pair, np_ratios=args.np_ratios, seed=args.seed)
    lines = [format_convergence(traces), ""]
    for trace in traces:
        lines.append(
            f"  NP-ratio={trace.np_ratio:>3} trend: "
            f"{sparkline(list(trace.deltas))}"
        )
    return "\n".join(lines)


def cmd_fig4(args: argparse.Namespace) -> str:
    """Scalability timing (Figure 4 analog)."""
    pair = foursquare_twitter_like(scale=args.scale, seed=args.seed)
    points = scalability_study(
        pair, np_ratios=args.np_ratios, budget=args.budget, seed=args.seed
    )
    chart = ascii_line_chart(
        {"ActiveIter": [(p.n_candidates, p.seconds) for p in points]},
        x_label="|H|",
        y_label="seconds",
    )
    return format_timing(points) + "\n\n" + chart


def cmd_fig5(args: argparse.Namespace) -> str:
    """Budget sweep (Figure 5 analog)."""
    pair = foursquare_twitter_like(scale=args.scale, seed=args.seed)
    blocks: List[str] = []
    for budget in args.budgets:
        methods: Sequence[MethodSpec] = [
            MethodSpec(name=f"ActiveIter-{budget}", kind="active", budget=budget),
            MethodSpec(
                name=f"ActiveIter-Rand-{budget}",
                kind="active",
                budget=budget,
                strategy="random",
            ),
            MethodSpec(name="Iter-MPMD", kind="iterative"),
        ]
        config = ProtocolConfig(
            np_ratio=args.np_ratio,
            sample_ratio=args.sample_ratio,
            n_repeats=args.repeats,
            seed=args.seed,
        )
        outcome = run_experiment(pair, config, methods)
        blocks.append(format_single_outcome(f"budget b={budget}", outcome))
    return "\n\n".join(blocks)


def cmd_discover(args: argparse.Namespace) -> str:
    """Automatic meta path discovery from the schema."""
    from repro.meta.discovery import (
        discover_inter_network_paths,
        discover_standard_paths,
    )

    paths = discover_inter_network_paths(
        max_length=args.max_length, include_words=args.words
    )
    standard = {
        discovered.signature: name
        for name, discovered in discover_standard_paths(
            include_words=args.words
        ).items()
    }
    lines = [
        f"{len(paths)} inter-network meta paths up to length {args.max_length}",
        f"{'len':>4} {'crossing':<10} {'paper':<6} signature",
    ]
    for path in paths:
        label = standard.get(path.signature, "")
        lines.append(
            f"{path.length:>4} {path.crossing:<10} {label:<6} {path.signature}"
        )
    return "\n".join(lines)


def cmd_baselines(args: argparse.Namespace) -> str:
    """Unsupervised baselines vs label-free ActiveIter lower bound."""
    from repro.baselines import DegreeMatcher, IsoRank

    pair = foursquare_twitter_like(scale=args.scale, seed=args.seed)
    k = pair.anchor_count()
    lines = [
        f"Unsupervised alignment on scale={args.scale} ({k} true anchors)",
        f"{'method':<28}{'matched':>9}{'correct':>9}{'precision':>11}",
    ]
    methods = {
        "DegreeMatcher": DegreeMatcher(),
        "IsoRank (topology only)": IsoRank(use_attributes=False),
        "IsoRank (+attributes)": IsoRank(use_attributes=True),
    }
    for name, model in methods.items():
        matches = model.fit(pair).align(pair, top_k=k)
        correct = sum(1 for match in matches if pair.is_anchor(match))
        precision = correct / max(1, len(matches))
        lines.append(
            f"{name:<28}{len(matches):>9}{correct:>9}{precision:>11.3f}"
        )
    return "\n".join(lines)


def cmd_validate(args: argparse.Namespace) -> str:
    """Data integrity report for the generated dataset."""
    from repro.networks.validation import check_aligned_pair, check_network

    pair = foursquare_twitter_like(scale=args.scale, seed=args.seed)
    reports = [
        check_network(pair.left),
        check_network(pair.right),
        check_aligned_pair(pair),
    ]
    return "\n\n".join(report.format() for report in reports)


def cmd_stats(args: argparse.Namespace) -> str:
    """Per-structure support and separation statistics."""
    from repro.meta.statistics import family_statistics, format_family_statistics

    pair = foursquare_twitter_like(scale=args.scale, seed=args.seed)
    return format_family_statistics(family_statistics(pair))


def _method_knob_lineup(args: argparse.Namespace):
    """Lineup for the --model/--feature-map knobs, or None for defaults."""
    if args.model == "ridge" and args.feature_map is None:
        return None
    suffix = args.model + (f"+{args.feature_map}" if args.feature_map else "")
    return [
        MethodSpec(
            name=f"Iter-MPMD[{suffix}]",
            kind="iterative",
            model=args.model,
            unlabeled_C=args.unlabeled_c,
            feature_map=args.feature_map,
        )
    ]


def cmd_evolve(args: argparse.Namespace) -> str:
    """Evolving-network scenario: scripted drift, delta vs full recount."""
    from repro.engine.evolution import (
        scripted_churn_schedule,
        scripted_delta_schedule,
    )
    from repro.eval.experiment import format_evolve_outcome, run_evolve_scenario
    from repro.eval.protocol import ProtocolConfig
    from repro.eval.sweeps import evolve_sweep_methods, run_evolve_sweep

    # The schedule is built from (and does not mutate) a base pair;
    # hand that same pair to the scenario's first build instead of
    # generating the dataset a third time.
    prebuilt = [foursquare_twitter_like(scale=args.scale, seed=args.seed)]

    def make_pair():
        if prebuilt:
            return prebuilt.pop()
        return foursquare_twitter_like(scale=args.scale, seed=args.seed)

    if args.churn:
        schedule = scripted_churn_schedule(
            prebuilt[0],
            events=args.events,
            seed=args.seed,
            users_per_event=args.users_per_event,
            posts_per_event=args.posts_per_event,
            edges_per_event=args.edges_per_event,
        )
    else:
        schedule = scripted_delta_schedule(
            prebuilt[0],
            events=args.events,
            seed=args.seed,
            users_per_event=args.users_per_event,
            posts_per_event=args.posts_per_event,
            edges_per_event=args.edges_per_event,
        )
    session_options = {}
    if args.compact_every is not None:
        session_options["compact_every"] = args.compact_every
    if args.strict_deltas:
        session_options["strict_deltas"] = True
    config = ProtocolConfig(
        np_ratio=args.np_ratio, sample_ratio=1.0, n_repeats=1, seed=args.seed
    )
    if args.sweep:
        # Drifting method sweep: the full lineup (streamed SVM included,
        # plus any --model/--feature-map variant) is re-evaluated after
        # every scheduled delta.
        methods = evolve_sweep_methods() + (_method_knob_lineup(args) or [])
        outcome = run_evolve_sweep(
            make_pair,
            config,
            schedule,
            methods=methods,
            seed=args.seed,
            session_options=session_options,
        )
    else:
        outcome = run_evolve_scenario(
            make_pair,
            config,
            schedule,
            methods=_method_knob_lineup(args),
            seed=args.seed,
            session_options=session_options,
        )
    return format_evolve_outcome(outcome)


def cmd_experiment(args: argparse.Namespace) -> str:
    """One custom experiment lineup with the model/feature-map knobs."""
    from repro.eval.protocol import ProtocolConfig

    pair = foursquare_twitter_like(scale=args.scale, seed=args.seed)
    suffix = args.model + (f"+{args.feature_map}" if args.feature_map else "")
    if args.streamed:
        suffix += "+streamed"
    methods = [
        MethodSpec(
            name=f"ActiveIter-{args.budget}[{suffix}]",
            kind="active",
            budget=args.budget,
            model=args.model,
            unlabeled_C=args.unlabeled_c,
            feature_map=args.feature_map,
            streamed=args.streamed,
        ),
        MethodSpec(
            name=f"Iter-MPMD[{suffix}]",
            kind="iterative",
            model=args.model,
            unlabeled_C=args.unlabeled_c,
            feature_map=args.feature_map,
            streamed=args.streamed,
        ),
        MethodSpec(
            name="SVM-MPMD" + ("[streamed]" if args.streamed else ""),
            kind="svm",
            feature_map=args.feature_map,
            streamed=args.streamed,
        ),
    ]
    config = ProtocolConfig(
        np_ratio=args.np_ratio,
        sample_ratio=args.sample_ratio,
        n_repeats=args.repeats,
        seed=args.seed,
    )
    outcome = run_experiment(pair, config, methods, workers=args.workers)
    title = (
        f"Custom lineup (model={args.model}, "
        f"feature-map={args.feature_map or 'none'}, "
        f"streamed={args.streamed})"
    )
    return format_single_outcome(title, outcome)


def _engine_active_setup(args: argparse.Namespace):
    """Deterministic pair/split/model construction for checkpoint/resume.

    Both ``engine checkpoint`` and ``engine resume`` (and the
    uninterrupted reference run) must build the *same* fit from the CLI
    arguments alone — same split, oracle, strategy and session anchors —
    so a resumed run can be compared byte-for-byte.
    """
    from repro.active.oracle import LabelOracle
    from repro.core.activeiter import ActiveIter
    from repro.core.base import AlignmentTask
    from repro.engine import AlignmentSession
    from repro.eval.protocol import ProtocolConfig, build_splits
    from repro.ml.backends import make_backend

    pair = foursquare_twitter_like(scale=args.scale, seed=args.seed)
    config = ProtocolConfig(
        np_ratio=args.np_ratio, sample_ratio=1.0, n_repeats=1, seed=args.seed
    )
    split = next(iter(build_splits(pair, config)))
    positives = {
        split.candidates[i]
        for i in range(len(split.candidates))
        if split.truth[i] == 1
    }
    model_name = getattr(args, "model", "ridge")
    feature_map = getattr(args, "feature_map", None)

    def build(checkpoint=None, store=None):
        session = AlignmentSession(
            pair, known_anchors=split.train_positive_pairs, store=store
        )
        candidates = list(split.candidates)
        task = AlignmentTask(
            pairs=candidates,
            X=session.extract(candidates),
            labeled_indices=split.train_indices,
            labeled_values=split.truth[split.train_indices],
        )
        backend = None
        if model_name != "ridge" or feature_map is not None:
            backend = make_backend(
                model_name,
                seed=args.seed,
                feature_map=feature_map,
                unlabeled_C=getattr(args, "unlabeled_c", 0.1),
            )
        model = ActiveIter(
            LabelOracle(positives, budget=args.budget),
            batch_size=args.batch,
            session=session,
            refresh_features=True,
            checkpoint=checkpoint,
            backend=backend,
            positive_threshold=(
                0.0 if model_name.startswith("svm") else 0.5
            ),
        )
        return model, task, session

    return build


def _cmd_engine_checkpoint(args: argparse.Namespace) -> str:
    """Run a checkpointed active fit (optionally crashing mid-loop)."""
    from repro.exceptions import CheckpointInterrupt
    from repro.store import SessionCheckpoint

    if args.store_dir is None:
        raise SystemExit("engine checkpoint requires --store-dir")
    build = _engine_active_setup(args)
    checkpoint = SessionCheckpoint(
        args.store_dir, interrupt_after=args.interrupt_after
    )
    model, task, session = build(checkpoint=checkpoint, store=args.store_dir)
    lines = [
        (
            f"Checkpointed active fit (budget={args.budget}, "
            f"batch={args.batch}, store={args.store_dir})"
        )
    ]
    try:
        with session:
            model.fit(task)
    except CheckpointInterrupt as interrupt:
        lines.append(f"interrupted: {interrupt}")
        lines.append(
            "resume with: engine resume --store-dir "
            f"{args.store_dir} (same --scale/--seed/--np-ratio/--budget/"
            "--batch/--model flags)"
        )
    else:
        lines.append(
            f"completed in {model.result_.n_rounds} rounds, "
            f"{len(model.queried_)} labels bought; checkpoint cleared"
        )
    lines.append(f"checkpoint saves: {checkpoint.saves}")
    return "\n".join(lines)


def _cmd_engine_resume(args: argparse.Namespace) -> str:
    """Resume a checkpointed fit and verify against an uninterrupted run."""
    import numpy as np

    from repro.store import SessionCheckpoint

    if args.store_dir is None:
        raise SystemExit("engine resume requires --store-dir")
    checkpoint = SessionCheckpoint(args.store_dir)
    if not checkpoint.exists():
        raise SystemExit(
            f"no checkpoint found under {args.store_dir}; "
            "run `engine checkpoint --store-dir ...` first"
        )
    build = _engine_active_setup(args)
    model, task, session = build(checkpoint=checkpoint, store=args.store_dir)
    with session:
        model.fit(task)
    reference, reference_task, reference_session = build()
    with reference_session:
        reference.fit(reference_task)
    identical = (
        model.queried_ == reference.queried_
        and np.array_equal(model.labels_, reference.labels_)
        and np.array_equal(model.weights_, reference.weights_)
    )
    return "\n".join(
        [
            (
                f"Resumed active fit from {checkpoint.path}: "
                f"{model.result_.n_rounds} total rounds, "
                f"{len(model.queried_)} labels bought"
            ),
            (
                "byte-identical to uninterrupted run: "
                f"{identical} (queried, labels, weights)"
            ),
        ]
    )


def cmd_worker(args: argparse.Namespace) -> str:
    """Serve RPC jobs until shut down (blocks; Ctrl-C to stop)."""
    from repro.store.rpc import WorkerServer, parse_address

    host, port = parse_address(args.listen)
    server = WorkerServer(
        host,
        port,
        args.store_dir,
        cache_limit_bytes=args.cache_bytes,
        delay_ms=args.delay_ms,
    )
    bound_host, bound_port = server.address
    # The first stdout line is the contract test/bench spawners read to
    # learn the bound port (--listen HOST:0 picks a free one).
    print(f"listening on {bound_host}:{bound_port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return "worker stopped"


def cmd_trace(args: argparse.Namespace) -> str:
    """Summarize or tree-render a trace JSONL file."""
    from repro.obs.report import (
        format_trace_trees,
        load_spans,
        summarize_spans,
    )

    try:
        spans = load_spans(args.trace_file, include_workers=not args.no_workers)
    except FileNotFoundError as missing:
        raise SystemExit(str(missing))
    if args.action == "tree":
        return format_trace_trees(spans, trace_id=args.trace_id)
    return summarize_spans(spans)


def cmd_engine(args: argparse.Namespace) -> str:
    """Engine diagnostics, plus the checkpoint/resume workflow."""
    from repro.engine import AlignmentSession, CandidateGenerator, make_executor
    from repro.eval.timing import (
        compare_incremental_paths,
        compare_parallel_paths,
        compare_store_paths,
        compare_streamed_fit,
        format_incremental_comparison,
        format_parallel_comparison,
        format_store_comparison,
        format_streamed_fit,
    )
    from repro.obs.report import format_metrics_snapshot

    if args.action == "checkpoint":
        return _cmd_engine_checkpoint(args)
    if args.action == "resume":
        return _cmd_engine_resume(args)

    rpc_hosts = [h for h in (args.rpc_hosts or "").split(",") if h]
    if args.executor == "rpc" and not rpc_hosts:
        raise SystemExit("--executor rpc requires --rpc-hosts HOST:PORT,...")
    pair = foursquare_twitter_like(scale=args.scale, seed=args.seed)
    comparison = compare_incremental_paths(
        pair,
        np_ratio=args.np_ratio,
        budget=args.budget,
        batch_size=args.batch,
        seed=args.seed,
    )
    # The context managers guarantee the pool (and arena handles) are
    # released even when a diagnostic below raises.
    with make_executor(
        args.executor, args.workers, rpc_hosts, rpc_pipeline=args.rpc_pipeline
    ) as executor:
        with AlignmentSession(
            pair,
            known_anchors=pair.anchors,
            workers=executor,
            store=args.store_dir,
        ) as session:
            generator = CandidateGenerator.from_support(session)
            pruned = generator.count()
            full_space = pair.candidate_space_size()
            lines = [
                format_incremental_comparison(comparison),
                "",
                "Candidate streaming (support pruning, all anchors known):",
                (
                    f"  |U1|x|U2| = {full_space}  ->  {pruned} supported "
                    f"pairs ({pruned / max(1, full_space):.1%} of the cross "
                    "product)"
                ),
                (
                    f"  session stats: workers={session.workers} "
                    f"executor={session.executor.kind} "
                    f"{session.stats.summary()}"
                ),
                "",
                "Metrics registry (session + executor):",
                format_metrics_snapshot(session.metrics_snapshot()),
            ]
    if args.workers > 1 and args.executor == "thread":
        parallel = compare_parallel_paths(
            pair,
            workers=args.workers,
            np_ratio=args.np_ratio,
            seed=args.seed,
        )
        lines.extend(["", format_parallel_comparison(parallel)])
    if args.store_dir is not None:
        store = compare_store_paths(
            pair,
            args.store_dir,
            executor=args.executor,
            workers=args.workers,
            np_ratio=args.np_ratio,
            seed=args.seed,
            addresses=rpc_hosts,
        )
        lines.extend(["", format_store_comparison(store)])
    if args.streamed or args.model != "ridge" or args.feature_map is not None:
        streamed = compare_streamed_fit(
            pair,
            np_ratio=args.np_ratio,
            budget=args.budget,
            batch_size=args.batch,
            seed=args.seed,
            model=args.model,
            feature_map=args.feature_map,
            unlabeled_C=args.unlabeled_c,
        )
        lines.extend(["", format_streamed_fit(streamed)])
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate tables/figures of the ActiveIter paper.",
    )
    parser.add_argument("--scale", default="small", help="dataset scale preset")
    parser.add_argument("--seed", type=int, default=7, help="global seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table2", help="dataset statistics")

    table3 = sub.add_parser("table3", help="NP-ratio sweep")
    table3.add_argument(
        "--np-ratios", type=_parse_int_list, default=[5, 10, 20, 50]
    )
    table3.add_argument("--sample-ratio", type=float, default=0.6)
    table3.add_argument("--repeats", type=int, default=3)

    table4 = sub.add_parser("table4", help="sample-ratio sweep")
    table4.add_argument(
        "--sample-ratios", type=_parse_float_list, default=[0.2, 0.6, 1.0]
    )
    table4.add_argument("--np-ratio", type=int, default=20)
    table4.add_argument("--repeats", type=int, default=3)

    fig3 = sub.add_parser("fig3", help="convergence traces")
    fig3.add_argument("--np-ratios", type=_parse_int_list, default=[10, 30, 50])

    fig4 = sub.add_parser("fig4", help="scalability timing")
    fig4.add_argument(
        "--np-ratios", type=_parse_int_list, default=[5, 10, 20, 30, 40, 50]
    )
    fig4.add_argument("--budget", type=int, default=50)

    fig5 = sub.add_parser("fig5", help="budget sweep")
    fig5.add_argument(
        "--budgets", type=_parse_int_list, default=[10, 25, 50, 75, 100]
    )
    fig5.add_argument("--np-ratio", type=int, default=20)
    fig5.add_argument("--sample-ratio", type=float, default=0.6)
    fig5.add_argument("--repeats", type=int, default=3)

    discover = sub.add_parser("discover", help="automatic meta path discovery")
    discover.add_argument("--max-length", type=int, default=4)
    discover.add_argument("--words", action="store_true")

    sub.add_parser("baselines", help="unsupervised baseline comparison")
    sub.add_parser("validate", help="dataset integrity report")
    sub.add_parser("stats", help="meta structure statistics")

    evolve = sub.add_parser(
        "evolve",
        help="evolving-network scenario: delta path vs full recount",
    )
    evolve.add_argument("--events", type=int, default=4)
    evolve.add_argument("--np-ratio", type=int, default=10)
    evolve.add_argument("--users-per-event", type=int, default=1)
    evolve.add_argument("--posts-per-event", type=int, default=4)
    evolve.add_argument("--edges-per-event", type=int, default=6)
    evolve.add_argument(
        "--sweep",
        action="store_true",
        help=(
            "re-evaluate the full method lineup (streamed SVM included) "
            "after every scheduled network delta"
        ),
    )
    evolve.add_argument(
        "--churn",
        action="store_true",
        help=(
            "use the adversarial churn schedule (interleaved node/edge "
            "removals and attribute churn) instead of pure growth"
        ),
    )
    evolve.add_argument(
        "--compact-every",
        type=int,
        default=None,
        metavar="N",
        help=(
            "auto-compact the session (drop tombstoned slots, truncate "
            "the evolution log) every N applied events"
        ),
    )
    evolve.add_argument(
        "--strict-deltas",
        action="store_true",
        help=(
            "verify every event-sourced delta fold against a fresh "
            "matrix export (slow; for debugging custom schedules)"
        ),
    )
    _add_model_knobs(evolve)

    experiment = sub.add_parser(
        "experiment",
        help="one custom experiment lineup with model/feature-map knobs",
    )
    experiment.add_argument("--np-ratio", type=int, default=10)
    experiment.add_argument("--sample-ratio", type=float, default=0.6)
    experiment.add_argument("--repeats", type=int, default=1)
    experiment.add_argument("--budget", type=int, default=50)
    experiment.add_argument("--workers", type=int, default=None)
    experiment.add_argument(
        "--streamed",
        action="store_true",
        help="run every method over streamed candidate blocks",
    )
    _add_model_knobs(experiment)

    engine = sub.add_parser(
        "engine",
        help="engine diagnostics and the checkpoint/resume workflow",
    )
    engine.add_argument(
        "action",
        nargs="?",
        default="diagnose",
        choices=["diagnose", "checkpoint", "resume"],
        help=(
            "diagnose (default) prints engine comparisons; checkpoint runs "
            "a durable active fit; resume continues one from --store-dir"
        ),
    )
    # At small scales the conflict strategy buys positives reliably only
    # when positives are a sizable slice of H; 5 keeps the demo honest.
    engine.add_argument("--np-ratio", type=int, default=5)
    engine.add_argument("--budget", type=int, default=30)
    engine.add_argument("--batch", type=int, default=2)
    engine.add_argument(
        "--workers",
        type=int,
        default=1,
        help="executor parallelism; > 1 adds an executor-vs-serial race",
    )
    engine.add_argument(
        "--executor",
        default="thread",
        choices=["serial", "thread", "process", "rpc"],
        help=(
            "execution backend used when --workers > 1 "
            "(rpc also needs --rpc-hosts)"
        ),
    )
    engine.add_argument(
        "--rpc-hosts",
        default=None,
        metavar="HOST:PORT,...",
        help=(
            "comma-separated endpoints of running "
            "`python -m repro.cli worker` processes (--executor rpc)"
        ),
    )
    engine.add_argument(
        "--rpc-pipeline",
        type=int,
        default=None,
        metavar="N",
        help=(
            "per-worker in-flight job window for --executor rpc "
            "(1 = blocking one-job-per-round-trip dispatch; "
            "default: the executor's own depth)"
        ),
    )
    engine.add_argument(
        "--store-dir",
        default=None,
        help=(
            "disk-backed matrix store directory: spills count matrices to "
            "disk (memory-mapped reads) and holds checkpoint files"
        ),
    )
    engine.add_argument(
        "--interrupt-after",
        type=int,
        default=None,
        help=(
            "engine checkpoint only: simulate a crash after N completed "
            "query rounds (the checkpoint survives for engine resume)"
        ),
    )
    engine.add_argument(
        "--streamed",
        action="store_true",
        help="also race the streamed active fit against the materialized task",
    )
    _add_model_knobs(engine)

    worker = sub.add_parser(
        "worker",
        help="serve RPC block-descriptor jobs to a remote engine driver",
    )
    worker.add_argument(
        "--listen",
        required=True,
        metavar="HOST:PORT",
        help="endpoint to listen on (port 0 picks a free port)",
    )
    worker.add_argument(
        "--store-dir",
        required=True,
        help=(
            "local directory for the worker's content-addressed blob "
            "cache and per-driver arena replicas"
        ),
    )
    worker.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        metavar="N",
        help=(
            "LRU byte cap on the shared blob cache; least-recently-used "
            "blobs are evicted after each sync (blobs referenced by a "
            "live replica manifest are never dropped); default: unbounded"
        ),
    )
    worker.add_argument(
        "--delay-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help=(
            "fault injection: sleep MS milliseconds before handling each "
            "frame, simulating network RTT (the RPC bench uses 5 ms to "
            "make the pipelining win measurable on one host)"
        ),
    )

    for command in (engine, evolve, experiment, worker):
        _add_obs_knobs(command)

    trace = sub.add_parser(
        "trace",
        help="read back a --trace-out JSONL file (summary or span tree)",
    )
    trace.add_argument(
        "action",
        choices=["summarize", "tree"],
        help="summarize aggregates per span name; tree renders parentage",
    )
    trace.add_argument(
        "trace_file",
        metavar="TRACE.jsonl",
        help="trace file written by --trace-out (rotations are included)",
    )
    trace.add_argument(
        "--trace-id",
        default=None,
        help="tree only: restrict the rendering to one trace id",
    )
    trace.add_argument(
        "--no-workers",
        action="store_true",
        help="skip trace-worker-*.jsonl siblings from same-host workers",
    )

    return parser


def _add_model_knobs(parser: argparse.ArgumentParser) -> None:
    """Attach the model-backend knobs shared by engine/evolve/experiment."""
    parser.add_argument(
        "--model",
        default="ridge",
        choices=["ridge", "svm", "svm-pu"],
        help="model backend of the internal fit step (default: ridge)",
    )
    parser.add_argument(
        "--unlabeled-c",
        type=float,
        default=0.1,
        metavar="C",
        help=(
            "box constraint of unlabeled rows under --model svm-pu "
            "(default: 0.1)"
        ),
    )
    parser.add_argument(
        "--feature-map",
        default=None,
        choices=["nystroem", "fourier", "poly", "linear"],
        help="kernel feature map composed into the fit (default: none)",
    )


def _add_obs_knobs(parser: argparse.ArgumentParser) -> None:
    """Attach the observability knobs (tracing + logging) to a command."""
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help=(
            "stream repro.obs spans to this JSONL file (read it back "
            "with `trace summarize` / `trace tree`)"
        ),
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error"],
        help="enable package logging at this level (off by default)",
    )
    parser.add_argument(
        "--log-format",
        default="text",
        choices=["text", "json"],
        help="log line format used with --log-level (default: text)",
    )


def _setup_observability(args: argparse.Namespace):
    """Honor --trace-out/--log-level; returns the root span or None."""
    import logging

    if getattr(args, "log_level", None) is not None:
        from repro.obs import logging_setup

        logging_setup(
            level=getattr(logging, args.log_level.upper()),
            fmt=args.log_format,
        )
    if getattr(args, "trace_out", None) is not None:
        from repro.obs import configure_tracing

        tracer = configure_tracing(args.trace_out)
        return tracer.span(f"cli.{args.command}")
    return None


_COMMANDS = {
    "table2": cmd_table2,
    "table3": cmd_table3,
    "table4": cmd_table4,
    "fig3": cmd_fig3,
    "fig4": cmd_fig4,
    "fig5": cmd_fig5,
    "discover": cmd_discover,
    "baselines": cmd_baselines,
    "validate": cmd_validate,
    "stats": cmd_stats,
    "evolve": cmd_evolve,
    "experiment": cmd_experiment,
    "engine": cmd_engine,
    "worker": cmd_worker,
    "trace": cmd_trace,
}


def main(argv: Sequence[str] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    root = _setup_observability(args)
    if root is not None:
        # One root span per invocation: every span the command emits
        # (driver, process workers, RPC fleet) shares its trace id.
        with root:
            output = _COMMANDS[args.command](args)
    else:
        output = _COMMANDS[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
