"""Disk-backed matrix arena: memory-mapped storage for engine state.

A :class:`MatrixArena` owns one ``store_dir`` holding numpy ``.npy``
files plus a versioned JSON manifest.  Three kinds of entries exist:

* **CSR matrices** — stored as three component arrays
  (``data``/``indices``/``indptr``); :meth:`get` reconstructs the
  matrix over ``np.load(..., mmap_mode="r")`` views, so reading a
  matrix costs no resident memory beyond the pages actually touched;
* **dense arrays** — one ``.npy`` file, also served memory-mapped;
* **objects** — arbitrary picklable payloads (vocabulary/position
  maps, small metadata records).

Writes are **atomic**: every component is written to a temporary file
and ``os.replace``-d into place, and the manifest is rewritten the same
way with a monotonically increasing ``version``.  A reader (including
one in another process — the :class:`~repro.engine.parallel`
``ProcessExecutor`` workers) therefore never observes a half-written
matrix, and can use the version counter to detect staleness cheaply.

Entries are opened **lazily** and the open (mmap-backed) handles are
cached per name; :meth:`put` and :meth:`drop` invalidate the handle so
rewritten matrices are re-opened on next access.  Matrices are stored
with sorted indices in canonical format, and the reconstructed CSR is
flagged accordingly so no downstream consumer ever attempts an in-place
sort of the read-only mapped arrays.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import os
import pickle
import re
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np
from scipy import sparse

from repro.exceptions import StoreError

logger = logging.getLogger(__name__)

#: Manifest format history: **1** — entries with kind/shape/files;
#: **2** — every entry additionally records a SHA-256 content digest per
#: component file (``"digests"``), the key the RPC arena transport
#: de-duplicates on.  Version-1 manifests still load — their entries
#: simply carry no digests (and cannot be verified or synced remotely).
_FORMAT_VERSION = 2

#: Manifest format versions :meth:`MatrixArena._load_manifest` accepts.
_READABLE_FORMATS = (1, 2)

#: Characters allowed verbatim inside stored file stems.
_SAFE = re.compile(r"[^A-Za-z0-9._-]+")

#: Unique-per-call suffix source for temporary files.  PID alone is not
#: enough: two threads spilling the same entry (e.g. both racing to
#: memoize one shared counting-engine product) would collide on one tmp
#: path and one writer's ``os.replace`` would crash or publish a
#: truncated file.  ``itertools.count`` is atomic under the GIL.
_TMP_COUNTER = itertools.count()


def _tmp_path(path: Path) -> Path:
    """A collision-free temporary sibling of ``path``."""
    return path.with_suffix(f".tmp.{os.getpid()}.{next(_TMP_COUNTER)}")


def _slot_stem(name: str) -> str:
    """Filesystem-safe, collision-free stem for an entry name."""
    digest = hashlib.sha1(name.encode("utf-8")).hexdigest()[:10]
    readable = _SAFE.sub("_", name).strip("_")[:60] or "entry"
    return f"{readable}-{digest}"


def file_sha256(path: Union[str, Path]) -> str:
    """SHA-256 hex digest of one file, read in chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class MatrixArena:
    """Versioned, memory-mapped matrix store rooted at one directory.

    Parameters
    ----------
    store_dir:
        Directory holding the manifest and data files; created (with
        parents) when missing.  An existing manifest is loaded, so an
        arena can be reopened across processes and sessions.

    Notes
    -----
    The arena is the unit of sharing between processes: every worker
    opens the same ``store_dir`` and the OS page cache serves one
    physical copy of each matrix to all of them — matrices are never
    pickled across process boundaries.
    """

    def __init__(self, store_dir: Union[str, Path]) -> None:
        self.store_dir = Path(store_dir)
        self.data_dir = self.store_dir / "data"
        self.manifest_path = self.store_dir / "manifest.json"
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self._entries: Dict[str, Dict] = {}
        self._version = 0
        self._open: Dict[str, object] = {}
        # Serializes manifest/entry mutation: a threaded session spills
        # several structures concurrently into one arena.
        self._lock = threading.Lock()
        if self.manifest_path.exists():
            self._load_manifest()

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def _load_manifest(self) -> None:
        try:
            payload = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise StoreError(
                f"unreadable arena manifest at {self.manifest_path}: {error}"
            ) from None
        version = payload.get("format_version")
        if version not in _READABLE_FORMATS:
            raise StoreError(
                f"unsupported arena manifest format {version!r} "
                f"(this build writes {_FORMAT_VERSION})"
            )
        self._entries = dict(payload.get("entries", {}))
        self._version = int(payload.get("version", 0))
        logger.debug(
            "loaded arena manifest %s: version=%d entries=%d",
            self.manifest_path,
            self._version,
            len(self._entries),
        )

    def _write_manifest(self) -> None:
        self._version += 1
        payload = {
            "format_version": _FORMAT_VERSION,
            "version": self._version,
            "entries": self._entries,
        }
        tmp = _tmp_path(self.manifest_path)
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        os.replace(tmp, self.manifest_path)

    def refresh(self) -> int:
        """Re-read the manifest (another process may have written it)."""
        with self._lock:
            if self.manifest_path.exists():
                stale = set(self._entries)
                self._load_manifest()
                for name in stale | set(self._entries):
                    self._open.pop(name, None)
            return self._version

    @property
    def version(self) -> int:
        """Monotonic manifest version; bumps on every put/drop."""
        return self._version

    def keys(self) -> List[str]:
        """Names of all stored entries."""
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _atomic_save(self, path: Path, array: np.ndarray) -> str:
        tmp = _tmp_path(path)
        with open(tmp, "wb") as handle:
            np.save(handle, np.ascontiguousarray(array))
        # Hash the finished file (cheap: the pages are still hot) so the
        # digest covers exactly the bytes a remote sync would ship.
        digest = file_sha256(tmp)
        os.replace(tmp, path)
        return digest

    def put(self, name: str, matrix: sparse.spmatrix) -> None:
        """Store one CSR matrix (atomically, canonicalized)."""
        csr = matrix.tocsr()
        csr.sum_duplicates()
        csr.sort_indices()
        stem = _slot_stem(name)
        files = {
            "data": f"{stem}.data.npy",
            "indices": f"{stem}.indices.npy",
            "indptr": f"{stem}.indptr.npy",
        }
        digests = {
            component: self._atomic_save(
                self.data_dir / filename, getattr(csr, component)
            )
            for component, filename in files.items()
        }
        with self._lock:
            self._entries[name] = {
                "kind": "csr",
                "shape": [int(csr.shape[0]), int(csr.shape[1])],
                "nnz": int(csr.nnz),
                "dtype": str(csr.data.dtype),
                "index_dtype": str(csr.indices.dtype),
                "files": files,
                "digests": digests,
            }
            self._open.pop(name, None)
            self._write_manifest()

    def put_array(self, name: str, array: np.ndarray) -> None:
        """Store one dense numpy array (atomically)."""
        array = np.asarray(array)
        stem = _slot_stem(name)
        filename = f"{stem}.npy"
        digest = self._atomic_save(self.data_dir / filename, array)
        with self._lock:
            self._entries[name] = {
                "kind": "array",
                "shape": list(array.shape),
                "dtype": str(array.dtype),
                "files": {"array": filename},
                "digests": {"array": digest},
            }
            self._open.pop(name, None)
            self._write_manifest()

    def put_object(self, name: str, payload: object) -> None:
        """Store one picklable object (atomically)."""
        stem = _slot_stem(name)
        filename = f"{stem}.pkl"
        path = self.data_dir / filename
        tmp = _tmp_path(path)
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        with self._lock:
            self._entries[name] = {
                "kind": "object",
                "files": {"object": filename},
                "digests": {"object": hashlib.sha256(blob).hexdigest()},
            }
            self._open.pop(name, None)
            self._write_manifest()

    def verify(self, name: str) -> bool:
        """Integrity-check one entry against its recorded digests.

        Re-hashes every component file and compares against the SHA-256
        digests the manifest recorded at ``put`` time.  Returns ``True``
        when everything matches; raises :class:`StoreError` on a missing
        entry, a missing/unreadable file, a digest mismatch, or an entry
        written by a digest-less (format-1) manifest.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise StoreError(f"arena has no entry named {name!r}")
            digests = entry.get("digests")
            if not digests:
                raise StoreError(
                    f"arena entry {name!r} predates content digests "
                    "(format-1 manifest); rewrite it to make it verifiable"
                )
            files = dict(entry["files"])
        for component, filename in files.items():
            path = self.data_dir / filename
            try:
                actual = file_sha256(path)
            except OSError as error:
                raise StoreError(
                    f"arena entry {name!r} component {component!r} is "
                    f"unreadable: {error}"
                ) from None
            if actual != digests[component]:
                raise StoreError(
                    f"arena entry {name!r} component {component!r} is "
                    f"corrupt: stored digest {digests[component][:12]}..., "
                    f"file hashes to {actual[:12]}..."
                )
        return True

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _entry(self, name: str, kind: str) -> Dict:
        entry = self._entries.get(name)
        if entry is None:
            raise StoreError(f"arena has no entry named {name!r}")
        if entry["kind"] != kind:
            raise StoreError(
                f"arena entry {name!r} is a {entry['kind']}, not a {kind}"
            )
        return entry

    def get(self, name: str) -> sparse.csr_matrix:
        """Memory-mapped view of a stored CSR matrix (lazy, cached)."""
        with self._lock:
            cached = self._open.get(name)
            if isinstance(cached, sparse.csr_matrix):
                return cached
            entry = self._entry(name, "csr")
            files = entry["files"]
            data = np.load(self.data_dir / files["data"], mmap_mode="r")
            indices = np.load(self.data_dir / files["indices"], mmap_mode="r")
            indptr = np.load(self.data_dir / files["indptr"], mmap_mode="r")
            matrix = sparse.csr_matrix(
                (data, indices, indptr), shape=tuple(entry["shape"]), copy=False
            )
            # Stored canonical; flag it so no reader tries an in-place
            # sort of the read-only mapped component arrays.
            matrix.has_sorted_indices = True
            matrix.has_canonical_format = True
            # Mark provenance so writers can skip re-spilling a matrix
            # that is already served from this arena.
            matrix._arena_slot = name
            self._open[name] = matrix
            return matrix

    def get_array(self, name: str) -> np.ndarray:
        """Memory-mapped view of a stored dense array (lazy, cached)."""
        with self._lock:
            cached = self._open.get(name)
            if isinstance(cached, np.ndarray):
                return cached
            entry = self._entry(name, "array")
            array = np.load(
                self.data_dir / entry["files"]["array"], mmap_mode="r"
            )
            self._open[name] = array
            return array

    def get_object(self, name: str) -> object:
        """A stored pickled object (loaded fresh on every call)."""
        entry = self._entry(name, "object")
        return pickle.loads(
            (self.data_dir / entry["files"]["object"]).read_bytes()
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drop(self, name: str) -> bool:
        """Delete one entry and its files; returns whether it existed."""
        with self._lock:
            entry = self._entries.pop(name, None)
            self._open.pop(name, None)
            if entry is None:
                return False
            for filename in entry["files"].values():
                try:
                    (self.data_dir / filename).unlink()
                except FileNotFoundError:
                    pass
            self._write_manifest()
            return True

    def vacuum(self) -> Tuple[int, int]:
        """Delete data files no manifest entry references.

        Orphans accumulate from crashed writers (a ``.tmp`` file whose
        ``os.replace`` never ran) and from sessions of a previous
        manifest generation whose entries were since dropped or renamed.
        Called by session compaction so the on-disk footprint shrinks
        with the logical state.  In-flight temporary files (``.tmp.*``)
        are left alone — a live writer thread may still hold one.

        Returns ``(files_removed, bytes_freed)``.
        """
        removed = 0
        freed = 0
        with self._lock:
            referenced = {
                filename
                for entry in self._entries.values()
                for filename in entry["files"].values()
            }
            for path in self.data_dir.iterdir():
                if not path.is_file() or path.name in referenced:
                    continue
                if ".tmp." in path.name:
                    continue
                try:
                    size = path.stat().st_size
                    path.unlink()
                except OSError:  # pragma: no cover - concurrent delete
                    continue
                removed += 1
                freed += size
        if removed:
            logger.info(
                "arena vacuum at %s: removed %d orphan file(s), freed %d bytes",
                self.store_dir,
                removed,
                freed,
            )
        return removed, freed

    def nbytes(self) -> int:
        """Total on-disk size of all stored data files."""
        return sum(
            (self.data_dir / filename).stat().st_size
            for entry in self._entries.values()
            for filename in entry["files"].values()
            if (self.data_dir / filename).exists()
        )

    def release_pages(self) -> int:
        """Advise the kernel to drop resident pages of all open maps.

        The mappings are read-only views of immutable files, so dropped
        pages are simply re-faulted (from the page cache, usually) on
        the next access — values never change.  This is what keeps a
        store-backed session's *peak* RSS at the working set of the
        columns in flight instead of the sum of every matrix ever
        touched: callers release between independent units of work.
        Returns the number of maps advised (0 where ``madvise`` is
        unavailable).
        """
        import mmap as mmap_module

        if not hasattr(mmap_module, "MADV_DONTNEED"):  # pragma: no cover
            return 0
        released = 0
        with self._lock:
            for handle in self._open.values():
                if isinstance(handle, sparse.csr_matrix):
                    arrays = (handle.data, handle.indices, handle.indptr)
                else:
                    arrays = (handle,)
                for array in arrays:
                    base = array
                    while not isinstance(base, np.memmap) and (
                        getattr(base, "base", None) is not None
                    ):
                        base = base.base
                    raw = getattr(base, "_mmap", None)
                    if raw is None:
                        continue
                    try:
                        raw.madvise(mmap_module.MADV_DONTNEED)
                        released += 1
                    except (ValueError, OSError):  # pragma: no cover
                        pass  # closed map or filesystem without support
        return released

    def close(self) -> None:
        """Release cached handles (idempotent; files stay on disk)."""
        with self._lock:
            self._open.clear()

    def __enter__(self) -> "MatrixArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatrixArena({str(self.store_dir)!r}, entries={len(self._entries)}, "
            f"version={self._version})"
        )


def as_arena(
    store: Optional[Union[str, Path, "MatrixArena"]],
) -> Tuple[Optional["MatrixArena"], bool]:
    """Resolve a ``store`` knob into ``(arena, owned)``.

    ``None`` passes through; a path builds a private arena the caller
    owns (and should close); an existing arena is shared, not owned.
    """
    if store is None:
        return None, False
    if isinstance(store, MatrixArena):
        return store, False
    return MatrixArena(store), True
