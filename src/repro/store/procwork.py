"""Picklable work units resolved against a shared :class:`MatrixArena`.

The thread-pool execution layer ships *closures* over live session
state — free, because threads share memory.  A process pool cannot: its
work units must cross an ``exec`` boundary by pickle.  This module
defines the process-side of the store subsystem:

* :class:`ArenaSpec` — where the shared state lives (``store_dir``) and
  which manifest ``version`` the driver published before dispatching;
* :class:`BlockDescriptor` — one candidate block as index arrays, the
  only per-task payload (a few KiB, never a matrix — small enough that
  the RPC executor's protocol v3 batching coalesces several of these
  jobs into one frame, amortizing per-frame latency on the wire);
* module-level job functions (:func:`extract_block_job`,
  :func:`score_block_job`) that a ``ProcessPoolExecutor`` can pickle by
  reference;
* :class:`ArenaLinearScorer` — a picklable ``block -> scores`` callable
  for the streamed-selection sweep, where blocks arrive as user-id
  pairs rather than prebuilt index arrays.

Worker processes keep one :class:`_ArenaWorkerState` per ``store_dir``
in module globals: the arena is opened once, count matrices are served
as memory maps (the OS page cache shares one physical copy across all
workers), and the cached state reloads itself whenever the spec's
manifest version moves past the one it loaded.

Exactness: the feature kernel below is the *same* computation the
session performs — ``csr_values_at`` lookups, row+column sum
denominators, :func:`~repro.meta.proximity.dice_scores`, bias column —
over the very arrays the session flushed.  A process-pool extraction is
therefore byte-identical to the in-process one, which the store test
suite and ``bench_engine_store`` assert.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import StoreError
from repro.meta.proximity import csr_values_at, dice_scores
from repro.ml.backends import LinearModelState, apply_model_state
from repro.obs.tracing import NULL_TRACER, JsonlSink, TraceContext, Tracer
from repro.store.arena import MatrixArena
from repro.types import LinkPair

#: Arena entry holding the session-level metadata object.
SESSION_META = "session/meta"

#: Arena entry mapping structure name -> current count-matrix slot.
#: Indirection, because a structure's counts may be served from the
#: counting engine's own memoized slot (no duplicate storage) or from a
#: dedicated fold slot after delta updates.
SESSION_SLOTS = "session/slots"


def counts_slot(structure_name: str) -> str:
    """Arena entry name of one structure's dedicated count-matrix slot."""
    return f"counts/{structure_name}"


def row_sums_slot(structure_name: str) -> str:
    """Arena entry name of one structure's row-sum vector."""
    return f"sums/{structure_name}/rows"


def col_sums_slot(structure_name: str) -> str:
    """Arena entry name of one structure's column-sum vector."""
    return f"sums/{structure_name}/cols"


@dataclass(frozen=True)
class ArenaSpec:
    """Pointer to flushed session state: directory plus version stamp.

    ``version`` is the arena manifest version current when the driver
    flushed; workers holding older state reload before serving a task.

    ``trace`` optionally carries the driver's
    :class:`~repro.obs.tracing.TraceContext` into the worker process:
    when it names a ``sink_dir``, same-host workers append their job
    spans to ``trace-worker-<pid>.jsonl`` next to the driver's trace
    file, parented on the dispatching span.  ``None`` (tracing
    disabled) costs nothing.  Remote RPC workers see a re-mapped spec
    *without* the trace — their spans travel back inside the result
    envelope instead.
    """

    store_dir: str
    version: int
    trace: Optional[TraceContext] = None


@dataclass(frozen=True)
class BlockDescriptor:
    """One candidate block in index form — the picklable work unit."""

    offset: int
    left_indices: np.ndarray
    right_indices: np.ndarray

    def __len__(self) -> int:
        return int(self.left_indices.shape[0])


# ----------------------------------------------------------------------
# Worker-side state
# ----------------------------------------------------------------------
@dataclass
class _StructureView:
    """One structure's arena-served state, cached per worker process."""

    counts: object  # mmap-backed csr
    entry_keys: np.ndarray
    row_sums: np.ndarray
    col_sums: np.ndarray


class _ArenaWorkerState:
    """Per-process cache of one arena's session state."""

    def __init__(self, store_dir: str) -> None:
        self.arena = MatrixArena(store_dir)
        self.version: Optional[int] = None
        self.meta: Optional[Dict] = None
        self.slots: Dict[str, str] = {}
        self._structures: Dict[str, _StructureView] = {}

    def refresh(self, version: int) -> None:
        """Reload manifest-backed state when the driver moved past us."""
        if self.version == version and self.meta is not None:
            return
        current = self.arena.refresh()
        if current < version:
            raise StoreError(
                f"arena at {self.arena.store_dir} is at version {current}, "
                f"but the dispatched work expects version {version} — "
                "was flush_store() called before dispatch?"
            )
        self.meta = self.arena.get_object(SESSION_META)
        self.slots = self.arena.get_object(SESSION_SLOTS)
        self._structures.clear()
        self.version = version

    def _structure(self, name: str) -> _StructureView:
        view = self._structures.get(name)
        if view is None:
            counts = self.arena.get(self.slots[name])
            row_lengths = np.diff(counts.indptr)
            entry_keys = (
                np.repeat(
                    np.arange(counts.shape[0], dtype=np.int64), row_lengths
                )
                * counts.shape[1]
                + counts.indices
            )
            view = _StructureView(
                counts=counts,
                entry_keys=entry_keys,
                row_sums=self.arena.get_array(row_sums_slot(name)),
                col_sums=self.arena.get_array(col_sums_slot(name)),
            )
            self._structures[name] = view
        return view

    # ------------------------------------------------------------------
    def pairs_to_indices(
        self, block: Sequence[LinkPair]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Resolve user-id pairs against the stored position maps."""
        left_positions = self.meta["left_positions"]
        right_positions = self.meta["right_positions"]
        try:
            left = np.array(
                [left_positions[left_user] for left_user, _ in block],
                dtype=np.int64,
            )
            right = np.array(
                [right_positions[right_user] for _, right_user in block],
                dtype=np.int64,
            )
        except KeyError as missing:
            raise StoreError(
                f"candidate user {missing.args[0]!r} is not in the arena's "
                "stored position maps"
            ) from None
        return left, right

    def features(
        self, left_indices: np.ndarray, right_indices: np.ndarray
    ) -> np.ndarray:
        """Feature block — the session's extraction kernel, verbatim."""
        n_right = int(self.meta["n_right"])
        query_keys = left_indices * n_right + right_indices
        columns: List[np.ndarray] = []
        for name in self.meta["structure_names"]:
            view = self._structure(name)
            values = csr_values_at(
                view.counts,
                left_indices,
                right_indices,
                query_keys=query_keys,
                entry_keys=view.entry_keys,
            )
            denominators = (
                view.row_sums[left_indices] + view.col_sums[right_indices]
            )
            columns.append(dice_scores(values, denominators))
        if self.meta["include_bias"]:
            columns.append(
                np.ones(left_indices.shape[0], dtype=np.float64)
            )
        return np.column_stack(columns)


_STATES: Dict[str, _ArenaWorkerState] = {}

#: Per-process tracers keyed by sink directory; a worker process opens
#: its span file once and appends for the rest of its life.
_WORKER_TRACERS: Dict[str, Tracer] = {}


def _state_for(spec: ArenaSpec) -> _ArenaWorkerState:
    state = _STATES.get(spec.store_dir)
    if state is None:
        state = _ArenaWorkerState(spec.store_dir)
        _STATES[spec.store_dir] = state
    state.refresh(spec.version)
    return state


def job_span(spec: ArenaSpec, name: str, **attributes):
    """A worker-side span parented on the spec's driver context.

    Returns the shared no-op span when the spec carries no trace (the
    overwhelmingly common case) or no sink directory to write to.
    """
    trace = spec.trace
    if trace is None or trace.sink_dir is None:
        return NULL_TRACER.span(name)
    tracer = _WORKER_TRACERS.get(trace.sink_dir)
    if tracer is None:
        path = Path(trace.sink_dir) / f"trace-worker-{os.getpid()}.jsonl"
        tracer = Tracer(sink=JsonlSink(path))
        _WORKER_TRACERS[trace.sink_dir] = tracer
    return tracer.span(name, parent=trace, **attributes)


# ----------------------------------------------------------------------
# Job functions (module-level: pickled by reference)
# ----------------------------------------------------------------------
def extract_block_job(
    item: Tuple[ArenaSpec, BlockDescriptor],
) -> Tuple[int, np.ndarray]:
    """``(spec, descriptor) -> (offset, X_block)`` in a worker process."""
    spec, descriptor = item
    with job_span(spec, "procwork.extract_block", offset=descriptor.offset):
        state = _state_for(spec)
        return descriptor.offset, state.features(
            descriptor.left_indices, descriptor.right_indices
        )


def score_block_job(
    item: Tuple[ArenaSpec, BlockDescriptor, np.ndarray],
) -> Tuple[int, np.ndarray]:
    """``(spec, descriptor, w) -> (offset, X_block @ w)`` in a worker."""
    spec, descriptor, weights = item
    with job_span(spec, "procwork.score_block", offset=descriptor.offset):
        state = _state_for(spec)
        X = state.features(descriptor.left_indices, descriptor.right_indices)
        return descriptor.offset, X @ weights


def model_score_block_job(
    item: Tuple[ArenaSpec, BlockDescriptor, LinearModelState],
) -> Tuple[int, np.ndarray]:
    """Score one block through a full model state in a worker process.

    The model-backend seam's process work unit: features come off the
    shared arena, and the (picklable, plain-array)
    :class:`~repro.ml.backends.LinearModelState` carries everything a
    non-trivial model needs — a fitted feature map (e.g. Nyström
    landmarks, so the landmark transform itself runs worker-side),
    scaler statistics, linear coefficients.  The scoring kernel is
    :func:`~repro.ml.backends.apply_model_state`, the very function the
    in-process path calls, so a process-pool sweep is byte-identical to
    the inline one.
    """
    spec, descriptor, model_state = item
    with job_span(
        spec, "procwork.model_score_block", offset=descriptor.offset
    ):
        state = _state_for(spec)
        X = state.features(descriptor.left_indices, descriptor.right_indices)
        return descriptor.offset, apply_model_state(model_state, X)


@dataclass(frozen=True)
class ArenaLinearScorer:
    """Picklable ``block -> X_block @ w`` over arena-served features.

    The process analog of :func:`repro.engine.candidates.linear_scorer`:
    instead of closing over a live session it carries only the arena
    spec and the weight vector, and resolves blocks of ``(left_user,
    right_user)`` pairs against the arena's stored position maps inside
    the worker.
    """

    spec: ArenaSpec
    weights: np.ndarray

    def __call__(self, block: Sequence[LinkPair]) -> np.ndarray:
        with job_span(self.spec, "procwork.linear_scorer", block=len(block)):
            state = _state_for(self.spec)
            left, right = state.pairs_to_indices(block)
            return state.features(left, right) @ self.weights
