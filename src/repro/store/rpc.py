"""Multi-host RPC executor over a content-addressed arena transport.

The engine's picklable work units (:mod:`repro.store.procwork` block
descriptors and model states) already cross process boundaries on one
machine; this module ships the *same* units to long-lived workers on
other machines over a minimal stdlib TCP protocol, turning "one big
box" into a fleet without weakening the exactness contract — an RPC
run is byte-identical to the serial reference, gated by
``benchmarks/bench_engine_rpc.py``.

Three pieces share the wire format:

* **framing + envelopes** — length-prefixed frames carrying pickled
  dict envelopes, with a protocol-version handshake on connect;
* :class:`WorkerServer` — the worker side, launched via
  ``python -m repro.cli worker --listen HOST:PORT --store-dir DIR``.
  It keeps one *replica* per driver arena under its store dir and
  executes jobs against it, remapping the
  :class:`~repro.store.procwork.ArenaSpec` inside each work unit to
  the local replica path;
* :class:`RPCExecutor` — the driver side, an
  :class:`~repro.engine.parallel.Executor` implementation.  Before
  dispatching arena-backed jobs it runs the **arena transport**: the
  driver sends the manifest (entries now carry per-file SHA-256
  digests, see :class:`~repro.store.arena.MatrixArena`), the worker
  answers with the digests it does *not* already hold in its
  content-addressed blob cache, and only those blobs cross the wire.
  Repeated rounds of the active loop therefore re-ship nothing that
  did not change — the second sweep over an unchanged arena syncs
  zero bytes.

Protocol version 3 makes the driver *latency-hiding*:

* **pipelined dispatch** — each worker loop keeps a bounded window of
  unacknowledged job frames on the socket (``pipeline_depth``), so
  serialization and remote compute overlap the network round-trip
  instead of alternating with it;
* **one-shot function shipping** — the pickled ``fn`` is registered
  once per worker under its SHA-256 digest (``register-fn``), and job
  frames reference it by id; a worker that refuses or evicts the
  digest answers ``fn-miss`` and the driver degrades to inline-fn
  frames for that link, so correctness never depends on the cache;
* **job batching** — small items coalesce into one frame up to a byte
  budget (``batch_bytes``), amortizing frame and pickle overhead for
  the tiny per-block jobs :mod:`repro.store.procwork` produces, with a
  fair-share cap so one fast link cannot swallow a small queue;
* **barrier-free** :meth:`RPCExecutor.imap` — a true streaming window
  fed directly from the input iterator (no chunk-sized ``map`` calls,
  no stall at chunk boundaries), yielding in input order.

Robustness is part of the performance story.  Jobs carry a per-frame
timeout; a worker that dies (or stops answering) has **every
unacknowledged job in its pipeline window** re-queued onto the
survivors after bounded reconnect attempts with exponential backoff;
when the job queue drains, idle workers re-dispatch the slowest
in-flight tail (jobs are pure functions, so a duplicate result is
byte-identical and first-wins is safe); and when *no* worker is
reachable the executor degrades to inline execution with a logged
warning — correctness at serial speed.  Every event is counted in
:class:`RPCMetrics` (and the ``rpc.window_occupancy`` histogram) so
experiment persistence and the trend report can see how a run was
produced.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import shutil
import socket
import struct
import threading
import time
from collections import OrderedDict, deque
from dataclasses import replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.parallel import Executor, _try_dumps
from repro.exceptions import RPCError
from repro.obs.metrics import CounterGroup, MetricsRegistry
from repro.obs.tracing import Tracer, get_tracer
from repro.store.arena import _tmp_path
from repro.store.procwork import ArenaLinearScorer, ArenaSpec

logger = logging.getLogger(__name__)

#: Bumped on any incompatible change to envelopes or sync semantics;
#: driver and worker refuse to talk across versions at handshake time.
#: Version 2 (the ``repro.obs`` era): job envelopes may carry a
#: ``trace`` :class:`~repro.obs.tracing.TraceContext` and result
#: envelopes a ``spans`` list, so one trace id follows a job across
#: hosts.  Version 3 (latency hiding): job frames carry a *batch* of
#: pre-pickled items (``jobs``) plus either an inline ``fn_blob`` or a
#: ``fn_id`` digest registered beforehand via ``register-fn``; result
#: frames answer with per-job ``results`` in frame order, and a worker
#: may answer ``fn-miss`` when a referenced digest fell out of its fn
#: cache.  Frames on one connection are answered strictly in request
#: order, which is what lets the driver pipeline several job frames
#: before reading the first reply.  Older workers are refused at
#: handshake with the worker's own error message.
PROTOCOL_VERSION = 3

#: Frame header: one unsigned 64-bit big-endian payload length.
_HEADER = struct.Struct("!Q")

#: Upper bound on a single frame, as a guard against corrupt headers.
MAX_FRAME_BYTES = 1 << 34


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, payload: dict) -> int:
    """Pickle ``payload`` and send it as one length-prefixed frame.

    Returns the number of payload bytes written (header excluded) so
    callers can meter traffic.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(blob)) + blob)
    return len(blob)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < n:
        chunk = sock.recv(min(n - len(chunks), 1 << 20))
        if not chunk:
            raise RPCError("connection closed mid-frame")
        chunks.extend(chunk)
    return bytes(chunks)


def recv_frame(sock: socket.socket) -> dict:
    """Receive one length-prefixed frame and unpickle its payload."""
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise RPCError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            "protocol limit (corrupt stream?)"
        )
    return pickle.loads(_recv_exact(sock, length))


def _handshake_client(sock: socket.socket) -> None:
    send_frame(sock, {"kind": "hello", "protocol": PROTOCOL_VERSION})
    reply = recv_frame(sock)
    if reply.get("kind") == "error":
        # The worker explained its refusal (typically a protocol
        # mismatch — e.g. a fleet still running version-1 workers);
        # surface its own words instead of a generic failure.
        raise RPCError(f"worker refused handshake: {reply.get('error')}")
    if reply.get("kind") != "hello" or (
        reply.get("protocol") != PROTOCOL_VERSION
    ):
        raise RPCError(
            f"protocol mismatch: worker speaks {reply.get('protocol')!r}, "
            f"this driver speaks {PROTOCOL_VERSION}; upgrade the worker "
            "processes to this code revision"
        )


def parse_address(address: str) -> Tuple[str, int]:
    """Split a ``host:port`` endpoint string."""
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise RPCError(f"malformed worker address {address!r} (want host:port)")
    return host, int(port)


# ----------------------------------------------------------------------
# Spec discovery / remapping inside work units
# ----------------------------------------------------------------------
def _walk_specs(obj, found: Dict[str, int]) -> None:
    """Collect ``store_dir -> max version`` from specs nested in ``obj``."""
    if isinstance(obj, ArenaSpec):
        found[obj.store_dir] = max(
            found.get(obj.store_dir, 0), obj.version
        )
    elif isinstance(obj, ArenaLinearScorer):
        _walk_specs(obj.spec, found)
    elif isinstance(obj, (tuple, list)):
        for element in obj:
            _walk_specs(element, found)


def _remap_specs(obj, mapping: Dict[str, str]):
    """Rewrite every nested :class:`ArenaSpec` through ``mapping``.

    ``mapping`` sends a driver-side ``store_dir`` to the worker's local
    replica directory; the version stamp rides along unchanged (replica
    manifests are written with the driver's version counter, so the
    worker-side staleness check keeps working verbatim).
    """
    if isinstance(obj, ArenaSpec):
        local = mapping.get(obj.store_dir)
        if local is None:
            raise RPCError(
                f"job references arena {obj.store_dir!r} which was never "
                "synced to this worker"
            )
        return ArenaSpec(store_dir=local, version=obj.version)
    if isinstance(obj, ArenaLinearScorer):
        return replace(obj, spec=_remap_specs(obj.spec, mapping))
    if isinstance(obj, tuple):
        return tuple(_remap_specs(element, mapping) for element in obj)
    if isinstance(obj, list):
        return [_remap_specs(element, mapping) for element in obj]
    return obj


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _BlobCache:
    """LRU byte-cap over the worker's shared content-addressed blobs.

    Long-lived fleets accumulate one blob per distinct arena file ever
    synced; without a cap a worker's ``cache/`` directory grows without
    bound across drivers and rounds.  The cap evicts
    least-recently-used blob *files* only — replicas hardlink blobs
    into their own ``data/`` directories, so an evicted blob stays
    readable by every manifest already published against it, and a
    future sync that needs it again simply re-ships it (the driver
    treats a missing digest as a cache miss, never an error).

    ``limit_bytes=None`` disables eviction entirely, preserving the
    pre-cap behaviour byte for byte.
    """

    def __init__(self, cache_dir: Path, limit_bytes: Optional[int]) -> None:
        self.cache_dir = cache_dir
        self.limit_bytes = limit_bytes
        self.evictions = 0
        self._lock = threading.Lock()
        #: digest -> blob size in bytes, oldest-used first.
        self._entries: "OrderedDict[str, int]" = OrderedDict()
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        # A restarted worker adopts blobs from a previous life; mtime
        # order is the best recency signal that survives the restart.
        try:
            stats = sorted(
                (
                    (path, path.stat())
                    for path in self.cache_dir.iterdir()
                    if path.is_file()
                ),
                key=lambda pair: pair[1].st_mtime,
            )
        except OSError:  # pragma: no cover - cache dir racing away
            stats = []
        for path, stat in stats:
            self._entries[path.name] = stat.st_size

    def touch(self, digest: str) -> None:
        """Mark ``digest`` as just used (moves it to the LRU tail)."""
        with self._lock:
            if digest in self._entries:
                self._entries.move_to_end(digest)

    def note(self, digest: str, size: int) -> None:
        """Record a freshly written blob as the most recently used."""
        with self._lock:
            self._entries[digest] = size
            self._entries.move_to_end(digest)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(self._entries.values())

    def evict(self, protected: set) -> int:
        """Drop LRU blobs until under the cap; return how many went.

        ``protected`` digests (referenced by a live replica manifest or
        a staged sync) are never dropped, even when that leaves the
        cache over its cap — correctness beats the budget.
        """
        if self.limit_bytes is None:
            return 0
        evicted = 0
        with self._lock:
            total = sum(self._entries.values())
            for digest in list(self._entries):
                if total <= self.limit_bytes:
                    break
                if digest in protected:
                    continue
                try:
                    (self.cache_dir / digest).unlink()
                except FileNotFoundError:
                    pass  # already gone; still drop the ledger entry
                except OSError:  # pragma: no cover - fs refuses
                    continue
                total -= self._entries.pop(digest)
                evicted += 1
            self.evictions += evicted
        return evicted


class _ReplicaStore:
    """One driver arena mirrored under the worker's store directory.

    Blobs live content-addressed in a shared ``cache/`` directory (one
    file per SHA-256 digest, deduplicated across replicas and rounds);
    the replica's ``data/`` directory hardlinks into the cache under
    digest names and its manifest rewrites every entry's files to those
    names.  :mod:`repro.store.procwork` job functions then open the
    replica like any other :class:`~repro.store.arena.MatrixArena`.
    """

    def __init__(
        self,
        root: Path,
        cache_dir: Path,
        store_id: str,
        tracker: Optional[_BlobCache] = None,
    ) -> None:
        self.store_id = store_id
        self.root = root
        self.cache_dir = cache_dir
        self.data_dir = root / "data"
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.tracker = tracker
        self.version = self._manifest_version()
        #: Digests the current published manifest references; these
        #: (plus any staged sync's) are pinned against cache eviction.
        self.live_digests = self._manifest_digests()
        self._pending: Optional[dict] = None

    def _manifest_version(self) -> int:
        path = self.root / "manifest.json"
        if not path.exists():
            return 0
        try:
            return int(json.loads(path.read_text()).get("version", 0))
        except (OSError, json.JSONDecodeError, ValueError):
            return 0

    def _manifest_digests(self) -> set:
        path = self.root / "manifest.json"
        if not path.exists():
            return set()
        try:
            entries = json.loads(path.read_text()).get("entries", {})
        except (OSError, json.JSONDecodeError, ValueError):
            return set()
        return {
            digest
            for entry in entries.values()
            for digest in entry.get("digests", {}).values()
        }

    @property
    def referenced_digests(self) -> set:
        """Digests this replica pins: published manifest + staged sync."""
        digests = set(self.live_digests)
        if self._pending is not None:
            for entry in self._pending["entries"].values():
                digests.update(entry.get("digests", {}).values())
        return digests

    def begin(self, payload: dict) -> List[str]:
        """Stage a sync; return the digests missing from the blob cache."""
        entries = payload["entries"]
        needed: List[str] = []
        seen = set()
        for name, entry in entries.items():
            digests = entry.get("digests")
            if not digests or set(digests) != set(entry["files"]):
                raise RPCError(
                    f"arena entry {name!r} carries no content digests — "
                    "the driver store predates manifest format 2 and "
                    "cannot be synced remotely"
                )
            for digest in digests.values():
                if digest in seen:
                    continue
                seen.add(digest)
                if (self.cache_dir / digest).exists():
                    if self.tracker is not None:
                        self.tracker.touch(digest)
                else:
                    needed.append(digest)
        self._pending = payload
        return needed

    def commit(self, blobs: Dict[str, bytes]) -> None:
        """Store fetched blobs and publish the staged manifest."""
        if self._pending is None:
            raise RPCError("sync-data received without a sync-begin")
        payload, self._pending = self._pending, None
        for digest, blob in blobs.items():
            if hashlib.sha256(blob).hexdigest() != digest:
                raise RPCError(
                    f"blob {digest[:12]}... arrived corrupt "
                    "(digest mismatch on the wire)"
                )
            target = self.cache_dir / digest
            if target.exists():
                if self.tracker is not None:
                    self.tracker.touch(digest)
                continue
            tmp = _tmp_path(target)
            tmp.write_bytes(blob)
            os.replace(tmp, target)
            if self.tracker is not None:
                self.tracker.note(digest, len(blob))
        entries = {}
        for name, entry in payload["entries"].items():
            rewritten = dict(entry)
            rewritten["files"] = {
                component: entry["digests"][component]
                for component in entry["files"]
            }
            entries[name] = rewritten
            for digest in entry["digests"].values():
                link = self.data_dir / digest
                if link.exists():
                    continue
                source = self.cache_dir / digest
                if not source.exists():
                    raise RPCError(
                        f"manifest references blob {digest[:12]}... which "
                        "was neither cached nor shipped"
                    )
                try:
                    os.link(source, link)
                except OSError:  # cross-device or FS without hardlinks
                    shutil.copyfile(source, link)
        manifest = {
            "format_version": payload["format_version"],
            "version": payload["version"],
            "entries": entries,
        }
        path = self.root / "manifest.json"
        tmp = _tmp_path(path)
        tmp.write_text(json.dumps(manifest, indent=1, sort_keys=True))
        os.replace(tmp, path)
        self.version = int(payload["version"])
        self.live_digests = {
            digest
            for entry in payload["entries"].values()
            for digest in entry["digests"].values()
        }


class WorkerServer:
    """Long-lived RPC worker: accept connections, sync arenas, run jobs.

    Parameters
    ----------
    host, port:
        Listen endpoint; port ``0`` picks a free port (read it back
        from :attr:`address`).
    store_dir:
        Root for this worker's local state: ``cache/`` (content-addressed
        blobs, shared across replicas) and ``replicas/<id>/`` (one
        mirrored arena per driver store).
    cache_limit_bytes:
        Optional byte cap on the shared blob cache.  After each sync
        commit, least-recently-used blobs are evicted until the cache
        fits, never touching digests a live replica manifest or staged
        sync still references.  ``None`` (the default) keeps every blob
        forever, as before.  Eviction counts travel back to the driver
        in the ``sync-done`` envelope and surface as
        :attr:`RPCMetrics.cache_evictions`.
    delay_ms:
        Fault-injection knob: sleep this many milliseconds before
        handling each post-handshake frame, simulating network latency
        on a loopback link so the pipelining win is demonstrable (and
        gateable) on a single host.  ``0`` (the default) adds nothing.
    fn_cache_size:
        How many registered functions (``register-fn`` digests) this
        worker keeps unpickled, LRU-evicted.  ``0`` refuses
        registration outright — drivers then fall back to inline-fn
        job frames, the clean-degradation path.

    Each accepted connection is served by its own daemon thread, so one
    worker can hold a driver link and a straggler-duplicate link at
    once.  Frames on one connection are handled (and answered)
    strictly in arrival order — the ordering guarantee the v3 driver's
    pipelined window relies on.  ``serve_forever`` blocks until
    :meth:`stop` (or a ``shutdown`` envelope) fires.
    """

    def __init__(
        self,
        host: str,
        port: int,
        store_dir,
        cache_limit_bytes: Optional[int] = None,
        delay_ms: float = 0.0,
        fn_cache_size: int = 16,
    ) -> None:
        self.store_dir = Path(store_dir)
        self.store_dir.mkdir(parents=True, exist_ok=True)
        self.delay_ms = float(delay_ms)
        self.fn_cache_size = int(fn_cache_size)
        #: digest -> unpickled fn, oldest-used first (LRU).
        self._fn_cache: "OrderedDict[str, object]" = OrderedDict()
        self._fn_lock = threading.Lock()
        self.blob_cache = _BlobCache(
            self.store_dir / "cache", cache_limit_bytes
        )
        self._replicas: Dict[str, _ReplicaStore] = {}
        self._replica_lock = threading.Lock()
        self._stop = threading.Event()
        self._connections: List[socket.socket] = []
        self._listener = socket.create_server(
            (host, port), reuse_port=False
        )
        self._listener.settimeout(0.2)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` endpoint."""
        host, port = self._listener.getsockname()[:2]
        return host, port

    # ------------------------------------------------------------------
    def _replica(self, store_id: str) -> _ReplicaStore:
        with self._replica_lock:
            replica = self._replicas.get(store_id)
            if replica is None:
                key = hashlib.sha1(store_id.encode("utf-8")).hexdigest()[:16]
                replica = _ReplicaStore(
                    self.store_dir / "replicas" / key,
                    self.store_dir / "cache",
                    store_id,
                    tracker=self.blob_cache,
                )
                self._replicas[store_id] = replica
            return replica

    def _spec_mapping(self) -> Dict[str, str]:
        with self._replica_lock:
            return {
                store_id: str(replica.root)
                for store_id, replica in self._replicas.items()
            }

    def _protected_digests(self) -> set:
        """Digests no eviction may touch: every replica's pinned set."""
        with self._replica_lock:
            replicas = list(self._replicas.values())
        protected: set = set()
        for replica in replicas:
            protected |= replica.referenced_digests
        return protected

    def _handle(self, request: dict) -> dict:
        kind = request.get("kind")
        if kind == "ping":
            return {"kind": "pong"}
        if kind == "sync-begin":
            replica = self._replica(request["store"])
            return {
                "kind": "sync-need",
                "digests": replica.begin(request),
            }
        if kind == "sync-data":
            replica = self._replica(request["store"])
            replica.commit(request["blobs"])
            evicted = self.blob_cache.evict(self._protected_digests())
            return {
                "kind": "sync-done",
                "version": replica.version,
                "evicted": evicted,
            }
        if kind == "register-fn":
            return self._handle_register_fn(request)
        if kind == "job":
            mapping = self._spec_mapping()
            fn_id = request.get("fn_id")
            if fn_id is not None:
                with self._fn_lock:
                    fn = self._fn_cache.get(fn_id)
                    if fn is not None:
                        self._fn_cache.move_to_end(fn_id)
                if fn is None:
                    # Evicted (or never seen) between frames: tell the
                    # driver so it downgrades to inline-fn frames.
                    return {"kind": "fn-miss", "digest": fn_id}
            else:
                try:
                    fn = pickle.loads(request["fn_blob"])
                except Exception as error:
                    # The fn resolved on the driver but not here.  Keep
                    # the link healthy and answer every job with a typed
                    # error naming the real cause.
                    message = (
                        "fn failed to unpickle on worker "
                        f"({type(error).__name__}: {error}); define it in "
                        "a module importable by the worker"
                    )
                    return {
                        "kind": "result",
                        "jobs": [index for index, _ in request["jobs"]],
                        "results": [
                            {"ok": False, "error": message}
                            for _ in request["jobs"]
                        ],
                        "spans": [],
                    }
            fn = _remap_specs(fn, mapping)
            # When the driver traces, the frame carries a TraceContext:
            # run each job under a buffer-only local tracer parented on
            # it and ship the spans home in the result, so the driver's
            # JSONL links remote execution to the exact dispatch frame.
            trace = request.get("trace")
            local = Tracer() if trace is not None else None
            indices: List[int] = []
            results: List[dict] = []
            for index, blob in request["jobs"]:
                try:
                    # Item decode rides the same guard as execution: a
                    # payload that does not resolve here is a typed job
                    # error, never a dead link.
                    item = _remap_specs(pickle.loads(blob), mapping)
                    if local is not None:
                        with local.span(
                            "rpc.worker.job", parent=trace, job=index
                        ):
                            value = fn(item)
                    else:
                        value = fn(item)
                except Exception as error:  # errors travel back, typed
                    results.append(
                        {
                            "ok": False,
                            "error": f"{type(error).__name__}: {error}",
                        }
                    )
                else:
                    results.append({"ok": True, "value": value})
                indices.append(index)
            return {
                "kind": "result",
                "jobs": indices,
                "results": results,
                "spans": local.drain() if local is not None else [],
            }
        if kind == "shutdown":
            self._stop.set()
            return {"kind": "bye"}
        raise RPCError(f"unknown envelope kind {kind!r}")

    def _handle_register_fn(self, request: dict) -> dict:
        """Two-phase fn registration: digest probe, then the blob.

        A probe (no ``blob``) answers whether the digest is already
        cached and whether this worker accepts registrations at all;
        the follow-up carries the pickled fn, which is digest-verified
        before it enters the LRU cache.  A refusal is never an error —
        the driver falls back to inline-fn job frames.
        """
        digest = request["digest"]
        blob = request.get("blob")
        if self.fn_cache_size <= 0:
            return {"kind": "fn-registered", "cached": False, "accepted": False}
        with self._fn_lock:
            if digest in self._fn_cache:
                self._fn_cache.move_to_end(digest)
                return {
                    "kind": "fn-registered",
                    "cached": True,
                    "accepted": True,
                }
        if blob is None:
            return {"kind": "fn-registered", "cached": False, "accepted": True}
        if hashlib.sha256(blob).hexdigest() != digest:
            raise RPCError(
                f"registered fn {digest[:12]}... arrived corrupt "
                "(digest mismatch on the wire)"
            )
        try:
            fn = pickle.loads(blob)
        except Exception:
            # Pickles on the driver but not here (__main__-defined fn,
            # missing module, version skew).  A refusal, not an error:
            # the link stays up and the driver downgrades to inline-fn
            # frames, whose decode failure travels back as a typed job
            # error instead of a dead connection.
            return {"kind": "fn-registered", "cached": False, "accepted": False}
        with self._fn_lock:
            self._fn_cache[digest] = fn
            self._fn_cache.move_to_end(digest)
            while len(self._fn_cache) > self.fn_cache_size:
                self._fn_cache.popitem(last=False)
        return {"kind": "fn-registered", "cached": True, "accepted": True}

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            hello = recv_frame(conn)
            if hello.get("protocol") != PROTOCOL_VERSION:
                send_frame(
                    conn,
                    {
                        "kind": "error",
                        "error": (
                            f"protocol {hello.get('protocol')!r} unsupported; "
                            f"worker speaks {PROTOCOL_VERSION}"
                        ),
                    },
                )
                return
            send_frame(
                conn,
                {
                    "kind": "hello",
                    "protocol": PROTOCOL_VERSION,
                    "pid": os.getpid(),
                },
            )
            while not self._stop.is_set():
                request = recv_frame(conn)
                if self.delay_ms > 0:
                    # Fault injection: pretend the wire is slow.  Per
                    # *frame*, not per job — exactly the cost model
                    # batching and pipelining are designed to beat.
                    time.sleep(self.delay_ms / 1000.0)
                send_frame(conn, self._handle(request))
                if request.get("kind") == "shutdown":
                    return
        except (RPCError, OSError):
            return  # driver went away or stream corrupted: drop the link
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`stop`."""
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return  # listener closed under us by stop()
                self._connections.append(conn)
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True
                )
                thread.start()
        finally:
            self._close_sockets()

    def start(self) -> "WorkerServer":
        """Serve on a background daemon thread (tests, embedding)."""
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and abruptly close every open connection.

        Idempotent.  In-flight jobs are abandoned mid-frame — exactly
        what a killed worker process looks like to the driver, which is
        what the fault-path tests simulate with it.
        """
        self._stop.set()
        self._close_sockets()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _close_sockets(self) -> None:
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        for conn in self._connections:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._connections = []


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
class RPCMetrics(CounterGroup):
    """Counters of one :class:`RPCExecutor`'s lifetime of work.

    Surfaced into :class:`~repro.eval.experiment.RuntimeMetadata` (and
    from there into persisted outcome JSON and the trend report), so
    archived results show how much the transport shipped, cached,
    retried and re-dispatched.  Since the ``repro.obs`` unification
    this is an attribute-shaped view over ``rpc.*`` counters in the
    executor's :class:`~repro.obs.metrics.MetricsRegistry`
    (``executor.registry``); the attribute surface is unchanged.
    """

    _prefix = "rpc."
    _fields = (
        "jobs_shipped",
        "bytes_shipped",
        "bytes_synced",
        "sync_cache_hits",
        "jobs_batched",
        "fn_registrations",
        "fn_cache_hits",
        "fn_bytes_shipped",
        "retries",
        "stragglers_redispatched",
        "inline_jobs",
        "workers_lost",
        "serial_fallbacks",
        "cache_evictions",
    )


class _WorkerLink:
    """Driver-side handle of one worker connection.

    The v3 protocol decouples writes from reads: :meth:`send` puts a
    frame on the wire without waiting, :meth:`recv` reads the next
    reply, and because the worker answers frames in arrival order, a
    window of sends followed by matching recvs stays in lockstep.
    :meth:`call` remains the request/response shorthand for exchanges
    that must run on a quiet socket (handshake, sync, registration).
    """

    def __init__(self, address: str, connect_timeout: float) -> None:
        self.address = address
        self.connect_timeout = connect_timeout
        self.sock: Optional[socket.socket] = None
        self.alive = True
        #: store_dir -> manifest version last committed on the worker.
        self.synced: Dict[str, int] = {}
        #: fn digests this connection registered (jobs reference by id).
        self.registered_fns: set = set()
        #: fn digests the worker refused or evicted (ship fn inline).
        self.inline_fns: set = set()

    def connect(self, timeout: float) -> None:
        host, port = parse_address(self.address)
        sock = socket.create_connection(
            (host, port), timeout=self.connect_timeout
        )
        sock.settimeout(timeout)
        try:
            _handshake_client(sock)
        except BaseException:
            sock.close()
            raise
        self.sock = sock
        self.synced = {}
        self.registered_fns = set()
        self.inline_fns = set()

    def close(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self.sock = None

    def send(self, request: dict) -> int:
        """Ship one frame without reading a reply; returns bytes sent."""
        if self.sock is None:
            raise RPCError(f"worker {self.address} is not connected")
        return send_frame(self.sock, request)

    def recv(self) -> dict:
        """Read the next reply frame (ordered, one per sent frame)."""
        if self.sock is None:
            raise RPCError(f"worker {self.address} is not connected")
        return recv_frame(self.sock)

    def call(self, request: dict) -> Tuple[dict, int]:
        """One request/response exchange; returns (reply, bytes sent)."""
        sent = self.send(request)
        return self.recv(), sent


class RPCExecutor(Executor):
    """Fan picklable work units across remote workers over TCP.

    Parameters
    ----------
    addresses:
        ``host:port`` endpoints of running ``repro.cli worker``
        processes.  Unreachable endpoints are skipped (and logged); if
        *none* is reachable the executor degrades to inline execution
        with a warning — the graceful-degradation contract.
    timeout:
        Per-job timeout in seconds.  A worker that blows it is treated
        as dead: its link is torn down and its in-flight job re-queued.
    retries:
        Reconnect attempts per worker failure, with exponential backoff
        (``backoff * 2**attempt`` seconds), before the worker is
        declared lost and its jobs move to the survivors.
    backoff:
        Base of the reconnect backoff schedule.
    straggler_redispatch:
        How many duplicate dispatches of one in-flight job idle workers
        may launch once the queue drains (jobs are pure, so first
        result wins byte-identically).  ``0`` disables tail re-dispatch.
    pipeline_depth:
        How many job frames one worker link keeps unacknowledged on
        the socket.  ``1`` is the blocking one-frame-per-round-trip
        dispatch of protocol v2; depths >= 2 overlap serialization and
        remote compute with the network wait, which is where the
        latency-hiding speedup comes from.  Observed occupancy lands
        in the ``rpc.window_occupancy`` histogram.
    batch_bytes:
        Byte budget per job frame: pending items coalesce into one
        frame while their pickled payloads stay under this budget
        (subject to a fair share of the queue, so a small map still
        spreads across the fleet).  ``0`` disables batching.
    max_batch_jobs:
        Hard cap on jobs per frame regardless of byte budget.

    Notes
    -----
    The contract is exactly :class:`~repro.engine.parallel.Executor`'s:
    results in input order, bit-identical to a serial run — for every
    schedule, including worker kills mid-window.  Work whose callable
    does not pickle runs inline, so a live session handed an RPC
    executor still works everywhere — only the arena-backed descriptor
    paths actually leave the machine, and those first sync the arena
    through the content-addressed transport.
    """

    kind = "rpc"
    crosses_processes = True

    def __init__(
        self,
        addresses: Sequence[str],
        timeout: float = 60.0,
        connect_timeout: float = 5.0,
        retries: int = 2,
        backoff: float = 0.05,
        straggler_redispatch: int = 1,
        pipeline_depth: int = 4,
        batch_bytes: int = 256 * 1024,
        max_batch_jobs: int = 64,
    ) -> None:
        if not addresses:
            raise RPCError("RPCExecutor needs at least one worker address")
        for address in addresses:
            parse_address(address)  # fail fast on malformed endpoints
        self.addresses = list(addresses)
        self.workers = len(self.addresses)
        self.timeout = float(timeout)
        self.connect_timeout = float(connect_timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.straggler_redispatch = int(straggler_redispatch)
        self.pipeline_depth = int(pipeline_depth)
        if self.pipeline_depth < 1:
            raise RPCError(
                f"pipeline_depth must be >= 1, got {pipeline_depth}"
            )
        self.batch_bytes = max(0, int(batch_bytes))
        self.max_batch_jobs = max(1, int(max_batch_jobs))
        self.registry = MetricsRegistry()
        self.metrics = RPCMetrics(registry=self.registry)
        self._links: Optional[List[_WorkerLink]] = None
        self._lock = threading.Lock()
        self._warned_no_workers = False

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _live_links(self) -> List[_WorkerLink]:
        with self._lock:
            if self._links is None:
                self._links = []
                for address in self.addresses:
                    link = _WorkerLink(address, self.connect_timeout)
                    try:
                        link.connect(self.timeout)
                    except (OSError, RPCError) as error:
                        logger.warning(
                            "RPC worker %s unreachable: %s", address, error
                        )
                        link.alive = False
                    self._links.append(link)
            return [link for link in self._links if link.alive]

    def _revive(self, link: _WorkerLink) -> bool:
        """Reconnect a failed link with exponential backoff."""
        link.close()
        for attempt in range(self.retries):
            time.sleep(self.backoff * (2 ** attempt))
            try:
                link.connect(self.timeout)
                return True
            except (OSError, RPCError):
                continue
        link.alive = False
        self.metrics.workers_lost += 1
        logger.warning(
            "RPC worker %s lost after %d reconnect attempts; "
            "re-queueing its work onto the survivors",
            link.address,
            self.retries,
        )
        return False

    # ------------------------------------------------------------------
    # Arena transport
    # ------------------------------------------------------------------
    def _sync_link(self, link: _WorkerLink, specs: Dict[str, int]) -> None:
        """Bring one worker's replicas current for every needed arena."""
        for store_dir, version in specs.items():
            if link.synced.get(store_dir, -1) >= version:
                continue
            manifest_path = Path(store_dir) / "manifest.json"
            try:
                manifest = json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                raise RPCError(
                    f"cannot read arena manifest {manifest_path}: {error}"
                ) from None
            entries = manifest.get("entries", {})
            referenced = {
                digest
                for entry in entries.values()
                for digest in entry.get("digests", {}).values()
            }
            reply, _ = link.call(
                {
                    "kind": "sync-begin",
                    "store": store_dir,
                    "version": int(manifest.get("version", version)),
                    "format_version": manifest.get("format_version", 2),
                    "entries": entries,
                }
            )
            if reply.get("kind") != "sync-need":
                raise RPCError(
                    f"worker {link.address} answered sync-begin with "
                    f"{reply.get('kind')!r}"
                )
            needed = reply["digests"]
            self.metrics.sync_cache_hits += len(referenced) - len(needed)
            by_digest: Dict[str, str] = {}
            for entry in entries.values():
                for component, digest in entry.get("digests", {}).items():
                    by_digest[digest] = entry["files"][component]
            blobs: Dict[str, bytes] = {}
            for digest in needed:
                filename = by_digest.get(digest)
                if filename is None:
                    raise RPCError(
                        f"worker {link.address} requested unknown blob "
                        f"{digest[:12]}..."
                    )
                blobs[digest] = (
                    Path(store_dir) / "data" / filename
                ).read_bytes()
            reply, sent = link.call(
                {"kind": "sync-data", "store": store_dir, "blobs": blobs}
            )
            if reply.get("kind") != "sync-done":
                raise RPCError(
                    f"worker {link.address} answered sync-data with "
                    f"{reply.get('kind')!r}"
                )
            self.metrics.bytes_synced += sum(
                len(blob) for blob in blobs.values()
            )
            # Capped workers report how many LRU blobs the commit
            # pushed out; uncapped (and older) workers omit the key.
            self.metrics.cache_evictions += int(reply.get("evicted", 0))
            link.synced[store_dir] = int(manifest.get("version", version))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    # Function shipping
    # ------------------------------------------------------------------
    def _register_fn(self, link, digest, blob) -> None:
        """Ship ``fn`` once per link, keyed by content digest.

        Two phases: a digest-only probe (the worker may already hold
        it from an earlier map or another driver), then the blob.  A
        refusal downgrades this link to inline-fn job frames — never
        an error.
        """
        if (
            digest is None
            or digest in link.registered_fns
            or digest in link.inline_fns
        ):
            return
        reply, sent = link.call({"kind": "register-fn", "digest": digest})
        with self._lock:
            self.metrics.bytes_shipped += sent
        if reply.get("kind") != "fn-registered":
            raise RPCError(
                f"worker {link.address} answered register-fn with "
                f"{reply.get('kind')!r}"
            )
        if reply.get("cached"):
            link.registered_fns.add(digest)
            with self._lock:
                self.metrics.fn_cache_hits += 1
            return
        if not reply.get("accepted"):
            link.inline_fns.add(digest)
            return
        reply, sent = link.call(
            {"kind": "register-fn", "digest": digest, "blob": blob}
        )
        with self._lock:
            self.metrics.bytes_shipped += sent
            self.metrics.fn_bytes_shipped += len(blob)
        if reply.get("kind") != "fn-registered" or not reply.get("cached"):
            link.inline_fns.add(digest)
            return
        link.registered_fns.add(digest)
        with self._lock:
            self.metrics.fn_registrations += 1

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _fallback_inline(self):
        if not self._warned_no_workers:
            logger.warning(
                "no RPC worker reachable at %s; falling back to "
                "inline (serial) execution",
                ", ".join(self.addresses),
            )
            self._warned_no_workers = True
        self.metrics.serial_fallbacks += 1

    def map(self, fn, items):
        items = list(items)
        if not items:
            return []
        blob = _try_dumps(fn)
        if blob is None:
            return [fn(item) for item in items]
        links = self._live_links()
        if not links:
            self._fallback_inline()
            return [fn(item) for item in items]

        # Every arena any job touches, synced upfront per link so the
        # pipelined window never needs a mid-stream sync.
        specs: Dict[str, int] = {}
        _walk_specs(fn, specs)
        for item in items:
            _walk_specs(item, specs)
        digest = hashlib.sha256(blob).hexdigest()

        state = _MapState(items)
        # One span brackets the whole fan-out; worker-loop threads
        # parent their dispatch/sync/requeue spans on it explicitly
        # (they run off the calling thread, so implicit nesting would
        # not see it).
        with get_tracer().span(
            "rpc.map", jobs=len(items), workers=len(links)
        ) as map_span:
            threads = []
            for link in links:
                state.worker_started()
                thread = threading.Thread(
                    target=self._worker_loop,
                    args=(link, digest, blob, specs, state, map_span),
                    daemon=True,
                )
                thread.start()
                threads.append(thread)
            for thread in threads:
                thread.join()

            leftovers = state.unfinished()
            if leftovers:
                # Every worker died (or retry budgets ran dry): finish
                # the tail inline so the map still completes exactly.
                self.metrics.inline_jobs += len(leftovers)
                map_span.annotate(inline_tail=len(leftovers))
                for index in leftovers:
                    state.results[index] = fn(items[index])
        if state.job_error is not None:
            raise RPCError(state.job_error)
        return list(state.results)

    def imap(self, fn, items, window=None):
        """Barrier-free streaming map: bounded window, input-order yield.

        Unlike the chunked implementation this replaces (``map`` per
        ``window`` items, a full fan-out barrier at every chunk
        boundary), the stream admits items straight from the iterator
        into the shared queue as results drain, so worker pipelines
        stay full across what used to be chunk edges — the hot path of
        ``engine/streaming.py`` and ``engine/candidates.py``.
        ``window`` bounds how many admitted-but-unyielded items exist
        at once (memory, not batching).
        """
        if window is None:
            window = max(
                8, 4 * self.pipeline_depth * max(1, len(self.addresses))
            )
        if window < 1:
            raise RPCError(f"window must be >= 1, got {window}")
        return self._imap_stream(fn, iter(items), int(window))

    def _imap_stream(self, fn, iterator, window):
        try:
            first = next(iterator)
        except StopIteration:
            return
        blob = _try_dumps(fn)
        links = self._live_links() if blob is not None else []
        if blob is None or not links:
            if blob is not None:
                self._fallback_inline()
            yield fn(first)
            for item in iterator:
                yield fn(item)
            return

        digest = hashlib.sha256(blob).hexdigest()
        fn_specs: Dict[str, int] = {}
        _walk_specs(fn, fn_specs)
        state = _MapState(open_ended=True)
        state.admit(first)
        tracer = get_tracer()
        # Detached span: a generator suspends between yields, so a
        # context-managed span would sit mis-nested on the consumer
        # thread's stack for the stream's whole lifetime.
        stream_span = tracer.span_open(
            "rpc.imap", workers=len(links), window=window
        )
        threads = []
        for link in links:
            state.worker_started()
            thread = threading.Thread(
                target=self._worker_loop,
                args=(link, digest, blob, fn_specs, state, stream_span),
                daemon=True,
            )
            thread.start()
            threads.append(thread)
        next_yield = 0
        drained = False
        try:
            while True:
                # Keep the shared queue primed up to the window bound.
                while not drained and len(state.items) - next_yield < window:
                    try:
                        item = next(iterator)
                    except StopIteration:
                        drained = True
                        state.seal()
                        break
                    state.admit(item)
                if drained and next_yield >= len(state.items):
                    return
                if state.wait_result(next_yield) == "orphaned":
                    # Every worker died, or this job's retry budget ran
                    # dry: run it inline, preserving exact results.
                    with self._lock:
                        self.metrics.inline_jobs += 1
                    value = fn(state.items[next_yield])
                    state.complete(None, next_yield, value)
                error = state.errors.get(next_yield)
                if error is not None:
                    raise RPCError(error)
                value = state.results[next_yield]
                state.release(next_yield)
                next_yield += 1
                yield value
        finally:
            state.close()
            stream_span.finish()
            for thread in threads:
                thread.join(timeout=10.0)

    def _worker_loop(
        self, link, fn_digest, fn_blob, fn_specs, state, parent=None
    ) -> None:
        _WindowLoop(
            self, link, state, fn_digest, fn_blob, fn_specs, parent
        ).run()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every worker connection (idempotent; workers keep running)."""
        with self._lock:
            if self._links is not None:
                for link in self._links:
                    link.close()
                self._links = None

    def shutdown_workers(self) -> int:
        """Ask every reachable worker process to exit; returns how many."""
        stopped = 0
        for link in self._live_links():
            try:
                link.call({"kind": "shutdown"})
                stopped += 1
            except (OSError, RPCError):  # pragma: no cover - racing death
                pass
            link.close()
            link.alive = False
        return stopped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RPCExecutor(addresses={self.addresses!r})"


class _WindowLoop:
    """One worker-loop thread's pipelined dispatch window.

    The loop alternates two moves: *fill* — claim batches and write
    job frames until ``pipeline_depth`` frames are unacknowledged —
    and *receive* — read the oldest reply.  Because the worker answers
    frames in arrival order, the deque of outstanding frames is always
    in lockstep with the reply stream.  A link failure finishes every
    outstanding dispatch span with an error and re-queues **all**
    unacknowledged jobs in the window via :meth:`_MapState.fail`.
    """

    def __init__(
        self, executor, link, state, fn_digest, fn_blob, fn_specs, parent
    ) -> None:
        self.executor = executor
        self.link = link
        self.state = state
        self.fn_digest = fn_digest
        self.fn_blob = fn_blob
        self.fn_specs = fn_specs
        self.parent = parent
        self.tracer = get_tracer()
        self.occupancy = executor.registry.histogram("rpc.window_occupancy")
        #: (batch indices, is_duplicate, detached dispatch span), in
        #: frame order — replies arrive in exactly this order.
        self.outstanding: deque = deque()

    def run(self) -> None:
        executor = self.executor
        try:
            try:
                self._prepare()
            except (OSError, RPCError):
                if not (executor._revive(self.link) and self._try_prepare()):
                    return
            while True:
                try:
                    while len(self.outstanding) < executor.pipeline_depth:
                        claimed = self._claim_batch(
                            block=not self.outstanding
                        )
                        if claimed is None:
                            break
                        batch, duplicate = claimed
                        self._dispatch(batch, duplicate)
                    if not self.outstanding:
                        return
                    self._receive_one()
                except (OSError, RPCError):
                    self._on_link_failure()
                    if not (
                        executor._revive(self.link) and self._try_prepare()
                    ):
                        return
        finally:
            if self.outstanding:
                # Replies to these frames were never read (early-closed
                # imap stream): the socket would answer the *next* map
                # with stale frames, so drop it and reconnect lazily.
                self.link.close()
            self.state.worker_exited()

    # -- setup ----------------------------------------------------------
    def _prepare(self) -> None:
        """Sync known arenas and register the fn on a fresh link."""
        link = self.link
        if self.fn_specs and any(
            link.synced.get(store, -1) < version
            for store, version in self.fn_specs.items()
        ):
            with self.tracer.span(
                "rpc.sync", parent=self.parent, worker=link.address
            ):
                self.executor._sync_link(link, self.fn_specs)
        self.executor._register_fn(link, self.fn_digest, self.fn_blob)

    def _try_prepare(self) -> bool:
        try:
            self._prepare()
            return True
        except (OSError, RPCError):
            self.link.alive = False
            self.executor.metrics.workers_lost += 1
            return False

    # -- fill -----------------------------------------------------------
    def _claim_batch(self, block: bool):
        """Claim up to a frame's worth of jobs; ``None`` when done.

        The first claim honors straggler duplication and (optionally)
        blocks; batch fills are non-blocking, never duplicates, and
        bounded by both the byte budget and a fair share of the queue
        so one fast link cannot swallow a small map whole.
        """
        executor = self.executor
        state = self.state
        index, duplicate = state.claim(
            self.link, executor.straggler_redispatch, block=block
        )
        while index is not None and not self._blob_ok(index):
            index, duplicate = state.claim(
                self.link, executor.straggler_redispatch, block=block
            )
        if index is None:
            return None
        if duplicate:
            return [index], True
        batch = [index]
        size = len(state.item_blob(index))
        share = state.fair_share(executor.max_batch_jobs)
        while len(batch) < share and size < executor.batch_bytes:
            extra, _ = state.claim(self.link, 0, block=False)
            if extra is None:
                break
            if not self._blob_ok(extra):
                continue
            batch.append(extra)
            size += len(state.item_blob(extra))
        return batch, False

    def _blob_ok(self, index: int) -> bool:
        try:
            self.state.item_blob(index)
            return True
        except Exception:
            logger.warning(
                "job %d does not pickle; leaving it for inline execution",
                index,
            )
            self.state.abandon(self.link, index)
            return False

    # -- dispatch / receive ---------------------------------------------
    def _dispatch(self, batch, duplicate: bool, sync: bool = True) -> None:
        executor = self.executor
        link = self.link
        state = self.state
        if sync:
            # Streaming items may reference arenas the prepare-time
            # sync never saw (imap walks specs per batch, not upfront).
            specs: Dict[str, int] = {}
            for index in batch:
                _walk_specs(state.items[index], specs)
            if any(
                link.synced.get(store, -1) < version
                for store, version in specs.items()
            ):
                # Sync is a call/response exchange: the socket must be
                # quiet, so settle the window first.
                self._drain()
                with self.tracer.span(
                    "rpc.sync", parent=self.parent, worker=link.address
                ):
                    executor._sync_link(link, specs)
        envelope = {
            "kind": "job",
            "jobs": [(index, state.item_blob(index)) for index in batch],
        }
        use_digest = (
            self.fn_digest is not None
            and self.fn_digest in link.registered_fns
        )
        if use_digest:
            envelope["fn_id"] = self.fn_digest
        else:
            envelope["fn_blob"] = self.fn_blob
        span = None
        if self.tracer.enabled:
            span = self.tracer.span_open(
                "rpc.dispatch",
                parent=self.parent,
                worker=link.address,
                jobs=list(batch),
                window=len(self.outstanding) + 1,
                duplicate=duplicate,
            )
            envelope["trace"] = span.context
        try:
            sent = link.send(envelope)
        except BaseException:
            if span is not None:
                span.finish(error="send failed")
            raise
        with executor._lock:
            metrics = executor.metrics
            metrics.jobs_shipped += len(batch)
            metrics.bytes_shipped += sent
            if len(batch) > 1:
                metrics.jobs_batched += len(batch)
            if duplicate:
                metrics.stragglers_redispatched += len(batch)
            if use_digest:
                metrics.fn_cache_hits += 1
            else:
                metrics.fn_bytes_shipped += len(self.fn_blob)
        self.outstanding.append((list(batch), duplicate, span))
        self.occupancy.observe(len(self.outstanding))

    def _receive_one(self) -> None:
        link = self.link
        state = self.state
        reply = link.recv()
        batch, duplicate, span = self.outstanding.popleft()
        kind = reply.get("kind")
        if kind == "fn-miss":
            # The worker evicted our registered fn between frames:
            # downgrade this link to inline-fn frames and resend.
            digest = reply.get("digest")
            link.registered_fns.discard(digest)
            link.inline_fns.add(digest)
            if span is not None:
                span.finish(error="fn-miss")
            self._dispatch(batch, duplicate, sync=False)
            return
        if kind != "result" or list(reply.get("jobs", ())) != batch:
            raise RPCError(
                f"worker {link.address} answered jobs {batch} with "
                f"{kind!r} (pipeline out of step)"
            )
        self.tracer.ingest(reply.get("spans") or ())
        if span is not None:
            span.finish()
        for index, result in zip(batch, reply["results"]):
            if result["ok"]:
                state.complete(link, index, result["value"])
            else:
                state.complete(
                    link,
                    index,
                    None,
                    error=(
                        f"job {index} failed on worker {link.address}: "
                        f"{result['error']}"
                    ),
                )

    def _drain(self) -> None:
        """Read every outstanding reply (fn-miss resends included)."""
        while self.outstanding:
            self._receive_one()

    def _on_link_failure(self) -> None:
        executor = self.executor
        requeued = self.state.fail(self.link, executor.retries)
        with executor._lock:
            executor.metrics.retries += len(requeued)
        for _batch, _duplicate, span in self.outstanding:
            if span is not None:
                span.finish(error="worker lost")
        self.outstanding.clear()
        if requeued and self.tracer.enabled:
            with self.tracer.span(
                "rpc.requeue",
                parent=self.parent,
                worker=self.link.address,
                jobs=list(requeued),
            ):
                pass


class _MapState:
    """Shared bookkeeping of one fan-out (``map`` or streaming ``imap``).

    All transitions run under one condition variable: admit (the
    streaming producer growing the queue), claim (pending queue first,
    then straggler duplication of the oldest in-flight job), complete
    (first result wins), fail (re-queue a dead link's unacknowledged
    window unless a job's retry budget ran dry — those are *abandoned*
    to inline execution), and abandon (unpicklable items).

    ``open_ended=True`` is the streaming mode: the item list grows via
    :meth:`admit` until :meth:`seal`, blocking claims wait for more
    input instead of returning, and straggler duplication stays off (an
    idle worker would otherwise duplicate every trickling item).
    """

    def __init__(self, items=(), open_ended: bool = False) -> None:
        items = list(items)
        self.items: List[object] = items
        self.results: List[object] = [None] * len(items)
        self.done = [False] * len(items)
        self.attempts = [0] * len(items)
        self.dispatches = [0] * len(items)
        self.pending = deque(range(len(items)))
        #: link -> set of indices that link is currently running.
        self.in_flight: Dict[object, set] = {}
        self.started: Dict[int, float] = {}
        #: indices given up on remotely (budget dry / unpicklable).
        self.abandoned: set = set()
        #: index -> error message for jobs that raised remotely.
        self.errors: Dict[int, str] = {}
        self.n_done = 0
        self.open_ended = bool(open_ended)
        self.closed = False
        self.active_workers = 0
        self.job_error: Optional[str] = None
        self.cond = threading.Condition()
        self._blobs: Dict[int, bytes] = {}

    # -- streaming producer side ----------------------------------------
    def admit(self, item) -> int:
        """Append one item to the queue; returns its index."""
        with self.cond:
            index = len(self.items)
            self.items.append(item)
            self.results.append(None)
            self.done.append(False)
            self.attempts.append(0)
            self.dispatches.append(0)
            self.pending.append(index)
            self.cond.notify_all()
            return index

    def seal(self) -> None:
        """The input iterator is exhausted: no more admits will come."""
        with self.cond:
            self.open_ended = False
            self.cond.notify_all()

    def close(self) -> None:
        """Abort: wake every claimer with a terminal ``None``."""
        with self.cond:
            self.closed = True
            self.cond.notify_all()

    def wait_result(self, index: int) -> str:
        """Block until ``index`` is done (``"done"``) or unreachable
        remotely (``"orphaned"``: abandoned, or no worker left)."""
        with self.cond:
            while True:
                if self.done[index]:
                    return "done"
                if index in self.abandoned or self.active_workers == 0:
                    return "orphaned"
                self.cond.wait(timeout=0.5)

    def release(self, index: int) -> None:
        """Drop a yielded item/result so long streams stay bounded."""
        with self.cond:
            self.items[index] = None
            self.results[index] = None
            self._blobs.pop(index, None)

    # -- worker side ----------------------------------------------------
    def worker_started(self) -> None:
        with self.cond:
            self.active_workers += 1

    def worker_exited(self) -> None:
        with self.cond:
            self.active_workers -= 1
            self.cond.notify_all()

    def item_blob(self, index: int) -> bytes:
        """The item's pickle, cached so retries don't re-serialize."""
        blob = self._blobs.get(index)
        if blob is None:
            blob = pickle.dumps(
                self.items[index], protocol=pickle.HIGHEST_PROTOCOL
            )
            self._blobs[index] = blob
        return blob

    def fair_share(self, cap: int) -> int:
        """Jobs one frame may take without starving the other links."""
        with self.cond:
            active = max(1, self.active_workers)
            return max(1, min(cap, len(self.pending) // (2 * active) + 1))

    def claim(
        self, link, straggler_redispatch: int = 1, block: bool = True
    ) -> Tuple[Optional[int], bool]:
        """Next job for ``link``: ``(index, is_duplicate)`` or ``(None, _)``.

        Non-blocking claims (``block=False``) return immediately when
        the pending queue is empty — the window-fill path.  Blocking
        claims wait for re-queues (and, while ``open_ended``, for
        admits), duplicate stragglers once a sealed queue drains, and
        return ``None`` when the fan-out is complete or closed.
        """
        with self.cond:
            while True:
                if self.closed:
                    return None, False
                while self.pending:
                    index = self.pending.popleft()
                    if not self.done[index] and index not in self.abandoned:
                        self._start(link, index)
                        return index, False
                if not block:
                    return None, False
                if not self.open_ended:
                    if self.n_done >= len(self.items):
                        return None, False
                    # Queue drained for good: duplicate the oldest
                    # in-flight job of another link (bounded per job),
                    # else wait for a re-queue or completion.
                    candidates = [
                        index
                        for owner, indices in self.in_flight.items()
                        if owner is not link
                        for index in indices
                        if not self.done[index]
                        and index not in self.abandoned
                        and self.dispatches[index] <= straggler_redispatch
                    ]
                    if candidates:
                        index = min(
                            candidates,
                            key=lambda i: self.started.get(i, 0.0),
                        )
                        self._start(link, index)
                        return index, True
                    if not any(self.in_flight.values()):
                        return None, False
                self.cond.wait(timeout=0.5)

    def _start(self, link, index: int) -> None:
        self.in_flight.setdefault(link, set()).add(index)
        self.dispatches[index] += 1
        self.started.setdefault(index, time.monotonic())

    def complete(self, link, index: int, value, error=None) -> None:
        with self.cond:
            self.in_flight.get(link, set()).discard(index)
            if not self.done[index]:
                self.done[index] = True
                self.n_done += 1
                self.abandoned.discard(index)
                if error is not None:
                    self.errors[index] = error
                    if self.job_error is None:
                        self.job_error = error
                else:
                    self.results[index] = value
                self._blobs.pop(index, None)
            self.cond.notify_all()

    def fail(self, link, retries: int) -> List[int]:
        """Re-queue every unacknowledged job in a dead link's window."""
        with self.cond:
            indices = sorted(self.in_flight.pop(link, set()))
            requeued = []
            for index in indices:
                if self.done[index]:
                    continue
                self.attempts[index] += 1
                if self.attempts[index] > retries + 1:
                    # Retry budget dry: leave it for inline execution.
                    self.abandoned.add(index)
                    continue
                self.pending.append(index)
                requeued.append(index)
            self.cond.notify_all()
            return requeued

    def abandon(self, link, index: int) -> None:
        """Give up on dispatching ``index`` remotely (runs inline)."""
        with self.cond:
            self.in_flight.get(link, set()).discard(index)
            if not self.done[index]:
                self.abandoned.add(index)
            self.cond.notify_all()

    def unfinished(self) -> List[int]:
        with self.cond:
            return [
                index
                for index in range(len(self.items))
                if not self.done[index]
            ]


def spawn_worker_process(
    store_dir,
    host: str = "127.0.0.1",
    port: int = 0,
    python=None,
    env: Optional[dict] = None,
    delay_ms: float = 0.0,
    cache_bytes: Optional[int] = None,
):
    """Launch ``python -m repro.cli worker`` and wait for its endpoint.

    Returns ``(process, "host:port")``.  The worker announces its bound
    endpoint as the first stdout line (``listening on HOST:PORT``),
    which matters when ``port`` is 0.  ``delay_ms`` forwards the
    per-frame fault-injection latency knob (``--delay-ms``), which the
    pipelining benchmark uses to make RTT the bottleneck on loopback.
    Benchmark/test helper — the production path is operators starting
    workers on each host.
    """
    import subprocess
    import sys

    argv = [
        python or sys.executable,
        "-m",
        "repro.cli",
        "worker",
        "--listen",
        f"{host}:{port}",
        "--store-dir",
        str(store_dir),
    ]
    if delay_ms:
        argv += ["--delay-ms", str(delay_ms)]
    if cache_bytes is not None:
        argv += ["--cache-bytes", str(cache_bytes)]
    process = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = process.stdout.readline().strip()
    prefix = "listening on "
    if not line.startswith(prefix):
        process.kill()
        raise RPCError(f"worker failed to start: {line!r}")
    return process, line[len(prefix):]
