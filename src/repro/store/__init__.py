"""Disk-backed state for the alignment engine: spill, resume, fan out.

The store layer is what lets the engine outgrow RAM and survive
restarts, built from three pieces that share one ``store_dir``:

* :mod:`repro.store.arena` — :class:`MatrixArena`, a versioned,
  atomically-written, memory-mapped matrix store.  Sessions spill their
  count matrices into it and read them back as mmaps, so the resident
  set is the pages in flight rather than every materialized matrix;
* :mod:`repro.store.checkpoint` — :class:`SessionCheckpoint`, atomic
  snapshot/restore of session plus active-loop state with a resume path
  that is byte-identical to an uninterrupted run;
* :mod:`repro.store.procwork` — picklable block descriptors and job
  functions resolved against the shared arena, the work units of the
  :class:`~repro.engine.parallel.ProcessExecutor` (matrices cross
  process boundaries as page-cache mappings, never as pickles);
* :mod:`repro.store.rpc` — :class:`RPCExecutor` and
  :class:`WorkerServer`, which ship those same work units to remote
  workers over a content-addressed arena transport keyed on the
  manifest's SHA-256 digests — the multi-host scale jump.
"""

from repro.store.arena import MatrixArena, as_arena
from repro.store.checkpoint import CHECKPOINT_FILENAME, SessionCheckpoint
from repro.store.memory import peak_rss_bytes
from repro.store.procwork import (
    SESSION_META,
    SESSION_SLOTS,
    ArenaLinearScorer,
    ArenaSpec,
    BlockDescriptor,
    col_sums_slot,
    counts_slot,
    extract_block_job,
    model_score_block_job,
    row_sums_slot,
    score_block_job,
)
from repro.store.rpc import (
    PROTOCOL_VERSION,
    RPCExecutor,
    RPCMetrics,
    WorkerServer,
    spawn_worker_process,
)

__all__ = [
    "ArenaLinearScorer",
    "ArenaSpec",
    "BlockDescriptor",
    "CHECKPOINT_FILENAME",
    "MatrixArena",
    "PROTOCOL_VERSION",
    "RPCExecutor",
    "RPCMetrics",
    "SESSION_META",
    "SESSION_SLOTS",
    "SessionCheckpoint",
    "WorkerServer",
    "as_arena",
    "spawn_worker_process",
    "col_sums_slot",
    "counts_slot",
    "extract_block_job",
    "model_score_block_job",
    "peak_rss_bytes",
    "row_sums_slot",
    "score_block_job",
]
