"""Process memory accounting for the store benchmarks and run metadata.

``ru_maxrss`` is the kernel's high-water mark of resident set size for
the calling process — the honest measure of "did spilling matrices to
disk actually shrink the footprint".  It only ever grows, so comparing
two execution modes requires running each in its own process (which
``bench_engine_store`` does).
"""

from __future__ import annotations

import sys


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    Returns ``0`` on platforms without the :mod:`resource` module
    (Windows), where callers should treat the value as unavailable
    rather than as an empty footprint.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return int(usage) * (1 if sys.platform == "darwin" else 1024)
