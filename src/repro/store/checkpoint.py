"""Atomic checkpoint/resume for long-running alignment fits.

A crashed active-learning sweep loses everything the oracle's budget
already bought; at the scales the ROADMAP targets a sweep is hours of
work.  :class:`SessionCheckpoint` makes the loop durable:

* after every query round, the model saves the session's state dict
  (known anchors, folded counts, pending deltas — see
  :meth:`~repro.engine.session.AlignmentSession.state_dict`) together
  with an opaque *payload* of loop state (clamped labels, bought
  queries, the label vector, oracle answers, strategy RNG state, and —
  since session/active state v3 — the model-backend state: dual
  coefficients, the landmark sample and map statistics of a fitted
  kernel map, so resume is byte-identical for non-ridge models too);
* the write is **atomic** — a temporary file ``os.replace``-d over the
  previous checkpoint — so a crash mid-save leaves the prior round's
  checkpoint intact, never a torn file;
* on restart, the same model construction finds the checkpoint and
  resumes from the last completed round.  Because the session state
  dict restores counts, anchors and the network-evolution log
  bit-exactly and the payload restores every loop variable including
  RNG state, the resumed run is **byte-identical** to an uninterrupted
  one — asserted by the store test suite and ``bench_engine_store``;
* with ``keep_last=N`` the previous snapshot rotates to
  ``checkpoint.pkl.1`` (and so on) before every save, so the last N
  rounds stay individually recoverable instead of last-round-wins.

``interrupt_after`` exists for tests and the ``engine checkpoint`` CLI
demo: it raises :class:`~repro.exceptions.CheckpointInterrupt` *after*
the Nth save completes, simulating a crash at a durable point.

The checkpoint is generic over what it snapshots: any object exposing
``state_dict()``/``load_state_dict()`` works, which keeps this module
free of engine imports (and import cycles).
"""

from __future__ import annotations

import logging
import os
import pickle
from pathlib import Path
from typing import Any, Optional, Tuple, Union

from repro.exceptions import CheckpointInterrupt, StoreError

logger = logging.getLogger(__name__)

_FORMAT_VERSION = 1

#: Default checkpoint filename inside a store directory.
CHECKPOINT_FILENAME = "checkpoint.pkl"


class SessionCheckpoint:
    """Durable snapshot of a session plus opaque loop state.

    Parameters
    ----------
    path:
        Either a directory (the checkpoint file is placed inside it as
        ``checkpoint.pkl`` — the convention the CLI and the session
        ``store_dir`` share) or an explicit file path ending in
        ``.pkl``.
    interrupt_after:
        When set, the Nth :meth:`save` raises
        :class:`~repro.exceptions.CheckpointInterrupt` after the write
        lands — the crash-simulation hook used by tests and the
        ``engine checkpoint`` command.
    keep_last:
        Retention depth.  ``1`` (the default) keeps only the latest
        snapshot — the historical last-round-wins behavior.  ``N > 1``
        rotates the previous snapshot to ``checkpoint.pkl.1`` (and so
        on, logrotate style) before every save, so the last ``N``
        rounds stay recoverable via ``load(generation=k)`` — e.g. to
        rewind a run whose final rounds bought bad labels.  Rotation is
        hardlink-based: the latest checkpoint file exists at every
        instant, so crash-atomicity is unchanged.
    """

    def __init__(
        self,
        path: Union[str, Path],
        interrupt_after: Optional[int] = None,
        keep_last: int = 1,
    ) -> None:
        path = Path(path)
        if path.suffix == ".pkl":
            self.path = path
        else:
            self.path = path / CHECKPOINT_FILENAME
        if interrupt_after is not None and interrupt_after < 1:
            raise StoreError("interrupt_after must be >= 1")
        if keep_last < 1:
            raise StoreError("keep_last must be >= 1")
        self.interrupt_after = interrupt_after
        self.keep_last = int(keep_last)
        self.saves = 0
        # Last serialized session state, reused by clean saves so a
        # round that did not touch the session never re-pickles its
        # (potentially huge) count matrices.
        self._session_cache: Optional[dict] = None

    # ------------------------------------------------------------------
    def exists(self) -> bool:
        """Whether a checkpoint file is present."""
        return self.path.exists()

    def _generation_path(self, generation: int) -> Path:
        """File path of the ``generation``-rounds-ago snapshot."""
        if generation == 0:
            return self.path
        return self.path.with_name(f"{self.path.name}.{generation}")

    def history(self) -> Tuple[Path, ...]:
        """Existing rotated snapshots, newest first (latest excluded)."""
        found = []
        for candidate in self.path.parent.glob(self.path.name + ".*"):
            suffix = candidate.name[len(self.path.name) + 1:]
            if suffix.isdigit():
                found.append((int(suffix), candidate))
        return tuple(path for _, path in sorted(found))

    def _rotate(self) -> None:
        """Shift snapshots one generation older, pruning past the bound.

        The latest checkpoint is *hardlinked* to generation 1 rather
        than moved, so ``checkpoint.pkl`` exists at every instant and a
        crash mid-rotation can never lose the newest durable round.
        """
        if self.keep_last <= 1 or not self.path.exists():
            return
        for generation in range(self.keep_last - 1, 1, -1):
            younger = self._generation_path(generation - 1)
            if younger.exists():
                os.replace(younger, self._generation_path(generation))
        oldest_kept = self.keep_last - 1
        for stale in self.history():
            if int(stale.name[len(self.path.name) + 1:]) > oldest_kept:
                stale.unlink()
        first = self._generation_path(1)
        try:
            first.unlink()
        except FileNotFoundError:
            pass
        os.link(self.path, first)

    def save(
        self,
        session: Optional[Any] = None,
        payload: Any = None,
        session_dirty: bool = True,
    ) -> None:
        """Atomically persist the session state and the loop payload.

        ``session`` may be ``None`` when only loop state needs saving
        (e.g. a fit without feature refresh, whose session never
        changes); it must expose ``state_dict()`` otherwise.  With
        ``session_dirty=False`` the previously serialized session state
        is reused instead of calling ``state_dict()`` again — the fast
        path for query rounds that changed only loop variables.  (The
        first save of a session always serializes it, dirty or not.)
        """
        if session is not None and (session_dirty or self._session_cache is None):
            self._session_cache = session.state_dict()
        record = {
            "format_version": _FORMAT_VERSION,
            "session": self._session_cache if session is not None else None,
            "payload": payload,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(
            pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        )
        self._rotate()
        os.replace(tmp, self.path)
        self.saves += 1
        logger.debug(
            "checkpoint save #%d -> %s (session %s)",
            self.saves,
            self.path,
            "reserialized" if session is not None and session_dirty else "cached",
        )
        if self.interrupt_after is not None and self.saves >= self.interrupt_after:
            raise CheckpointInterrupt(
                f"simulated crash after checkpoint save #{self.saves} "
                f"({self.path})"
            )

    def load(self, generation: int = 0) -> Tuple[Optional[dict], Any]:
        """Read a checkpoint; returns ``(session_state, payload)``.

        ``generation`` selects a rotated snapshot: ``0`` (default) is
        the latest, ``1`` the round before it, up to ``keep_last - 1``.
        """
        if generation < 0:
            raise StoreError("generation must be >= 0")
        path = self._generation_path(generation)
        if not path.exists():
            raise StoreError(f"no checkpoint at {path}")
        try:
            record = pickle.loads(path.read_bytes())
        except Exception as error:  # torn files cannot occur; bad input can
            raise StoreError(
                f"unreadable checkpoint at {path}: {error}"
            ) from None
        version = record.get("format_version")
        if version != _FORMAT_VERSION:
            raise StoreError(
                f"unsupported checkpoint format version {version!r}"
            )
        return record["session"], record["payload"]

    def restore(self, session: Optional[Any] = None) -> Any:
        """Load the checkpoint into ``session``; returns the payload.

        When the checkpoint carries session state, ``session`` must be
        supplied and expose ``load_state_dict``.
        """
        session_state, payload = self.load()
        if session_state is not None:
            if session is None:
                raise StoreError(
                    "checkpoint carries session state but no session was "
                    "supplied to restore into"
                )
            session.load_state_dict(session_state)
            # Seed the clean-save cache so a resumed loop's first
            # unchanged round also skips re-serialization.
            self._session_cache = session_state
        logger.info("restored checkpoint %s", self.path)
        return payload

    def prune_history(self) -> int:
        """Delete rotated snapshots, keeping only the latest checkpoint.

        The long-drift compaction hook: after a session compacts, its
        slot coordinates shift, so rotated pre-compaction generations
        can no longer be restored into the live session (their
        compaction epoch is older — ``load_state_dict`` refuses them).
        Pruning them bounds the checkpoint chain's disk footprint to
        one snapshot.  Also drops the clean-save session cache — the
        next save must re-serialize the (compacted) session state.
        Returns the number of files removed.
        """
        removed = 0
        for stale in self.history():
            try:
                stale.unlink()
            except FileNotFoundError:  # pragma: no cover - racing clear
                continue
            removed += 1
        self._session_cache = None
        return removed

    def clear(self) -> bool:
        """Delete the checkpoint and its rotated history.

        Returns whether the latest checkpoint file existed.
        """
        for stale in self.history():
            stale.unlink()
        try:
            self.path.unlink()
            return True
        except FileNotFoundError:
            return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SessionCheckpoint({str(self.path)!r}, saves={self.saves}, "
            f"interrupt_after={self.interrupt_after}, "
            f"keep_last={self.keep_last})"
        )
