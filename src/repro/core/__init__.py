"""Core alignment models: ActiveIter, Iter-MPMD and the SVM baselines."""

from repro.core.activeiter import ActiveIter
from repro.core.base import AlignmentModel, AlignmentResult, AlignmentTask
from repro.core.itermpmd import IterMPMD
from repro.core.pipeline import AlignmentPipeline
from repro.core.svm_baselines import SVMAligner

__all__ = [
    "ActiveIter",
    "AlignmentModel",
    "AlignmentPipeline",
    "AlignmentResult",
    "AlignmentTask",
    "IterMPMD",
    "SVMAligner",
]
