"""End-to-end alignment pipeline: networks in, anchor predictions out.

:class:`AlignmentPipeline` wires the stages for the common use case —
callers who just want predicted anchors from an aligned pair and a few
labeled examples, without assembling tasks manually:

    aligned pair + labeled links
        -> alignment session (meta diagram features, training anchors only)
        -> model (ActiveIter / Iter-MPMD / SVM)
        -> predicted anchor links

The pipeline owns one :class:`~repro.engine.session.AlignmentSession`
per lifetime: repeated ``run*`` calls reuse its cached count matrices
(attribute structures are never recomputed, anchor-dependent ones are
delta-updated), and active runs with ``refresh_features=True`` get the
session's sparse incremental anchor path.

The evaluation harness in :mod:`repro.eval` builds tasks directly for
finer experimental control; this pipeline is the library's front door.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.active.oracle import LabelOracle
from repro.active.strategies import QueryStrategy
from repro.core.activeiter import ActiveIter
from repro.core.base import AlignmentModel, AlignmentTask
from repro.core.itermpmd import IterMPMD
from repro.core.svm_baselines import SVMAligner
from repro.engine.candidates import (
    CandidateGenerator,
    linear_scorer,
    streamed_selection,
)
from repro.engine.parallel import WorkersSpec
from repro.engine.session import AlignmentSession
from repro.engine.streaming import (
    BlockSizeSpec,
    StreamedAlignmentTask,
    blockify,
    resolve_block_size,
)
from repro.exceptions import ModelError, NotFittedError
from repro.meta.diagrams import DiagramFamily
from repro.meta.features import FeatureExtractor
from repro.networks.aligned import AlignedPair
from repro.store.arena import MatrixArena
from repro.store.procwork import ArenaLinearScorer
from repro.types import Labeled, LinkPair


class AlignmentPipeline:
    """Feature extraction plus model fitting in one object.

    Parameters
    ----------
    pair:
        The aligned networks.
    family:
        Meta structure family for features (defaults to the full Φ).
    include_words:
        Forwarded to the session (enables P7 matrices).
    feature_map:
        Optional kernel feature map ``g`` (§III-C.1) applied to the
        extracted proximity features; any object with
        ``fit(X)``/``transform(X)`` works (see :mod:`repro.ml.kernels`).
        ``None`` is the paper's linear kernel.
    session:
        Share an existing :class:`AlignmentSession` (e.g. with another
        pipeline or a candidate generator).  Defaults to a private one,
        created lazily on the first task build.
    workers:
        Execution-layer knob forwarded to the session: ``None``/``1``
        for serial, >= 2 for a thread pool, or a shared
        :class:`~repro.engine.parallel.Executor`.  Ignored when an
        existing ``session`` is supplied.
    store:
        Disk-backed matrix store (a directory path or a shared
        :class:`~repro.store.arena.MatrixArena`) forwarded to the
        session: count matrices spill to disk and are served as memory
        maps, and :meth:`stream_predict` can fan block scoring across a
        :class:`~repro.engine.parallel.ProcessExecutor`.  Ignored when
        an existing ``session`` is supplied.

    Notes
    -----
    The pipeline is a context manager; :meth:`close` (idempotent)
    releases the session it created — its thread/process pool and its
    arena handles — so ``with AlignmentPipeline(...) as pipeline:``
    never leaks pools, even on exceptions.
    """

    def __init__(
        self,
        pair: AlignedPair,
        family: Optional[DiagramFamily] = None,
        include_words: bool = False,
        feature_map=None,
        session: Optional[AlignmentSession] = None,
        workers: WorkersSpec = None,
        store: Optional[Union[str, Path, MatrixArena]] = None,
    ) -> None:
        self.pair = pair
        self.family = family
        self.include_words = include_words
        self.feature_map = feature_map
        self.workers = workers
        self.store = store
        self.session_: Optional[AlignmentSession] = session
        self._owns_session = session is None
        self.extractor_: Optional[FeatureExtractor] = None
        self.model_: Optional[AlignmentModel] = None
        self.task_: Optional[AlignmentTask] = None

    # ------------------------------------------------------------------
    def _session_for(self, known_anchors: Sequence[LinkPair]) -> AlignmentSession:
        """The pipeline's session, anchored at ``known_anchors``.

        Created on first use; later calls reuse cached structure counts
        and delta-update the anchor-dependent ones.
        """
        if self.session_ is None:
            self.session_ = AlignmentSession(
                self.pair,
                family=self.family,
                known_anchors=known_anchors,
                include_words=self.include_words,
                workers=self.workers,
                store=self.store,
            )
            self._owns_session = True
        else:
            self.session_.set_anchors(known_anchors)
        return self.session_

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the session the pipeline created (idempotent).

        A session passed in at construction is shared state and stays
        open — its owner closes it.
        """
        if self._owns_session and self.session_ is not None:
            self.session_.close()

    def __enter__(self) -> "AlignmentPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def build_task(
        self,
        candidates: Sequence[LinkPair],
        labeled: Sequence[Labeled],
    ) -> AlignmentTask:
        """Extract features and assemble an :class:`AlignmentTask`.

        Only the *positive* labeled links feed the anchor matrix used in
        path counting, so test/unlabeled anchors never leak.
        """
        if not candidates:
            raise ModelError("no candidate links supplied")
        # One canonical list object: the session's view cache is keyed by
        # list identity, so extraction and the task must share it or the
        # active loop would maintain (and delta-patch) two views.
        candidates = list(candidates)
        candidate_index = {pair: i for i, pair in enumerate(candidates)}
        labeled_indices: List[int] = []
        labeled_values: List[int] = []
        for item in labeled:
            try:
                labeled_indices.append(candidate_index[item.pair])
            except KeyError:
                raise ModelError(
                    f"labeled link {item.pair!r} is not in the candidate list"
                ) from None
            labeled_values.append(item.label)
        known_anchors = [item.pair for item in labeled if item.label == 1]
        session = self._session_for(known_anchors)
        self.extractor_ = FeatureExtractor.from_session(session)
        X = session.extract(candidates)
        if self.feature_map is not None:
            self.feature_map.fit(X)
            X = self.feature_map.transform(X)
        self.task_ = AlignmentTask(
            pairs=candidates,
            X=X,
            labeled_indices=np.asarray(labeled_indices, dtype=np.int64),
            labeled_values=np.asarray(labeled_values, dtype=np.int64),
        )
        return self.task_

    def build_streamed_task(
        self,
        candidates: Sequence[LinkPair],
        labeled: Sequence[Labeled],
        block_size: BlockSizeSpec = 4096,
    ) -> StreamedAlignmentTask:
        """Assemble a :class:`StreamedAlignmentTask` — no |H| x d matrix.

        The candidate list is chopped into ``block_size`` blocks
        (``"auto"`` tunes the size from a measured probe extraction);
        features are extracted per block, per pass, from the pipeline's
        session.  Labeling rules match :meth:`build_task` exactly.
        """
        if not candidates:
            raise ModelError("no candidate links supplied")
        if self.feature_map is not None:
            raise ModelError(
                "streamed tasks support the linear kernel only "
                "(feature_map transforms need the materialized matrix)"
            )
        candidates = list(candidates)
        candidate_index = {pair: i for i, pair in enumerate(candidates)}
        labeled_indices: List[int] = []
        labeled_values: List[int] = []
        for item in labeled:
            try:
                labeled_indices.append(candidate_index[item.pair])
            except KeyError:
                raise ModelError(
                    f"labeled link {item.pair!r} is not in the candidate list"
                ) from None
            labeled_values.append(item.label)
        known_anchors = [item.pair for item in labeled if item.label == 1]
        session = self._session_for(known_anchors)
        self.extractor_ = FeatureExtractor.from_session(session)
        resolved = resolve_block_size(session, candidates, block_size)
        task = StreamedAlignmentTask(
            session,
            blockify(candidates, resolved),
            np.asarray(labeled_indices, dtype=np.int64),
            np.asarray(labeled_values, dtype=np.int64),
        )
        task.block_size = resolved
        self.task_ = task
        return task

    # ------------------------------------------------------------------
    def run(
        self,
        candidates: Sequence[LinkPair],
        labeled: Sequence[Labeled],
        model: Optional[AlignmentModel] = None,
    ) -> List[LinkPair]:
        """Fit a model and return its predicted anchor links.

        ``model`` defaults to :class:`~repro.core.itermpmd.IterMPMD`.
        """
        task = self.build_task(candidates, labeled)
        self.model_ = model if model is not None else IterMPMD()
        self.model_.fit(task)
        return self.model_.predicted_anchors()

    def run_active(
        self,
        candidates: Sequence[LinkPair],
        labeled: Sequence[Labeled],
        budget: int,
        strategy: Optional[QueryStrategy] = None,
        batch_size: int = 5,
        refresh_features: bool = False,
        streamed: bool = False,
        block_size: BlockSizeSpec = 4096,
        checkpoint=None,
    ) -> List[LinkPair]:
        """Fit ActiveIter with an oracle built from the pair's ground truth.

        The oracle answers from ``pair.anchors`` — appropriate for
        benchmark/simulation settings where ground truth exists.  For
        real deployments construct :class:`ActiveIter` directly with a
        custom oracle.  With ``refresh_features=True`` queried positives
        flow back into the session as sparse delta anchor updates.

        With ``streamed=True`` the fit runs over candidate blocks of
        ``block_size`` instead of a materialized feature matrix (see
        :meth:`build_streamed_task`); query strategies consume scored
        blocks and select the same query sets as the materialized path.

        ``checkpoint`` (a
        :class:`~repro.store.checkpoint.SessionCheckpoint`) makes the
        query loop durable and resumable — see :class:`ActiveIter`.
        """
        if refresh_features and self.feature_map is not None:
            raise ModelError(
                "refresh_features is incompatible with a feature_map: "
                "refreshed proximity columns cannot be re-transformed in place"
            )
        if streamed:
            task = self.build_streamed_task(
                candidates, labeled, block_size=block_size
            )
        else:
            task = self.build_task(candidates, labeled)
        oracle = LabelOracle(self.pair.anchors, budget=budget)
        self.model_ = ActiveIter(
            oracle=oracle,
            strategy=strategy,
            batch_size=batch_size,
            session=self.session_ if (refresh_features or streamed) else None,
            refresh_features=refresh_features,
            checkpoint=checkpoint,
        )
        self.model_.fit(task)
        return self.model_.predicted_anchors()

    def run_svm(
        self,
        candidates: Sequence[LinkPair],
        labeled: Sequence[Labeled],
        C: float = 1.0,
    ) -> List[LinkPair]:
        """Fit the SVM baseline over the pipeline's feature family."""
        task = self.build_task(candidates, labeled)
        self.model_ = SVMAligner(C=C)
        self.model_.fit(task)
        return self.model_.predicted_anchors()

    # ------------------------------------------------------------------
    def stream_predict(
        self,
        generator: Optional[CandidateGenerator] = None,
        threshold: float = 0.5,
        block_size: int = 4096,
        min_structures: int = 1,
    ) -> List[LinkPair]:
        """Score the *whole pruned candidate space* with the fitted model.

        The sampled-H task a model was fitted on covers only a slice of
        |U1| x |U2|; this method reuses the learned linear weights to
        sweep the full space in streamed blocks — candidates are pruned
        to the union of the meta structures' supports
        (:meth:`CandidateGenerator.from_support`) and selected with the
        exact streamed greedy pass.  Requires a fitted linear model
        (Iter-MPMD / ActiveIter) on untransformed features.
        """
        if self.session_ is None or self.model_ is None:
            raise NotFittedError("run a model before streaming predictions")
        weights = getattr(self.model_, "weights_", None)
        if weights is None:
            raise ModelError(
                "stream_predict needs a linear model exposing weights_"
            )
        if self.feature_map is not None:
            raise ModelError(
                "stream_predict supports the linear kernel only "
                "(feature_map transforms are not streamable)"
            )
        if generator is None:
            # Support pruning drops pairs with all-zero proximity
            # features, which is only sound while such pairs score below
            # the threshold.  With a bias column they score exactly the
            # bias weight — if that alone clears the threshold (a
            # degenerate but possible fit), sweep the full space instead.
            zero_feature_score = (
                float(weights[-1]) if self.session_.include_bias else 0.0
            )
            if zero_feature_score > threshold:
                generator = CandidateGenerator(
                    self.pair, block_size=block_size
                )
            else:
                generator = CandidateGenerator.from_support(
                    self.session_,
                    block_size=block_size,
                    min_structures=min_structures,
                )
        known = self.session_.known_anchors
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if (
            self.session_.executor.crosses_processes
            and self.session_.arena is not None
        ):
            # Cross-process fan-out: ship a picklable arena-backed
            # scorer; workers resolve blocks against the shared
            # memory-mapped store (or their synced replica).  Scores
            # (and the selection) are byte-identical to the in-process
            # sweep.
            score_fn = ArenaLinearScorer(
                spec=self.session_.flush_store(), weights=weights
            )
        else:
            score_fn = linear_scorer(self.session_, weights)
        selected = streamed_selection(
            generator,
            score_fn,
            threshold=threshold,
            blocked_left={left for left, _ in known},
            blocked_right={right for _, right in known},
            workers=self.session_.executor,
        )
        return [pair for pair, _ in selected]
