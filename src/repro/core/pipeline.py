"""End-to-end alignment pipeline: networks in, anchor predictions out.

:class:`AlignmentPipeline` wires the stages for the common use case —
callers who just want predicted anchors from an aligned pair and a few
labeled examples, without assembling tasks manually:

    aligned pair + labeled links
        -> meta diagram feature extraction (training anchors only)
        -> model (ActiveIter / Iter-MPMD / SVM)
        -> predicted anchor links

The evaluation harness in :mod:`repro.eval` builds tasks directly for
finer experimental control; this pipeline is the library's front door.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.active.oracle import LabelOracle
from repro.active.strategies import QueryStrategy
from repro.core.activeiter import ActiveIter
from repro.core.base import AlignmentModel, AlignmentTask
from repro.core.itermpmd import IterMPMD
from repro.core.svm_baselines import SVMAligner
from repro.exceptions import ModelError
from repro.meta.diagrams import DiagramFamily
from repro.meta.features import FeatureExtractor
from repro.networks.aligned import AlignedPair
from repro.types import Labeled, LinkPair


class AlignmentPipeline:
    """Feature extraction plus model fitting in one object.

    Parameters
    ----------
    pair:
        The aligned networks.
    family:
        Meta structure family for features (defaults to the full Φ).
    include_words:
        Forwarded to the feature extractor (enables P7 matrices).
    feature_map:
        Optional kernel feature map ``g`` (§III-C.1) applied to the
        extracted proximity features; any object with
        ``fit(X)``/``transform(X)`` works (see :mod:`repro.ml.kernels`).
        ``None`` is the paper's linear kernel.
    """

    def __init__(
        self,
        pair: AlignedPair,
        family: Optional[DiagramFamily] = None,
        include_words: bool = False,
        feature_map=None,
    ) -> None:
        self.pair = pair
        self.family = family
        self.include_words = include_words
        self.feature_map = feature_map
        self.extractor_: Optional[FeatureExtractor] = None
        self.model_: Optional[AlignmentModel] = None
        self.task_: Optional[AlignmentTask] = None

    # ------------------------------------------------------------------
    def build_task(
        self,
        candidates: Sequence[LinkPair],
        labeled: Sequence[Labeled],
    ) -> AlignmentTask:
        """Extract features and assemble an :class:`AlignmentTask`.

        Only the *positive* labeled links feed the anchor matrix used in
        path counting, so test/unlabeled anchors never leak.
        """
        if not candidates:
            raise ModelError("no candidate links supplied")
        candidate_index = {pair: i for i, pair in enumerate(candidates)}
        labeled_indices: List[int] = []
        labeled_values: List[int] = []
        for item in labeled:
            try:
                labeled_indices.append(candidate_index[item.pair])
            except KeyError:
                raise ModelError(
                    f"labeled link {item.pair!r} is not in the candidate list"
                ) from None
            labeled_values.append(item.label)
        known_anchors = [item.pair for item in labeled if item.label == 1]
        self.extractor_ = FeatureExtractor(
            self.pair,
            family=self.family,
            known_anchors=known_anchors,
            include_words=self.include_words,
        )
        X = self.extractor_.extract(candidates)
        if self.feature_map is not None:
            self.feature_map.fit(X)
            X = self.feature_map.transform(X)
        self.task_ = AlignmentTask(
            pairs=list(candidates),
            X=X,
            labeled_indices=np.asarray(labeled_indices, dtype=np.int64),
            labeled_values=np.asarray(labeled_values, dtype=np.int64),
        )
        return self.task_

    # ------------------------------------------------------------------
    def run(
        self,
        candidates: Sequence[LinkPair],
        labeled: Sequence[Labeled],
        model: Optional[AlignmentModel] = None,
    ) -> List[LinkPair]:
        """Fit a model and return its predicted anchor links.

        ``model`` defaults to :class:`~repro.core.itermpmd.IterMPMD`.
        """
        task = self.build_task(candidates, labeled)
        self.model_ = model if model is not None else IterMPMD()
        self.model_.fit(task)
        return self.model_.predicted_anchors()

    def run_active(
        self,
        candidates: Sequence[LinkPair],
        labeled: Sequence[Labeled],
        budget: int,
        strategy: Optional[QueryStrategy] = None,
        batch_size: int = 5,
        refresh_features: bool = False,
    ) -> List[LinkPair]:
        """Fit ActiveIter with an oracle built from the pair's ground truth.

        The oracle answers from ``pair.anchors`` — appropriate for
        benchmark/simulation settings where ground truth exists.  For
        real deployments construct :class:`ActiveIter` directly with a
        custom oracle.
        """
        task = self.build_task(candidates, labeled)
        oracle = LabelOracle(self.pair.anchors, budget=budget)
        self.model_ = ActiveIter(
            oracle=oracle,
            strategy=strategy,
            batch_size=batch_size,
            feature_extractor=self.extractor_ if refresh_features else None,
            refresh_features=refresh_features,
        )
        self.model_.fit(task)
        return self.model_.predicted_anchors()

    def run_svm(
        self,
        candidates: Sequence[LinkPair],
        labeled: Sequence[Labeled],
        C: float = 1.0,
    ) -> List[LinkPair]:
        """Fit the SVM baseline over the pipeline's feature family."""
        task = self.build_task(candidates, labeled)
        self.model_ = SVMAligner(C=C)
        self.model_.fit(task)
        return self.model_.predicted_anchors()
