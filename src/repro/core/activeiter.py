"""ActiveIter: the paper's full active network alignment model (§III).

ActiveIter wraps the Iter-MPMD alternating engine in an outer
query loop:

1. **external step (1)** — run (1-1)/(1-2) to convergence with the
   current known labels (training + queried so far);
2. **external step (2)** — select up to ``k`` likely false-negative
   candidates with the configured query strategy, buy their labels from
   the oracle, clamp them, and repeat — ``b/k`` rounds in total.

The queried links become part of the clamped label set; queried
positives also block their endpoints for the greedy selector, which is
how one bought positive label silently corrects its conflicting
negatives (the "extra label gains" of §III-C.3).

Optionally the model refreshes the anchor matrix used for feature
extraction whenever queried positives arrive (``refresh_features``);
the paper precomputes features once, so this defaults to off.

The loop also serves **evolving networks**: an ``evolution`` schedule
of ``(round, NetworkDelta)`` events applies network growth between
query rounds through the attached session's generalized delta seam —
bought labels are preserved, dirty feature columns are refreshed in
place (or re-extracted on the next streamed block pass), and the next
round's scores reflect the drifted network exactly.

Long fits can be made durable with a
:class:`~repro.store.checkpoint.SessionCheckpoint`: the loop snapshots
its complete state (clamped labels, bought queries, the label vector,
oracle answers, strategy RNG state, and — when a session is attached —
the session's anchor-derived count state plus its evolution log) after
every query round, and a model constructed over the same task finds the
checkpoint and resumes byte-identically to an uninterrupted run —
replaying any evolution events onto the freshly built pair.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.active.oracle import LabelOracle
from repro.active.strategies import ConflictFalseNegativeStrategy, QueryStrategy
from repro.core.base import AlignmentResult, AlignmentTask
from repro.core.itermpmd import AlternatingState, IterMPMD
from repro.engine.streaming import StreamedAlignmentTask
from repro.exceptions import ModelError
from repro.meta.features import FeatureExtractor
from repro.ml.backends import DenseBlockSource
from repro.networks.aligned import NetworkDelta
from repro.obs.tracing import get_tracer
from repro.store.checkpoint import SessionCheckpoint
from repro.types import LinkPair

#: One scheduled evolution event: apply the delta after query round N.
EvolutionEvent = Tuple[int, NetworkDelta]


class ActiveIter(IterMPMD):
    """Active iterative alignment with budgeted label queries.

    Parameters
    ----------
    oracle:
        Budgeted label oracle; its budget is the paper's ``b``.
    strategy:
        Query-set selection strategy; defaults to the paper's
        conflict-based false-negative strategy (τ = 0.05).
    batch_size:
        Labels bought per round (the paper's ``k``, default 5).
    c, max_iterations, tol, positive_threshold:
        Passed through to the alternating engine (see
        :class:`~repro.core.itermpmd.IterMPMD`).
    feature_extractor:
        When given together with ``refresh_features=True``, the model
        refreshes the extractor's anchor matrix with queried positives
        and re-extracts features between rounds (extension; off by
        default to match the paper's fixed-X analysis).
    session:
        An :class:`~repro.engine.session.AlignmentSession` to refresh
        through instead; the session applies sparse *delta* updates to
        anchor-dependent counts and rewrites only the affected feature
        columns of the task matrix in place — the fast path for long
        active runs.  Mutually exclusive with ``feature_extractor``
        (an extractor's own session is used when only the extractor is
        given).
    checkpoint:
        A :class:`~repro.store.checkpoint.SessionCheckpoint` making the
        query loop durable: state is saved after every round, and a fit
        that finds an existing checkpoint resumes from it instead of
        starting over — byte-identically to an uninterrupted run.  The
        caller must rebuild the model and task deterministically (same
        split, oracle budget, strategy and seed); with
        ``refresh_features=True`` the checkpoint also carries the
        session's count state and the feature matrix is re-derived on
        resume.
    evolution:
        Scheduled network drift: a sequence of ``(round, delta)``
        events, each applied through the session's
        ``apply_network_delta`` after query round ``round`` completes
        (before the round's checkpoint save, so resume replays the
        drift).  Requires a session and ``refresh_features=True`` —
        drifting the network under a frozen feature matrix would
        silently score against stale counts.  Bought labels are
        preserved; the session's sparse delta fold keeps each event far
        cheaper than a recount.
    backend:
        Model backend of the per-round fit (see
        :class:`~repro.core.itermpmd.IterMPMD` and
        :mod:`repro.ml.backends`); ``None`` keeps the paper's ridge.
        Backend state — dual coefficients, a fitted map's landmark
        sample and statistics — rides every checkpoint save, so a
        resumed run is byte-identical for non-ridge models too.
    """

    def __init__(
        self,
        oracle: LabelOracle,
        strategy: Optional[QueryStrategy] = None,
        batch_size: int = 5,
        c: float = 1.0,
        max_iterations: int = 30,
        tol: float = 0.5,
        positive_threshold: float = 0.5,
        feature_extractor: Optional[FeatureExtractor] = None,
        refresh_features: bool = False,
        session=None,
        checkpoint: Optional[SessionCheckpoint] = None,
        evolution: Optional[Sequence[EvolutionEvent]] = None,
        backend=None,
    ) -> None:
        super().__init__(
            c=c,
            max_iterations=max_iterations,
            tol=tol,
            positive_threshold=positive_threshold,
            backend=backend,
        )
        if batch_size < 1:
            raise ModelError("batch_size must be >= 1")
        if session is not None and feature_extractor is not None:
            raise ModelError(
                "pass either a session or a feature_extractor, not both"
            )
        if feature_extractor is not None and session is None:
            session = feature_extractor.session
        if refresh_features and session is None:
            raise ModelError(
                "refresh_features=True requires a session or feature_extractor"
            )
        self.oracle = oracle
        self.strategy: QueryStrategy = (
            strategy if strategy is not None else ConflictFalseNegativeStrategy()
        )
        self.batch_size = int(batch_size)
        self.feature_extractor = feature_extractor
        self.session = session
        self.refresh_features = bool(refresh_features)
        self.checkpoint = checkpoint
        self.evolution: List[EvolutionEvent] = sorted(
            ((int(round_), delta) for round_, delta in (evolution or ())),
            key=lambda event: event[0],
        )
        if self.evolution:
            if session is None or not self.refresh_features:
                raise ModelError(
                    "an evolution schedule requires a session and "
                    "refresh_features=True"
                )
            if self.evolution[0][0] < 1:
                raise ModelError("evolution rounds must be >= 1")
        # Session-update counters at the last checkpointed snapshot;
        # lets saves skip re-pickling an unchanged session.
        self._checkpoint_anchor_marker: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    # Checkpoint plumbing
    # ------------------------------------------------------------------
    def _resume_payload(self, session) -> Optional[Dict]:
        """Load loop state from an existing checkpoint, if any.

        Restores the session's count/anchor state (when the checkpoint
        carries one), the oracle's answer memory and the strategy's RNG
        state; returns the loop payload for the fit loop to continue
        from, or ``None`` for a fresh start.
        """
        if self.checkpoint is None or not self.checkpoint.exists():
            return None
        payload = self.checkpoint.restore(session)
        self.oracle.restore(payload["oracle"])
        # Backend state (absent on pre-backend checkpoints) is injected
        # when the backend instance is first resolved, before round one.
        self._pending_backend_state = payload.get("backend")
        if self._pending_backend_state is not None and self.backend is None:
            # backend=None still resolves the default ridge backend on
            # streamed fits, so ridge state is consumable (and the dense
            # path's from-scratch ridge refit matches it bit-for-bit);
            # any other kind would be silently dropped on the legacy
            # path and the resumed trajectory would diverge.
            kind = self._pending_backend_state.get("kind", "?")
            if kind != "ridge":
                raise ModelError(
                    f"checkpoint carries {kind!r} backend state but this "
                    "run has no backend configured; resume with the same "
                    "model the run was started with"
                )
        strategy_state = payload.get("strategy_state")
        if strategy_state is not None:
            if not hasattr(self.strategy, "restore_state"):
                raise ModelError(
                    "checkpoint carries strategy state but "
                    f"{type(self.strategy).__name__} has no restore_state(); "
                    "resume with the same strategy the run was started with"
                )
            self.strategy.restore_state(strategy_state)
        if session is not None:
            self._checkpoint_anchor_marker = self._session_marker(session)
        return payload

    @staticmethod
    def _session_marker(session) -> Tuple[int, int, int]:
        """Counters that change iff the session's count state changed."""
        return (
            session.stats.anchor_updates,
            session.stats.network_updates,
            getattr(session.stats, "compactions", 0),
        )

    def _save_checkpoint(
        self,
        session,
        clamped_indices: np.ndarray,
        clamped_values: np.ndarray,
        queried: List[Tuple[LinkPair, int]],
        trace: List[float],
        y: np.ndarray,
        n_rounds: int,
        evolution_position: int = 0,
    ) -> None:
        """Persist the loop state after one completed query round.

        The session's (potentially huge) count state is re-snapshotted
        only on rounds that actually changed the anchor set — rounds
        that bought no positive label reuse the previous snapshot, so
        the per-round cost is the small loop payload.
        """
        if self.checkpoint is None:
            return
        session_dirty = True
        if session is not None:
            marker = self._session_marker(session)
            session_dirty = marker != self._checkpoint_anchor_marker
            self._checkpoint_anchor_marker = marker
        self.checkpoint.save(
            session=session,
            session_dirty=session_dirty,
            payload={
                "clamped_indices": clamped_indices.copy(),
                "clamped_values": clamped_values.copy(),
                "queried": list(queried),
                "trace": list(trace),
                "y": y.copy(),
                "n_rounds": n_rounds,
                "evolution_position": int(evolution_position),
                "oracle": self.oracle.snapshot(),
                "strategy_state": (
                    self.strategy.snapshot_state()
                    if hasattr(self.strategy, "snapshot_state")
                    else None
                ),
                "backend": (
                    self._backend_instance.state_dict()
                    if self._backend_instance is not None
                    else None
                ),
            },
        )

    # ------------------------------------------------------------------
    # Network drift
    # ------------------------------------------------------------------
    def _evolution_start(self, resume: Optional[Dict] = None) -> int:
        """Schedule position to start from (skips resumed-over events).

        A checkpoint payload carries the position explicitly (required
        once session compaction may truncate the evolution log).  For
        older checkpoints without it, a checkpoint restore replays the
        interrupted run's applied schedule prefix into the session's
        evolution log, so the longest schedule prefix matching a
        *suffix* of the log is exactly what was already applied — the
        fit continues from there.  Deltas the caller applied outside
        the schedule (a pre-drifted session) match nothing and skip
        nothing.
        """
        if not self.evolution:
            return 0
        if resume is not None and "evolution_position" in resume:
            return int(resume["evolution_position"])
        log = self.session.evolution_log
        deltas = [delta for _, delta in self.evolution]
        for applied in range(min(len(deltas), len(log)), 0, -1):
            if log[-applied:] == deltas[:applied]:
                return applied
        return 0

    def _apply_due_evolution(
        self, task, n_rounds: int, position: int
    ) -> int:
        """Apply every scheduled delta due by ``n_rounds``; new position.

        Materialized tasks get their dirty feature columns rewritten in
        place (or fully re-extracted on a non-incremental session);
        streamed tasks need nothing — the next block pass extracts
        against the evolved session.
        """
        applied = False
        epoch_before = getattr(self.session, "compaction_epoch", 0)
        while (
            position < len(self.evolution)
            and self.evolution[position][0] <= n_rounds
        ):
            self.session.apply_network_delta(self.evolution[position][1])
            position += 1
            applied = True
        if (
            applied
            and self.checkpoint is not None
            and getattr(self.session, "compaction_epoch", 0) != epoch_before
        ):
            # Rotated pre-compaction generations can no longer restore
            # into this session (older compaction epoch); drop them so
            # the checkpoint chain shrinks with the compacted state.
            self.checkpoint.prune_history()
        if applied and not isinstance(task, StreamedAlignmentTask):
            if self.session.incremental:
                self.session.refresh_features(task.X, task.pairs)
            else:
                task.X = self.session.extract(task.pairs)
        return position

    # ------------------------------------------------------------------
    def fit(self, task: AlignmentTask) -> "ActiveIter":
        """Fit with active label queries until the budget is spent.

        A :class:`~repro.engine.streaming.StreamedAlignmentTask` is
        dispatched to :meth:`fit_streamed`.
        """
        if isinstance(task, StreamedAlignmentTask):
            return self.fit_streamed(task)
        self.task_ = task

        resume = self._resume_payload(self.session)
        if resume is not None:
            clamped_indices = np.asarray(resume["clamped_indices"])
            clamped_values = np.asarray(resume["clamped_values"])
            queried = list(resume["queried"])
            trace = list(resume["trace"])
            y = np.asarray(resume["y"], dtype=np.float64)
            n_rounds = int(resume["n_rounds"])
            if self.refresh_features:
                # The restored session carries the checkpoint's anchor
                # state; a fresh extraction over it is byte-identical to
                # the in-place-refreshed matrix of the original run.
                task.X = self.session.extract(task.pairs)
        else:
            clamped_indices = task.labeled_indices.copy()
            clamped_values = task.labeled_values.copy()
            queried = []
            trace = []
            y = self._initial_labels(task, clamped_indices, clamped_values)
            n_rounds = 0
        evolution_position = self._evolution_start(resume)
        state = AlternatingState.from_task(task, clamped_indices, clamped_values)
        # A non-default backend fits through the block seam even on the
        # materialized task (one-block stream over the live task.X).
        dense_source = (
            DenseBlockSource(task) if self.backend is not None else None
        )
        tracer = get_tracer()
        while True:
            n_rounds += 1
            # One span per query round, with the heavy phases as
            # children — the per-phase timing breakdown of the active
            # loop.  All of it is a no-op when tracing is disabled.
            with tracer.span("active.round", round=n_rounds):
                with tracer.span("active.alternate"):
                    if dense_source is not None:
                        y, w, scores, round_trace = self._alternate_backend(
                            dense_source, clamped_indices, clamped_values, y,
                            state=state,
                        )
                    else:
                        solver = self._make_solver(
                            task, clamped_indices, clamped_values
                        )
                        y, w, scores, round_trace = self._alternate(
                            task, solver, y, clamped_indices, clamped_values,
                            state=state,
                        )
                trace.extend(round_trace)
                if self.oracle.remaining <= 0:
                    break

                queryable = np.ones(task.n_candidates, dtype=bool)
                queryable[clamped_indices] = False
                with tracer.span("active.select"):
                    picks = self.strategy.select(
                        task.pairs,
                        scores,
                        y.astype(np.int64),
                        queryable,
                        min(self.batch_size, self.oracle.remaining),
                    )
                if not picks:
                    break
                with tracer.span("active.oracle", asked=len(picks)):
                    answers = self.oracle.query_batch(
                        [task.pairs[i] for i in picks]
                    )
                if not answers:
                    break
                queried.extend(answers)

                answered_indices = np.array(
                    [task.index_of(pair) for pair, _ in answers],
                    dtype=np.int64,
                )
                answered_values = np.array(
                    [label for _, label in answers], dtype=np.int64
                )
                clamped_indices = np.concatenate(
                    [clamped_indices, answered_indices]
                )
                clamped_values = np.concatenate(
                    [clamped_values, answered_values]
                )
                y[answered_indices] = answered_values
                state.clamp(task, answered_indices, answered_values)

                if self.refresh_features and any(
                    label == 1 for _, label in answers
                ):
                    known_positive_pairs = [
                        task.pairs[i]
                        for i, value in zip(clamped_indices, clamped_values)
                        if value == 1
                    ]
                    with tracer.span("active.refresh"):
                        self.session.set_anchors(known_positive_pairs)
                        if self.session.incremental:
                            # Counts were delta-updated; rewrite only the
                            # affected feature columns in place.
                            self.session.refresh_features(task.X, task.pairs)
                        else:
                            # Full-recompute semantics (pre-engine behavior).
                            task.X = self.session.extract(task.pairs)

                with tracer.span("active.evolve"):
                    evolution_position = self._apply_due_evolution(
                        task, n_rounds, evolution_position
                    )

                with tracer.span("active.checkpoint"):
                    self._save_checkpoint(
                        self.session,
                        clamped_indices,
                        clamped_values,
                        queried,
                        trace,
                        y,
                        n_rounds,
                        evolution_position,
                    )

        self.weights_ = w
        self.result_ = AlignmentResult(
            labels=y.astype(np.int64),
            scores=scores,
            queried=tuple(queried),
            convergence_trace=tuple(trace),
            n_rounds=n_rounds,
        )
        if self.checkpoint is not None:
            self.checkpoint.clear()
        return self

    # ------------------------------------------------------------------
    def fit_streamed(self, task: StreamedAlignmentTask) -> "ActiveIter":
        """Active fit over streamed candidate blocks — no |H| x d matrix.

        Mirrors :meth:`fit` round for round: the alternating engine
        works from block-accumulated Gram systems
        (:meth:`~repro.core.itermpmd.IterMPMD._alternate_streamed`), and
        the query strategy consumes
        :class:`~repro.active.strategies.ScoredBlock` slices via
        ``select_streamed`` when it offers one (falling back to the
        materialized ``select`` signature otherwise — scores and labels
        are per-candidate vectors either way).  With
        ``refresh_features=True`` queried positives are folded into the
        task's session as sparse delta anchor updates; the next block
        pass re-extracts against the refreshed anchor set, so there is
        no feature matrix to rewrite.
        """
        if self.session is not None and self.session is not task.session:
            raise ModelError(
                "the model's session must be the streamed task's session"
            )
        self.task_ = task

        resume = self._resume_payload(task.session)
        if resume is not None:
            clamped_indices = np.asarray(resume["clamped_indices"])
            clamped_values = np.asarray(resume["clamped_values"])
            queried = list(resume["queried"])
            trace = list(resume["trace"])
            y = np.asarray(resume["y"], dtype=np.float64)
            n_rounds = int(resume["n_rounds"])
            # No feature matrix to rebuild: the next block pass extracts
            # against the restored session state.
        else:
            clamped_indices = task.labeled_indices.copy()
            clamped_values = task.labeled_values.copy()
            queried = []
            trace = []
            y = self._initial_labels(task, clamped_indices, clamped_values)
            n_rounds = 0
        evolution_position = self._evolution_start(resume)
        state = AlternatingState.from_task(task, clamped_indices, clamped_values)
        tracer = get_tracer()
        while True:
            n_rounds += 1
            # Same per-round / per-phase span layout as :meth:`fit`,
            # with ``streamed=True``; streamed block dispatches under
            # ``active.alternate`` inherit it as their trace parent.
            with tracer.span("active.round", round=n_rounds, streamed=True):
                with tracer.span("active.alternate"):
                    y, w, scores, round_trace = self._alternate_streamed(
                        task, clamped_indices, clamped_values, y, state=state
                    )
                trace.extend(round_trace)
                if self.oracle.remaining <= 0:
                    break

                queryable = np.ones(task.n_candidates, dtype=bool)
                queryable[clamped_indices] = False
                batch = min(self.batch_size, self.oracle.remaining)
                with tracer.span("active.select"):
                    if hasattr(self.strategy, "select_streamed"):
                        picks = self.strategy.select_streamed(
                            task.scored_blocks(
                                scores, y.astype(np.int64), queryable
                            ),
                            batch,
                        )
                    else:
                        picks = self.strategy.select(
                            task.pairs, scores, y.astype(np.int64),
                            queryable, batch,
                        )
                if not picks:
                    break
                with tracer.span("active.oracle", asked=len(picks)):
                    answers = self.oracle.query_batch(
                        [task.pairs[i] for i in picks]
                    )
                if not answers:
                    break
                queried.extend(answers)

                answered_indices = np.array(
                    [task.index_of(pair) for pair, _ in answers],
                    dtype=np.int64,
                )
                answered_values = np.array(
                    [label for _, label in answers], dtype=np.int64
                )
                clamped_indices = np.concatenate(
                    [clamped_indices, answered_indices]
                )
                clamped_values = np.concatenate(
                    [clamped_values, answered_values]
                )
                y[answered_indices] = answered_values
                state.clamp(task, answered_indices, answered_values)

                if self.refresh_features and any(
                    label == 1 for _, label in answers
                ):
                    known_positive_pairs = [
                        task.pairs[i]
                        for i, value in zip(clamped_indices, clamped_values)
                        if value == 1
                    ]
                    with tracer.span("active.refresh"):
                        task.session.set_anchors(known_positive_pairs)

                with tracer.span("active.evolve"):
                    evolution_position = self._apply_due_evolution(
                        task, n_rounds, evolution_position
                    )

                with tracer.span("active.checkpoint"):
                    self._save_checkpoint(
                        task.session,
                        clamped_indices,
                        clamped_values,
                        queried,
                        trace,
                        y,
                        n_rounds,
                        evolution_position,
                    )

        self.weights_ = w
        self.result_ = AlignmentResult(
            labels=y.astype(np.int64),
            scores=scores,
            queried=tuple(queried),
            convergence_trace=tuple(trace),
            n_rounds=n_rounds,
        )
        if self.checkpoint is not None:
            self.checkpoint.clear()
        return self
