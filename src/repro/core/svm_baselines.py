"""SVM-MP and SVM-MPMD baseline aligners (§IV-B.2).

Both are plain supervised linear SVMs trained on the labeled candidates
and applied to the rest; they differ only in the feature family used
upstream (meta paths only vs paths + meta diagrams), which is decided by
the caller when extracting features.  They apply **no** one-to-one
constraint and no PU iteration — that is the point of the comparison.

:class:`SVMAligner` is a thin wrapper around the model-backend seam
(:class:`~repro.ml.backends.SVMBackend`): a materialized task runs as a
one-block stream, and a
:class:`~repro.engine.streaming.StreamedAlignmentTask` runs the very
same code over blocks — training gathers only the labeled rows, scoring
streams every block (through the process pool when the session is
store-backed), and the |H| x d matrix never exists.  The streamed fit
is byte-identical to the materialized one given the seed: the gathered
training rows, the dual-coordinate-descent updates and the per-row
scoring arithmetic are all identical.  ``feature_map=`` composes a
kernel feature map (Nyström landmarks, random Fourier, polynomial)
into both paths.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import AlignmentModel, AlignmentResult, AlignmentTask
from repro.engine.streaming import StreamedAlignmentTask
from repro.exceptions import ModelError
from repro.ml.backends import DenseBlockSource, SVMBackend


class SVMAligner(AlignmentModel):
    """Supervised SVM aligner over precomputed or streamed link features.

    Parameters
    ----------
    C:
        SVM inverse regularization strength.
    scale_features:
        Standardize features on the labeled rows before fitting.
    seed:
        Seed for the SVM optimizer's coordinate shuffling (and for the
        feature map's random draws, when one is configured).
    feature_map:
        Optional kernel feature map — a registry name (see
        :data:`~repro.ml.kernels.FEATURE_MAP_NAMES`) or a map instance —
        applied to every feature block before scaling and fitting.
    """

    def __init__(
        self,
        C: float = 1.0,
        scale_features: bool = True,
        seed: int = 0,
        feature_map=None,
    ) -> None:
        super().__init__()
        self.C = float(C)
        self.scale_features = bool(scale_features)
        self.seed = int(seed)
        self.backend = SVMBackend(
            C=self.C,
            scale_features=self.scale_features,
            seed=self.seed,
            feature_map=self._resolve_map(feature_map),
        )
        self.svc_ = None
        self.scaler_ = None

    def _resolve_map(self, feature_map):
        if isinstance(feature_map, str):
            from repro.ml.kernels import make_feature_map

            return make_feature_map(feature_map, seed=self.seed)
        return feature_map

    def fit(self, task: AlignmentTask) -> "SVMAligner":
        """Train on the labeled candidates, label every candidate."""
        if task.labeled_indices.size == 0:
            raise ModelError("SVMAligner requires at least one labeled link")
        self.task_ = task
        source = (
            task
            if isinstance(task, StreamedAlignmentTask)
            else DenseBlockSource(task)
        )
        self.backend.begin(source, train_indices=task.labeled_indices)
        y = np.zeros(task.n_candidates, dtype=np.int64)
        y[task.labeled_indices] = task.labeled_values
        weights = self.backend.fit(y)
        scores = self.backend.scores(weights)
        self.svc_ = self.backend.svc_
        self.scaler_ = self.backend.scaler_

        labels = (scores > 0).astype(np.int64)
        # Known labels are known: keep them clamped in the output.
        labels[task.labeled_indices] = task.labeled_values
        self.result_ = AlignmentResult(
            labels=labels,
            scores=scores,
            queried=(),
            convergence_trace=(),
            n_rounds=1,
        )
        return self
