"""SVM-MP and SVM-MPMD baseline aligners (§IV-B.2).

Both are plain supervised linear SVMs trained on the labeled candidates
and applied to the rest; they differ only in the feature family used
upstream (meta paths only vs paths + meta diagrams), which is decided by
the caller when extracting features.  They apply **no** one-to-one
constraint and no PU iteration — that is the point of the comparison.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import AlignmentModel, AlignmentResult, AlignmentTask
from repro.exceptions import ModelError
from repro.ml.scaling import StandardScaler
from repro.ml.svm import LinearSVC


class SVMAligner(AlignmentModel):
    """Supervised SVM aligner over precomputed link features.

    Parameters
    ----------
    C:
        SVM inverse regularization strength.
    scale_features:
        Standardize features on the labeled rows before fitting.
    seed:
        Seed for the SVM optimizer's coordinate shuffling.
    """

    def __init__(
        self, C: float = 1.0, scale_features: bool = True, seed: int = 0
    ) -> None:
        super().__init__()
        self.C = float(C)
        self.scale_features = bool(scale_features)
        self.seed = int(seed)
        self.svc_: Optional[LinearSVC] = None
        self.scaler_: Optional[StandardScaler] = None

    def fit(self, task: AlignmentTask) -> "SVMAligner":
        """Train on the labeled candidates, label every candidate."""
        if task.labeled_indices.size == 0:
            raise ModelError("SVMAligner requires at least one labeled link")
        self.task_ = task
        X = task.X
        if self.scale_features:
            self.scaler_ = StandardScaler()
            self.scaler_.fit(X[task.labeled_indices])
            X = self.scaler_.transform(X)

        self.svc_ = LinearSVC(C=self.C, seed=self.seed)
        self.svc_.fit(X[task.labeled_indices], task.labeled_values)

        scores = self.svc_.decision_function(X)
        labels = (scores > 0).astype(np.int64)
        # Known labels are known: keep them clamped in the output.
        labels[task.labeled_indices] = task.labeled_values
        self.result_ = AlignmentResult(
            labels=labels,
            scores=scores,
            queried=(),
            convergence_trace=(),
            n_rounds=1,
        )
        return self
