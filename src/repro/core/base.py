"""Shared model API: alignment tasks, results and the model base class.

An :class:`AlignmentTask` freezes everything a model may see: the
candidate link list H, the feature matrix X, and which candidates carry
known labels.  Ground truth for the *unlabeled* candidates is only
reachable through a budgeted :class:`~repro.active.oracle.LabelOracle`,
so no model can accidentally peek.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ModelError, NotFittedError
from repro.types import LinkPair


@dataclass
class AlignmentTask:
    """One alignment problem instance in feature space.

    Attributes
    ----------
    pairs:
        All candidate anchor links (the sampled H), fixed order.
    X:
        Feature matrix, one row per candidate.
    labeled_indices:
        Indices into ``pairs`` with known labels (the training set).
    labeled_values:
        The 0/1 labels parallel to ``labeled_indices``.
    """

    pairs: List[LinkPair]
    X: np.ndarray
    labeled_indices: np.ndarray
    labeled_values: np.ndarray

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=np.float64)
        self.labeled_indices = np.asarray(self.labeled_indices, dtype=np.int64)
        self.labeled_values = np.asarray(self.labeled_values, dtype=np.int64)
        if self.X.ndim != 2 or self.X.shape[0] != len(self.pairs):
            raise ModelError(
                f"X shape {self.X.shape} does not match {len(self.pairs)} pairs"
            )
        if not np.all(np.isfinite(self.X)):
            bad = int(np.sum(~np.isfinite(self.X)))
            raise ModelError(
                f"feature matrix contains {bad} non-finite entries "
                "(NaN/inf); refusing to fit on corrupted features"
            )
        if self.labeled_indices.shape != self.labeled_values.shape:
            raise ModelError("labeled indices/values must align")
        if self.labeled_indices.size:
            if self.labeled_indices.min() < 0 or self.labeled_indices.max() >= len(
                self.pairs
            ):
                raise ModelError("labeled index out of range")
            if len(set(self.labeled_indices.tolist())) != self.labeled_indices.size:
                raise ModelError("labeled indices contain duplicates")
        bad = set(np.unique(self.labeled_values).tolist()) - {0, 1}
        if bad:
            raise ModelError(f"labels must be 0/1, got {sorted(bad)}")

    @property
    def n_candidates(self) -> int:
        """|H| — number of candidate links."""
        return len(self.pairs)

    @property
    def unlabeled_mask(self) -> np.ndarray:
        """Boolean mask of candidates without a known label."""
        mask = np.ones(self.n_candidates, dtype=bool)
        mask[self.labeled_indices] = False
        return mask

    @property
    def positive_indices(self) -> np.ndarray:
        """Indices of known positive candidates (the paper's L+)."""
        return self.labeled_indices[self.labeled_values == 1]

    @property
    def negative_indices(self) -> np.ndarray:
        """Indices of known negative candidates."""
        return self.labeled_indices[self.labeled_values == 0]

    def index_of(self, pair: LinkPair) -> int:
        """Index of a candidate pair (built lazily, cached)."""
        index = getattr(self, "_pair_index", None)
        if index is None:
            index = {pair_: i for i, pair_ in enumerate(self.pairs)}
            self._pair_index = index
        try:
            return index[pair]
        except KeyError:
            raise ModelError(f"pair {pair!r} is not a candidate") from None


@dataclass(frozen=True)
class AlignmentResult:
    """Outcome of fitting an alignment model.

    Attributes
    ----------
    labels:
        Final 0/1 assignment over the task's candidates.
    scores:
        Final raw scores ``ŷ = Xw`` (or decision values for SVMs).
    queried:
        Links whose labels were bought from the oracle, with answers.
    convergence_trace:
        ``Δy = ||y_i − y_{i−1}||₁`` per alternating iteration (Figure 3).
    n_rounds:
        Number of external (query) rounds executed.
    """

    labels: np.ndarray
    scores: np.ndarray
    queried: Tuple[Tuple[LinkPair, int], ...] = ()
    convergence_trace: Tuple[float, ...] = ()
    n_rounds: int = 0


class AlignmentModel:
    """Base class for alignment models.

    Subclasses implement :meth:`fit` and populate ``result_``.
    """

    def __init__(self) -> None:
        self.result_: Optional[AlignmentResult] = None
        self.task_: Optional[AlignmentTask] = None

    def fit(self, task: AlignmentTask) -> "AlignmentModel":
        """Fit the model on one task; returns self."""
        raise NotImplementedError

    def _require_fitted(self) -> AlignmentResult:
        if self.result_ is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
        return self.result_

    @property
    def labels_(self) -> np.ndarray:
        """Final labels over the fitted task's candidates."""
        return self._require_fitted().labels

    @property
    def scores_(self) -> np.ndarray:
        """Final raw scores over the fitted task's candidates."""
        return self._require_fitted().scores

    @property
    def queried_(self) -> Tuple[Tuple[LinkPair, int], ...]:
        """Oracle queries spent during fitting."""
        return self._require_fitted().queried

    def predicted_anchors(self) -> List[LinkPair]:
        """Candidate pairs labeled positive by the fitted model."""
        result = self._require_fitted()
        if self.task_ is None:  # pragma: no cover - defensive
            raise NotFittedError("task missing from fitted model")
        return [
            pair
            for pair, label in zip(self.task_.pairs, result.labels)
            if label == 1
        ]
