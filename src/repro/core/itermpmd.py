"""Iter-MPMD: PU-learning iterative aligner (no active queries).

This is the paper's Iter-MPMD baseline and, equally, the inner engine of
ActiveIter: alternate between

* **step (1-1)** — closed-form ridge ``w = c (I + c XᵀX)⁻¹ Xᵀ y`` with
  the current label vector (solved through a prefactorized
  :class:`~repro.ml.ridge.RidgeSolver`);
* **step (1-2)** — re-infer the unlabeled labels from the scores
  ``ŷ = Xw`` with the greedy one-to-one selector, keeping known labels
  clamped.

Iterate until the label vector stops changing (Δy = ‖yᵢ − yᵢ₋₁‖₁ below
tolerance) or a safety cap; the per-iteration Δy values are recorded as
the convergence trace used by Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

import numpy as np

from repro.core.base import AlignmentModel, AlignmentResult, AlignmentTask
from repro.engine.streaming import StreamedAlignmentTask
from repro.exceptions import ModelError
from repro.matching.greedy import greedy_link_selection
from repro.ml.backends import (
    DenseBlockSource,
    ModelBackend,
    RidgeBackend,
    make_backend,
)
from repro.ml.ridge import RidgeSolver
from repro.types import LinkPair, NodeId


@dataclass
class AlternatingState:
    """Per-task invariants of the alternating loop, reused across refits.

    The free candidate list and the blocked endpoint sets depend only on
    the task and the clamped label set — not on the iteration.  Building
    them costs a pass over all candidates; the active loop refits after
    every query round, so the state is built once and then *narrowed*
    incrementally as answers arrive (:meth:`clamp`) instead of being
    rebuilt from scratch per fit.
    """

    free_indices: np.ndarray
    free_pairs: List[LinkPair]
    blocked_left: Set[NodeId]
    blocked_right: Set[NodeId]

    @classmethod
    def from_task(
        cls,
        task: AlignmentTask,
        clamped_indices: np.ndarray,
        clamped_values: np.ndarray,
    ) -> "AlternatingState":
        """Build the state for a task and its clamped label set."""
        free_mask = np.ones(task.n_candidates, dtype=bool)
        free_mask[clamped_indices] = False
        free_indices = np.flatnonzero(free_mask)
        free_pairs = [task.pairs[i] for i in free_indices]
        blocked_left: Set[NodeId] = set()
        blocked_right: Set[NodeId] = set()
        for index, value in zip(clamped_indices, clamped_values):
            if value == 1:
                left_user, right_user = task.pairs[index]
                blocked_left.add(left_user)
                blocked_right.add(right_user)
        return cls(free_indices, free_pairs, blocked_left, blocked_right)

    def clamp(
        self,
        task: AlignmentTask,
        indices: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Narrow the state after new labels are clamped (queried)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return
        keep = ~np.isin(self.free_indices, indices)
        if not keep.all():
            self.free_pairs = [
                pair for pair, kept in zip(self.free_pairs, keep) if kept
            ]
            self.free_indices = self.free_indices[keep]
        for index, value in zip(indices, values):
            if value == 1:
                left_user, right_user = task.pairs[int(index)]
                self.blocked_left.add(left_user)
                self.blocked_right.add(right_user)


class IterMPMD(AlignmentModel):
    """Cardinality-constrained PU iterative alignment model.

    Parameters
    ----------
    c:
        Ridge loss weight (the paper's ``c``).
    max_iterations:
        Cap on alternating (1-1)/(1-2) iterations per fit.
    tol:
        Convergence threshold on Δy (L1 change of the label vector).
    positive_threshold:
        Minimum score for the greedy selector to label a link positive.
    positive_weight:
        Ridge sample weight of the trusted (clamped) positive labels.
        ``"balanced"`` (default) sets it to ``(#other candidates) /
        (#clamped positives)`` so the scarce supervision is not drowned
        by the sea of zero targets — the standard PU class-weighting
        remedy; a float fixes it explicitly, and ``1.0`` recovers the
        paper's unweighted objective.
    backend:
        Model backend of the internal fit step (see
        :mod:`repro.ml.backends`): ``None`` (the default) keeps the
        paper's closed-form ridge and is byte-identical to the
        pre-backend code; a name (``"ridge"``, ``"svm"``) or a
        :class:`~repro.ml.backends.ModelBackend` instance swaps the
        model — the alternating loop, the streamed block plumbing and
        the greedy relabeling are unchanged.  Backends score on their
        own scale (an SVM's decision boundary is 0, not 0.5), so pair a
        non-ridge backend with a matching ``positive_threshold``.
    """

    def __init__(
        self,
        c: float = 1.0,
        max_iterations: int = 30,
        tol: float = 0.5,
        positive_threshold: float = 0.5,
        positive_weight="balanced",
        backend=None,
    ) -> None:
        super().__init__()
        if max_iterations < 1:
            raise ModelError("max_iterations must be >= 1")
        if tol < 0:
            raise ModelError("tol must be >= 0")
        if positive_weight != "balanced" and float(positive_weight) <= 0:
            raise ModelError("positive_weight must be 'balanced' or > 0")
        self.c = float(c)
        self.max_iterations = int(max_iterations)
        self.tol = float(tol)
        self.positive_threshold = float(positive_threshold)
        self.positive_weight = positive_weight
        self.backend = backend
        self._backend_instance: Optional[ModelBackend] = None
        self._pending_backend_state: Optional[dict] = None
        self.weights_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Backend plumbing
    # ------------------------------------------------------------------
    def _resolved_backend(self) -> ModelBackend:
        """The model's backend instance (built once, reused per round).

        A single instance lives for the whole fit so sticky state — a
        fitted feature map's landmark sample, the last dual solution —
        carries across query rounds; checkpoint resume injects restored
        state here before the first round runs.
        """
        if self._backend_instance is None:
            spec = self.backend
            if spec is None:
                instance: ModelBackend = RidgeBackend(c=self.c)
            elif isinstance(spec, str):
                instance = make_backend(spec, c=self.c)
            elif isinstance(spec, ModelBackend):
                instance = spec
            else:
                raise ModelError(
                    f"backend must be None, a name or a ModelBackend, "
                    f"got {spec!r}"
                )
            if self._pending_backend_state is not None:
                instance.load_state_dict(self._pending_backend_state)
                self._pending_backend_state = None
            self._backend_instance = instance
        return self._backend_instance

    def _sample_weight(
        self,
        n_candidates: int,
        clamped_indices: np.ndarray,
        clamped_values: np.ndarray,
        population: Optional[int] = None,
    ) -> Optional[np.ndarray]:
        """Per-sample ridge weights, or ``None`` for the unweighted case.

        ``population`` overrides the candidate pool the ``"balanced"``
        ratio is computed against: ``None`` (the ridge/PU case) balances
        positives against all |H| pseudo-labeled candidates, while a
        ``"labeled"`` backend — which trains on the clamped rows only —
        passes the clamped-set size, so the ratio reflects the actual
        training class balance rather than the sea of unlabeled rows.
        The returned vector is always over all candidates (labeled
        backends slice it at their training indices).
        """
        positives = clamped_indices[clamped_values == 1]
        if self.positive_weight == "balanced":
            total = n_candidates if population is None else int(population)
            n_other = total - positives.size
            weight = n_other / positives.size if positives.size else 1.0
            if weight <= 0:
                weight = 1.0
        else:
            weight = float(self.positive_weight)
        if weight == 1.0:
            return None
        sample_weight = np.ones(n_candidates, dtype=np.float64)
        sample_weight[positives] = weight
        return sample_weight

    def _make_solver(
        self,
        task: AlignmentTask,
        clamped_indices: np.ndarray,
        clamped_values: np.ndarray,
    ) -> RidgeSolver:
        """Build the ridge solver with positives up-weighted."""
        sample_weight = self._sample_weight(
            task.n_candidates, clamped_indices, clamped_values
        )
        if sample_weight is None:
            return RidgeSolver(task.X, c=self.c)
        return RidgeSolver(task.X, c=self.c, sample_weight=sample_weight)

    # ------------------------------------------------------------------
    # Core alternating loop, reused by ActiveIter.
    # ------------------------------------------------------------------
    def _alternate(
        self,
        task: AlignmentTask,
        solver: RidgeSolver,
        y: np.ndarray,
        clamped_indices: np.ndarray,
        clamped_values: np.ndarray,
        state: Optional[AlternatingState] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[float]]:
        """Run (1-1)/(1-2) to convergence from the given label vector.

        ``state`` carries the hoisted free/blocked invariants; passing
        one (as the active loop does) skips their per-fit rebuild.
        Returns ``(y, w, scores, trace)``.
        """
        if state is None:
            state = AlternatingState.from_task(
                task, clamped_indices, clamped_values
            )
        return self._alternation_loop(
            state,
            y,
            solve=solver.solve,
            score=lambda w: task.X @ w,
        )

    def _alternation_loop(
        self,
        state: AlternatingState,
        y: np.ndarray,
        solve: Callable[[np.ndarray], np.ndarray],
        score: Callable[[np.ndarray], np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[float]]:
        """The (1-1)/(1-2) loop, parameterized over solve/score backends.

        The materialized path passes the prefactorized
        :class:`~repro.ml.ridge.RidgeSolver` and a dense ``X @ w``; the
        streamed path passes Gram-solver closures that re-extract
        feature blocks per pass.  The loop itself — and therefore every
        label decision — is identical.
        """
        free_indices = state.free_indices
        free_pairs = state.free_pairs

        trace: List[float] = []
        w = solve(y)
        scores = score(w)
        for _ in range(self.max_iterations):
            free_labels = greedy_link_selection(
                free_pairs,
                scores[free_indices],
                threshold=self.positive_threshold,
                blocked_left=state.blocked_left,
                blocked_right=state.blocked_right,
            )
            new_y = y.copy()
            new_y[free_indices] = free_labels
            delta = float(np.abs(new_y - y).sum())
            trace.append(delta)
            y = new_y
            w = solve(y)
            scores = score(w)
            if delta <= self.tol:
                break
        return y, w, scores, trace

    def _alternate_streamed(
        self,
        task: StreamedAlignmentTask,
        clamped_indices: np.ndarray,
        clamped_values: np.ndarray,
        y: np.ndarray,
        state: Optional[AlternatingState] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[float]]:
        """Run the alternating loop over streamed feature blocks.

        The fit step goes through the model backend
        (:mod:`repro.ml.backends`): the default ridge backend works
        from the block-accumulated Gram matrix ``XᵀΩX`` (factorized
        once per call) and a block-accumulated right-hand side ``XᵀΩy``
        per solve, scoring ``Xw`` block by block — byte-identical to
        the pre-backend hardwired path.  Other backends (streamed SVM,
        kernel-mapped solvers) plug into the very same loop.  No
        |H| x d matrix is ever allocated.
        """
        return self._alternate_backend(
            task, clamped_indices, clamped_values, y, state=state
        )

    def _alternate_backend(
        self,
        source,
        clamped_indices: np.ndarray,
        clamped_values: np.ndarray,
        y: np.ndarray,
        state: Optional[AlternatingState] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[float]]:
        """Alternating loop over any block source, through the backend.

        ``source`` is a :class:`~repro.engine.streaming.StreamedAlignmentTask`
        or a :class:`~repro.ml.backends.DenseBlockSource`-wrapped task.
        ``"labeled"`` backends (SVM) receive the clamped set as their
        training rows — the supervised semantics of the paper's SVM
        baselines inside the query loop; ``"all"`` backends (ridge)
        regress on every candidate's pseudo-label, the PU semantics;
        ``"pu"`` backends (the biased all-of-H SVM) also receive the
        clamped set — it marks the rows holding full cost ``C`` — but
        train on every candidate row, so their positive balance is
        computed against |H| like ridge's.
        """
        if state is None:
            state = AlternatingState.from_task(
                source, clamped_indices, clamped_values
            )
        backend = self._resolved_backend()
        train_indices = (
            clamped_indices
            if backend.trains_on in ("labeled", "pu")
            else None
        )
        sample_weight = self._sample_weight(
            source.n_candidates,
            clamped_indices,
            clamped_values,
            # A labeled backend trains on the clamped rows only; balance
            # its positives against that training set, not against |H|.
            # PU backends train on everything, so they balance like
            # ridge does.
            population=(
                clamped_indices.size
                if backend.trains_on == "labeled"
                else None
            ),
        )
        backend.begin(
            source, sample_weight=sample_weight, train_indices=train_indices
        )
        return self._alternation_loop(
            state, y, solve=backend.fit, score=backend.scores
        )

    def _initial_labels(
        self,
        task: AlignmentTask,
        clamped_indices: np.ndarray,
        clamped_values: np.ndarray,
    ) -> np.ndarray:
        """Initial y: known labels clamped, unlabeled start at 0."""
        y = np.zeros(task.n_candidates, dtype=np.float64)
        y[clamped_indices] = clamped_values
        return y

    # ------------------------------------------------------------------
    def fit(self, task: AlignmentTask) -> "IterMPMD":
        """Fit on a task using only its known labels (PU setting).

        A :class:`~repro.engine.streaming.StreamedAlignmentTask` is
        dispatched to :meth:`fit_streamed`.  With a non-default
        ``backend`` the materialized matrix is served as a one-block
        stream, so dense and streamed fits share the backend code path.
        """
        if isinstance(task, StreamedAlignmentTask):
            return self.fit_streamed(task)
        self.task_ = task
        y = self._initial_labels(task, task.labeled_indices, task.labeled_values)
        if self.backend is not None:
            state = AlternatingState.from_task(
                task, task.labeled_indices, task.labeled_values
            )
            y, w, scores, trace = self._alternate_backend(
                DenseBlockSource(task),
                task.labeled_indices,
                task.labeled_values,
                y,
                state=state,
            )
            self.weights_ = w
            self.result_ = AlignmentResult(
                labels=y.astype(np.int64),
                scores=scores,
                queried=(),
                convergence_trace=tuple(trace),
                n_rounds=1,
            )
            return self
        solver = self._make_solver(task, task.labeled_indices, task.labeled_values)
        y, w, scores, trace = self._alternate(
            task, solver, y, task.labeled_indices, task.labeled_values
        )
        self.weights_ = w
        self.result_ = AlignmentResult(
            labels=y.astype(np.int64),
            scores=scores,
            queried=(),
            convergence_trace=tuple(trace),
            n_rounds=1,
        )
        return self

    def fit_streamed(self, task: StreamedAlignmentTask) -> "IterMPMD":
        """Fit on a streamed task — same labels, no |H| x d matrix."""
        self.task_ = task
        y = self._initial_labels(task, task.labeled_indices, task.labeled_values)
        y, w, scores, trace = self._alternate_streamed(
            task, task.labeled_indices, task.labeled_values, y
        )
        self.weights_ = w
        self.result_ = AlignmentResult(
            labels=y.astype(np.int64),
            scores=scores,
            queried=(),
            convergence_trace=tuple(trace),
            n_rounds=1,
        )
        return self
