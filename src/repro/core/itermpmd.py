"""Iter-MPMD: PU-learning iterative aligner (no active queries).

This is the paper's Iter-MPMD baseline and, equally, the inner engine of
ActiveIter: alternate between

* **step (1-1)** — closed-form ridge ``w = c (I + c XᵀX)⁻¹ Xᵀ y`` with
  the current label vector (solved through a prefactorized
  :class:`~repro.ml.ridge.RidgeSolver`);
* **step (1-2)** — re-infer the unlabeled labels from the scores
  ``ŷ = Xw`` with the greedy one-to-one selector, keeping known labels
  clamped.

Iterate until the label vector stops changing (Δy = ‖yᵢ − yᵢ₋₁‖₁ below
tolerance) or a safety cap; the per-iteration Δy values are recorded as
the convergence trace used by Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

import numpy as np

from repro.core.base import AlignmentModel, AlignmentResult, AlignmentTask
from repro.engine.streaming import StreamedAlignmentTask
from repro.exceptions import ModelError
from repro.matching.greedy import greedy_link_selection
from repro.ml.ridge import GramRidgeSolver, RidgeSolver
from repro.types import LinkPair, NodeId


@dataclass
class AlternatingState:
    """Per-task invariants of the alternating loop, reused across refits.

    The free candidate list and the blocked endpoint sets depend only on
    the task and the clamped label set — not on the iteration.  Building
    them costs a pass over all candidates; the active loop refits after
    every query round, so the state is built once and then *narrowed*
    incrementally as answers arrive (:meth:`clamp`) instead of being
    rebuilt from scratch per fit.
    """

    free_indices: np.ndarray
    free_pairs: List[LinkPair]
    blocked_left: Set[NodeId]
    blocked_right: Set[NodeId]

    @classmethod
    def from_task(
        cls,
        task: AlignmentTask,
        clamped_indices: np.ndarray,
        clamped_values: np.ndarray,
    ) -> "AlternatingState":
        """Build the state for a task and its clamped label set."""
        free_mask = np.ones(task.n_candidates, dtype=bool)
        free_mask[clamped_indices] = False
        free_indices = np.flatnonzero(free_mask)
        free_pairs = [task.pairs[i] for i in free_indices]
        blocked_left: Set[NodeId] = set()
        blocked_right: Set[NodeId] = set()
        for index, value in zip(clamped_indices, clamped_values):
            if value == 1:
                left_user, right_user = task.pairs[index]
                blocked_left.add(left_user)
                blocked_right.add(right_user)
        return cls(free_indices, free_pairs, blocked_left, blocked_right)

    def clamp(
        self,
        task: AlignmentTask,
        indices: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Narrow the state after new labels are clamped (queried)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return
        keep = ~np.isin(self.free_indices, indices)
        if not keep.all():
            self.free_pairs = [
                pair for pair, kept in zip(self.free_pairs, keep) if kept
            ]
            self.free_indices = self.free_indices[keep]
        for index, value in zip(indices, values):
            if value == 1:
                left_user, right_user = task.pairs[int(index)]
                self.blocked_left.add(left_user)
                self.blocked_right.add(right_user)


class IterMPMD(AlignmentModel):
    """Cardinality-constrained PU iterative alignment model.

    Parameters
    ----------
    c:
        Ridge loss weight (the paper's ``c``).
    max_iterations:
        Cap on alternating (1-1)/(1-2) iterations per fit.
    tol:
        Convergence threshold on Δy (L1 change of the label vector).
    positive_threshold:
        Minimum score for the greedy selector to label a link positive.
    positive_weight:
        Ridge sample weight of the trusted (clamped) positive labels.
        ``"balanced"`` (default) sets it to ``(#other candidates) /
        (#clamped positives)`` so the scarce supervision is not drowned
        by the sea of zero targets — the standard PU class-weighting
        remedy; a float fixes it explicitly, and ``1.0`` recovers the
        paper's unweighted objective.
    """

    def __init__(
        self,
        c: float = 1.0,
        max_iterations: int = 30,
        tol: float = 0.5,
        positive_threshold: float = 0.5,
        positive_weight="balanced",
    ) -> None:
        super().__init__()
        if max_iterations < 1:
            raise ModelError("max_iterations must be >= 1")
        if tol < 0:
            raise ModelError("tol must be >= 0")
        if positive_weight != "balanced" and float(positive_weight) <= 0:
            raise ModelError("positive_weight must be 'balanced' or > 0")
        self.c = float(c)
        self.max_iterations = int(max_iterations)
        self.tol = float(tol)
        self.positive_threshold = float(positive_threshold)
        self.positive_weight = positive_weight
        self.weights_: Optional[np.ndarray] = None

    def _sample_weight(
        self,
        n_candidates: int,
        clamped_indices: np.ndarray,
        clamped_values: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Per-sample ridge weights, or ``None`` for the unweighted case."""
        positives = clamped_indices[clamped_values == 1]
        if self.positive_weight == "balanced":
            n_other = n_candidates - positives.size
            weight = n_other / positives.size if positives.size else 1.0
        else:
            weight = float(self.positive_weight)
        if weight == 1.0:
            return None
        sample_weight = np.ones(n_candidates, dtype=np.float64)
        sample_weight[positives] = weight
        return sample_weight

    def _make_solver(
        self,
        task: AlignmentTask,
        clamped_indices: np.ndarray,
        clamped_values: np.ndarray,
    ) -> RidgeSolver:
        """Build the ridge solver with positives up-weighted."""
        sample_weight = self._sample_weight(
            task.n_candidates, clamped_indices, clamped_values
        )
        if sample_weight is None:
            return RidgeSolver(task.X, c=self.c)
        return RidgeSolver(task.X, c=self.c, sample_weight=sample_weight)

    # ------------------------------------------------------------------
    # Core alternating loop, reused by ActiveIter.
    # ------------------------------------------------------------------
    def _alternate(
        self,
        task: AlignmentTask,
        solver: RidgeSolver,
        y: np.ndarray,
        clamped_indices: np.ndarray,
        clamped_values: np.ndarray,
        state: Optional[AlternatingState] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[float]]:
        """Run (1-1)/(1-2) to convergence from the given label vector.

        ``state`` carries the hoisted free/blocked invariants; passing
        one (as the active loop does) skips their per-fit rebuild.
        Returns ``(y, w, scores, trace)``.
        """
        if state is None:
            state = AlternatingState.from_task(
                task, clamped_indices, clamped_values
            )
        return self._alternation_loop(
            state,
            y,
            solve=solver.solve,
            score=lambda w: task.X @ w,
        )

    def _alternation_loop(
        self,
        state: AlternatingState,
        y: np.ndarray,
        solve: Callable[[np.ndarray], np.ndarray],
        score: Callable[[np.ndarray], np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[float]]:
        """The (1-1)/(1-2) loop, parameterized over solve/score backends.

        The materialized path passes the prefactorized
        :class:`~repro.ml.ridge.RidgeSolver` and a dense ``X @ w``; the
        streamed path passes Gram-solver closures that re-extract
        feature blocks per pass.  The loop itself — and therefore every
        label decision — is identical.
        """
        free_indices = state.free_indices
        free_pairs = state.free_pairs

        trace: List[float] = []
        w = solve(y)
        scores = score(w)
        for _ in range(self.max_iterations):
            free_labels = greedy_link_selection(
                free_pairs,
                scores[free_indices],
                threshold=self.positive_threshold,
                blocked_left=state.blocked_left,
                blocked_right=state.blocked_right,
            )
            new_y = y.copy()
            new_y[free_indices] = free_labels
            delta = float(np.abs(new_y - y).sum())
            trace.append(delta)
            y = new_y
            w = solve(y)
            scores = score(w)
            if delta <= self.tol:
                break
        return y, w, scores, trace

    def _alternate_streamed(
        self,
        task: StreamedAlignmentTask,
        clamped_indices: np.ndarray,
        clamped_values: np.ndarray,
        y: np.ndarray,
        state: Optional[AlternatingState] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[float]]:
        """Run the alternating loop over streamed feature blocks.

        The ridge step works from the block-accumulated Gram matrix
        ``XᵀΩX`` (factorized once per call) and a block-accumulated
        right-hand side ``XᵀΩy`` per solve; scoring streams ``Xw``
        block by block.  No |H| x d matrix is ever allocated.
        """
        if state is None:
            state = AlternatingState.from_task(
                task, clamped_indices, clamped_values
            )
        sample_weight = self._sample_weight(
            task.n_candidates, clamped_indices, clamped_values
        )
        solver = GramRidgeSolver(task.gram(sample_weight), c=self.c)

        def solve(labels: np.ndarray) -> np.ndarray:
            target = (
                labels if sample_weight is None else labels * sample_weight
            )
            return solver.solve_rhs(task.xt_dot(target))

        return self._alternation_loop(state, y, solve=solve, score=task.scores)

    def _initial_labels(
        self,
        task: AlignmentTask,
        clamped_indices: np.ndarray,
        clamped_values: np.ndarray,
    ) -> np.ndarray:
        """Initial y: known labels clamped, unlabeled start at 0."""
        y = np.zeros(task.n_candidates, dtype=np.float64)
        y[clamped_indices] = clamped_values
        return y

    # ------------------------------------------------------------------
    def fit(self, task: AlignmentTask) -> "IterMPMD":
        """Fit on a task using only its known labels (PU setting).

        A :class:`~repro.engine.streaming.StreamedAlignmentTask` is
        dispatched to :meth:`fit_streamed`.
        """
        if isinstance(task, StreamedAlignmentTask):
            return self.fit_streamed(task)
        self.task_ = task
        solver = self._make_solver(task, task.labeled_indices, task.labeled_values)
        y = self._initial_labels(task, task.labeled_indices, task.labeled_values)
        y, w, scores, trace = self._alternate(
            task, solver, y, task.labeled_indices, task.labeled_values
        )
        self.weights_ = w
        self.result_ = AlignmentResult(
            labels=y.astype(np.int64),
            scores=scores,
            queried=(),
            convergence_trace=tuple(trace),
            n_rounds=1,
        )
        return self

    def fit_streamed(self, task: StreamedAlignmentTask) -> "IterMPMD":
        """Fit on a streamed task — same labels, no |H| x d matrix."""
        self.task_ = task
        y = self._initial_labels(task, task.labeled_indices, task.labeled_values)
        y, w, scores, trace = self._alternate_streamed(
            task, task.labeled_indices, task.labeled_values, y
        )
        self.weights_ = w
        self.result_ = AlignmentResult(
            labels=y.astype(np.int64),
            scores=scores,
            queried=(),
            convergence_trace=tuple(trace),
            n_rounds=1,
        )
        return self
