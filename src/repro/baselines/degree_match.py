"""Degree-sequence matching: the weakest sensible unsupervised baseline.

Aligns users purely by how similar their (in-degree, out-degree,
post-count) signatures are — the kind of structural fingerprint a naive
de-anonymization attempt would use.  It needs no labels and no
attribute overlap, and gives the benchmark suite a floor: any learning
method must clearly beat it.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.matching.greedy import greedy_link_selection
from repro.networks.aligned import AlignedPair
from repro.networks.schema import FOLLOW, WRITE
from repro.types import LinkPair


def _signature(network, anchor_node_type: str) -> np.ndarray:
    """Per-user (in-degree, out-degree, post-count) signature matrix."""
    follow = network.typed_adjacency(FOLLOW)
    write = network.typed_adjacency(WRITE)
    out_degree = np.asarray(follow.sum(axis=1)).ravel()
    in_degree = np.asarray(follow.sum(axis=0)).ravel()
    posts = np.asarray(write.sum(axis=1)).ravel()
    return np.column_stack([in_degree, out_degree, posts])


class DegreeMatcher:
    """Unsupervised alignment by structural signature similarity.

    Signatures are rank-transformed per column (robust to the two
    platforms' different activity volumes) and compared with a Gaussian
    kernel on rank distance.
    """

    def __init__(self, bandwidth: float = 0.1) -> None:
        self.bandwidth = float(bandwidth)
        self.similarity_: Optional[np.ndarray] = None

    def fit(self, pair: AlignedPair) -> "DegreeMatcher":
        """Compute the signature similarity matrix."""
        left_sig = _signature(pair.left, pair.anchor_node_type)
        right_sig = _signature(pair.right, pair.anchor_node_type)

        def _rank_normalize(matrix: np.ndarray) -> np.ndarray:
            ranks = np.empty_like(matrix, dtype=np.float64)
            n_rows = matrix.shape[0]
            for column in range(matrix.shape[1]):
                order = np.argsort(np.argsort(matrix[:, column], kind="stable"))
                ranks[:, column] = order / max(1, n_rows - 1)
            return ranks

        left_rank = _rank_normalize(left_sig)
        right_rank = _rank_normalize(right_sig)
        # Pairwise squared rank distances, then a Gaussian kernel.
        diff = (
            left_rank[:, None, :] - right_rank[None, :, :]
        )
        distances = np.sqrt((diff**2).sum(axis=2))
        self.similarity_ = np.exp(-(distances**2) / (2 * self.bandwidth**2))
        return self

    def align(
        self, pair: AlignedPair, top_k: Optional[int] = None
    ) -> List[LinkPair]:
        """Greedy one-to-one extraction from the similarity matrix."""
        if self.similarity_ is None:
            self.fit(pair)
        lefts, rights = pair.left_users(), pair.right_users()
        candidates: List[LinkPair] = []
        scores: List[float] = []
        for i in range(len(lefts)):
            for j in range(len(rights)):
                candidates.append((lefts[i], rights[j]))
                scores.append(float(self.similarity_[i, j]))
        labels = greedy_link_selection(
            candidates, np.asarray(scores), threshold=0.0
        )
        matched = [(candidates[k], scores[k]) for k in np.flatnonzero(labels)]
        matched.sort(key=lambda item: -item[1])
        if top_k is not None:
            matched = matched[:top_k]
        return [pair_ for pair_, _ in matched]
