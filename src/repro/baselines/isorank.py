"""IsoRank-style unsupervised network alignment baseline.

IsoRank (Singh, Xu, Berger; RECOMB 2007 / PNAS 2008 — reference [16]
of the paper) scores user-pair similarity by the recursive principle
*"two nodes are similar if their neighbors are similar"*:

    R[i, j] = alpha * Σ_{u∈N(i), v∈N(j)} R[u, v] / (|N(u)| |N(v)|)
              + (1 - alpha) * H[i, j]

computed by power iteration, where ``H`` is a prior similarity (here:
attribute-profile cosine similarity, or uniform when no attributes are
used).  One-to-one alignment is then extracted greedily from ``R``.

The paper cites IsoRank as the classic unsupervised comparator; this
implementation lets the benchmark suite quantify how much the
supervision + meta diagrams + active queries of ActiveIter buy over a
label-free method on the same data.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from scipy import sparse

from repro.exceptions import ModelError
from repro.matching.greedy import greedy_link_selection
from repro.networks.aligned import AlignedPair
from repro.networks.schema import FOLLOW, LOCATION, TIMESTAMP, WRITE
from repro.types import LinkPair


def _normalized_undirected_adjacency(
    network, relation: str
) -> sparse.csr_matrix:
    """Column-stochastic symmetrized follow adjacency."""
    directed = network.typed_adjacency(relation)
    undirected = ((directed + directed.T) > 0).astype(np.float64)
    degrees = np.asarray(undirected.sum(axis=0)).ravel()
    degrees[degrees == 0] = 1.0
    scale = sparse.diags(1.0 / degrees)
    return (undirected @ scale).tocsr()


def attribute_prior(pair: AlignedPair) -> np.ndarray:
    """Cosine similarity of user attribute profiles as the IsoRank prior.

    A user's profile is the bag of timestamp and location values across
    their posts (on the shared vocabularies), L2-normalized.  Users
    without activity get a uniform prior row.
    """
    blocks = []
    for attribute in (TIMESTAMP, LOCATION):
        left_attr, right_attr = pair.attribute_matrices(attribute, binary=False)
        left_write = pair.left.typed_adjacency(WRITE)
        right_write = pair.right.typed_adjacency(WRITE)
        blocks.append(
            (
                (left_write @ left_attr).toarray(),
                (right_write @ right_attr).toarray(),
            )
        )
    left_profile = np.hstack([left for left, _ in blocks])
    right_profile = np.hstack([right for _, right in blocks])

    def _l2_normalize(matrix: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return matrix / norms

    prior = _l2_normalize(left_profile) @ _l2_normalize(right_profile).T
    if prior.sum() == 0:
        return np.full(prior.shape, 1.0 / prior.size)
    return prior / prior.sum()


class IsoRank:
    """Unsupervised IsoRank aligner.

    Parameters
    ----------
    alpha:
        Topology weight (1-alpha goes to the attribute prior).
    max_iter:
        Power-iteration cap.
    tol:
        L1 convergence threshold on the similarity matrix.
    use_attributes:
        Whether to build the prior from attribute profiles (otherwise
        uniform — pure topology IsoRank).
    """

    def __init__(
        self,
        alpha: float = 0.8,
        max_iter: int = 60,
        tol: float = 1e-7,
        use_attributes: bool = True,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ModelError(f"alpha must be in [0, 1], got {alpha}")
        if max_iter < 1:
            raise ModelError("max_iter must be >= 1")
        self.alpha = float(alpha)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.use_attributes = bool(use_attributes)
        self.similarity_: Optional[np.ndarray] = None
        self.n_iter_: int = 0

    def fit(self, pair: AlignedPair) -> "IsoRank":
        """Run power iteration; stores the similarity matrix."""
        left_norm = _normalized_undirected_adjacency(pair.left, FOLLOW)
        right_norm = _normalized_undirected_adjacency(pair.right, FOLLOW)
        n_left = pair.left.node_count(pair.anchor_node_type)
        n_right = pair.right.node_count(pair.anchor_node_type)

        if self.use_attributes:
            prior = attribute_prior(pair)
        else:
            prior = np.full((n_left, n_right), 1.0 / (n_left * n_right))

        similarity = prior.copy()
        self.n_iter_ = self.max_iter
        for iteration in range(self.max_iter):
            # R <- alpha * A1_norm R A2_norm^T + (1-alpha) * H
            # (the matrix form of the neighbor-sum recursion).
            updated = (
                self.alpha * (left_norm @ similarity @ right_norm.T)
                + (1.0 - self.alpha) * prior
            )
            total = updated.sum()
            if total > 0:
                updated = updated / total
            delta = np.abs(updated - similarity).sum()
            similarity = updated
            if delta < self.tol:
                self.n_iter_ = iteration + 1
                break
        self.similarity_ = similarity
        return self

    def align(
        self, pair: AlignedPair, top_k: Optional[int] = None
    ) -> List[LinkPair]:
        """Extract a one-to-one alignment from the similarity matrix.

        Parameters
        ----------
        pair:
            The aligned pair (for user id lookup).
        top_k:
            Keep only the ``top_k`` best matches; defaults to matching
            as many pairs as possible.
        """
        if self.similarity_ is None:
            self.fit(pair)
        similarity = self.similarity_
        lefts = pair.left_users()
        rights = pair.right_users()
        candidates: List[LinkPair] = []
        scores: List[float] = []
        for i in range(similarity.shape[0]):
            for j in range(similarity.shape[1]):
                if similarity[i, j] > 0:
                    candidates.append((lefts[i], rights[j]))
                    scores.append(float(similarity[i, j]))
        labels = greedy_link_selection(
            candidates, np.asarray(scores), threshold=0.0
        )
        matched = [
            (candidates[k], scores[k])
            for k in np.flatnonzero(labels)
        ]
        matched.sort(key=lambda item: -item[1])
        if top_k is not None:
            matched = matched[:top_k]
        return [pair_ for pair_, _ in matched]
