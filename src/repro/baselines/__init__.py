"""Unsupervised alignment baselines from the paper's related work.

:class:`IsoRank` (Singh et al., reference [16]) and a degree-signature
matcher provide label-free comparators for quantifying what the
supervised/active machinery of ActiveIter buys.
"""

from repro.baselines.degree_match import DegreeMatcher
from repro.baselines.isorank import IsoRank, attribute_prior

__all__ = ["DegreeMatcher", "IsoRank", "attribute_prior"]
