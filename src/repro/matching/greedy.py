"""Greedy cardinality-constrained link selection (internal step 1-2).

The integer program

    min_y ||ŷ - y||²   s.t.  y ∈ {0,1},  0 ≤ A^(1)y ≤ 1,  0 ≤ A^(2)y ≤ 1

is NP-hard; the paper adopts the greedy algorithm of Zhang et al. (WSDM
2017), which scans candidates by decreasing score and accepts a link
when both endpoints are still free and setting ``y=1`` lowers the loss
(i.e. the score exceeds ``1/2``).  This greedy achieves a
½-approximation of the optimal selection.

Endpoints already consumed by known positive links (training labels,
queried positives) are passed as blocked sets so inferred labels never
conflict with known ones.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set

import numpy as np

from repro.exceptions import ConstraintViolationError
from repro.types import LinkPair, NodeId


def greedy_link_selection(
    pairs: Sequence[LinkPair],
    scores: np.ndarray,
    threshold: float = 0.5,
    blocked_left: Optional[Iterable[NodeId]] = None,
    blocked_right: Optional[Iterable[NodeId]] = None,
) -> np.ndarray:
    """Greedy one-to-one selection of positive links.

    Parameters
    ----------
    pairs:
        Candidate links, parallel to ``scores``.
    scores:
        Continuous scores ``ŷ = Xw``.
    threshold:
        Minimum score for a link to be worth labeling positive; ``0.5``
        is the squared-loss break-even point for labels in ``{0, 1}``.
    blocked_left, blocked_right:
        Users already matched by known positive links.

    Returns
    -------
    numpy.ndarray
        0/1 label vector over ``pairs``, deterministic: ties in score are
        broken by candidate order.
    """
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if scores.shape[0] != len(pairs):
        raise ConstraintViolationError(
            f"{scores.shape[0]} scores for {len(pairs)} candidate links"
        )
    used_left: Set[NodeId] = set(blocked_left) if blocked_left else set()
    used_right: Set[NodeId] = set(blocked_right) if blocked_right else set()
    labels = np.zeros(len(pairs), dtype=np.int64)
    # Stable sort by descending score keeps candidate order on ties.
    order = np.argsort(-scores, kind="stable")
    for index in order:
        if scores[index] <= threshold:
            break
        left_user, right_user = pairs[index]
        if left_user in used_left or right_user in used_right:
            continue
        labels[index] = 1
        used_left.add(left_user)
        used_right.add(right_user)
    return labels


def selection_objective(scores: np.ndarray, labels: np.ndarray) -> float:
    """Total score captured by a selection (the greedy's objective)."""
    scores = np.asarray(scores, dtype=np.float64).ravel()
    labels = np.asarray(labels).ravel()
    if scores.shape != labels.shape:
        raise ConstraintViolationError("scores and labels must align")
    return float(scores[labels == 1].sum())
