"""One-to-one cardinality constraint modeling (§III-C.4).

The paper encodes the constraint through user-node/anchor-link incidence
matrices ``A^(1)``, ``A^(2)`` and the degree bounds ``0 ≤ A^(s) y ≤ 1``.
This module builds those matrices for an ordered candidate list and
provides validators used both by models (to assert their own output) and
by the test suite.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np
from scipy import sparse

from repro.exceptions import ConstraintViolationError
from repro.types import LinkPair, NodeId


def incidence_matrices(
    pairs: Sequence[LinkPair],
) -> Tuple[sparse.csr_matrix, sparse.csr_matrix, List[NodeId], List[NodeId]]:
    """Build the user/link incidence matrices for a candidate list.

    Returns
    -------
    (A1, A2, left_users, right_users)
        ``A1[i, j] = 1`` iff candidate ``j`` is incident to the i-th
        distinct left user; likewise ``A2`` for right users.  The user
        lists give the row orderings.
    """
    left_users: List[NodeId] = []
    right_users: List[NodeId] = []
    left_index: Dict[NodeId, int] = {}
    right_index: Dict[NodeId, int] = {}
    left_rows: List[int] = []
    right_rows: List[int] = []
    for left_user, right_user in pairs:
        if left_user not in left_index:
            left_index[left_user] = len(left_users)
            left_users.append(left_user)
        if right_user not in right_index:
            right_index[right_user] = len(right_users)
            right_users.append(right_user)
        left_rows.append(left_index[left_user])
        right_rows.append(right_index[right_user])
    n_links = len(pairs)
    cols = np.arange(n_links)
    ones = np.ones(n_links, dtype=np.float64)
    A1 = sparse.csr_matrix(
        (ones, (np.asarray(left_rows), cols)), shape=(len(left_users), n_links)
    )
    A2 = sparse.csr_matrix(
        (ones, (np.asarray(right_rows), cols)), shape=(len(right_users), n_links)
    )
    return A1, A2, left_users, right_users


def degree_vectors(
    pairs: Sequence[LinkPair], labels: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Node degrees ``d^(1) = A^(1) y`` and ``d^(2) = A^(2) y``."""
    labels = np.asarray(labels).ravel()
    if labels.shape[0] != len(pairs):
        raise ConstraintViolationError(
            f"{labels.shape[0]} labels for {len(pairs)} candidate links"
        )
    A1, A2, _, _ = incidence_matrices(pairs)
    return A1 @ labels, A2 @ labels


def satisfies_one_to_one(pairs: Sequence[LinkPair], labels: np.ndarray) -> bool:
    """Whether the labeled positives use each user at most once."""
    d1, d2 = degree_vectors(pairs, labels)
    return bool(np.all(d1 <= 1) and np.all(d2 <= 1))


def assert_one_to_one(pairs: Sequence[LinkPair], labels: np.ndarray) -> None:
    """Raise :class:`ConstraintViolationError` listing violating users."""
    labels = np.asarray(labels).ravel()
    positives = [pair for pair, label in zip(pairs, labels) if label == 1]
    seen_left: Set[NodeId] = set()
    seen_right: Set[NodeId] = set()
    violating: List[LinkPair] = []
    for left_user, right_user in positives:
        if left_user in seen_left or right_user in seen_right:
            violating.append((left_user, right_user))
        seen_left.add(left_user)
        seen_right.add(right_user)
    if violating:
        raise ConstraintViolationError(
            f"one-to-one constraint violated by {len(violating)} links, "
            f"e.g. {violating[:3]}"
        )


def conflicting_indices(pairs: Sequence[LinkPair]) -> List[List[int]]:
    """For each candidate, the indices of other candidates sharing a user.

    Used by the active query strategy, which inspects the positive links
    that *conflict* with a negative candidate.
    """
    by_left: Dict[NodeId, List[int]] = {}
    by_right: Dict[NodeId, List[int]] = {}
    for index, (left_user, right_user) in enumerate(pairs):
        by_left.setdefault(left_user, []).append(index)
        by_right.setdefault(right_user, []).append(index)
    conflicts: List[List[int]] = []
    for index, (left_user, right_user) in enumerate(pairs):
        neighbors = set(by_left[left_user]) | set(by_right[right_user])
        neighbors.discard(index)
        conflicts.append(sorted(neighbors))
    return conflicts
