"""Stable-marriage style one-to-one selection (alternative matcher).

A third matcher for robustness studies: score-based Gale–Shapley.  Each
left user proposes to right users in decreasing score order; right users
hold their best proposal so far.  The result is stable with respect to
the score lists and respects the one-to-one constraint by construction.
Not part of the paper — included because matcher choice is a natural
design-ablation axis for cardinality-constrained alignment.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import ConstraintViolationError
from repro.types import LinkPair, NodeId


def stable_link_selection(
    pairs: Sequence[LinkPair],
    scores: np.ndarray,
    threshold: float = 0.5,
    blocked_left: Optional[Iterable[NodeId]] = None,
    blocked_right: Optional[Iterable[NodeId]] = None,
) -> np.ndarray:
    """Gale–Shapley selection over candidates scoring above ``threshold``."""
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if scores.shape[0] != len(pairs):
        raise ConstraintViolationError(
            f"{scores.shape[0]} scores for {len(pairs)} candidate links"
        )
    blocked_left_set: Set[NodeId] = set(blocked_left) if blocked_left else set()
    blocked_right_set: Set[NodeId] = set(blocked_right) if blocked_right else set()

    # Preference lists: per left user, admissible candidates best-first.
    preferences: Dict[NodeId, List[int]] = {}
    for index, (left_user, right_user) in enumerate(pairs):
        if scores[index] <= threshold:
            continue
        if left_user in blocked_left_set or right_user in blocked_right_set:
            continue
        preferences.setdefault(left_user, []).append(index)
    for left_user in preferences:
        preferences[left_user].sort(key=lambda idx: -scores[idx])

    next_proposal: Dict[NodeId, int] = {user: 0 for user in preferences}
    engaged_right: Dict[NodeId, Tuple[float, int]] = {}
    engaged_left: Dict[NodeId, int] = {}
    free = list(preferences)

    while free:
        left_user = free.pop()
        choices = preferences[left_user]
        while next_proposal[left_user] < len(choices):
            index = choices[next_proposal[left_user]]
            next_proposal[left_user] += 1
            right_user = pairs[index][1]
            current = engaged_right.get(right_user)
            if current is None:
                engaged_right[right_user] = (scores[index], index)
                engaged_left[left_user] = index
                break
            if scores[index] > current[0]:
                # Displace the weaker partner, who re-enters the pool.
                displaced_index = current[1]
                displaced_left = pairs[displaced_index][0]
                engaged_right[right_user] = (scores[index], index)
                engaged_left[left_user] = index
                del engaged_left[displaced_left]
                free.append(displaced_left)
                break

    labels = np.zeros(len(pairs), dtype=np.int64)
    for index in engaged_left.values():
        labels[index] = 1
    return labels
