"""Cardinality-constrained link selection.

Implements the one-to-one constraint machinery of §III-C.4: incidence
matrices, validators, the paper's greedy ½-approximation selector, plus
an exact Hungarian selector and a stable-matching selector for ablation.
"""

from repro.matching.constraints import (
    assert_one_to_one,
    conflicting_indices,
    degree_vectors,
    incidence_matrices,
    satisfies_one_to_one,
)
from repro.matching.greedy import greedy_link_selection, selection_objective
from repro.matching.hungarian import exact_link_selection
from repro.matching.stable import stable_link_selection

__all__ = [
    "assert_one_to_one",
    "conflicting_indices",
    "degree_vectors",
    "exact_link_selection",
    "greedy_link_selection",
    "incidence_matrices",
    "satisfies_one_to_one",
    "selection_objective",
    "stable_link_selection",
]
