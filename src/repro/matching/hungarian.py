"""Exact one-to-one selection via the assignment problem (ablation).

The greedy of :mod:`repro.matching.greedy` is a ½-approximation; this
module solves the same selection *exactly* by reducing it to a maximum-
weight bipartite assignment over the candidate links with positive
utility, using :func:`scipy.optimize.linear_sum_assignment` (a Hungarian-
family solver).  It exists to measure how much the approximation costs
(DESIGN.md §5) — the paper itself only uses the greedy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.exceptions import ConstraintViolationError
from repro.types import LinkPair, NodeId


def exact_link_selection(
    pairs: Sequence[LinkPair],
    scores: np.ndarray,
    threshold: float = 0.5,
    blocked_left: Optional[Iterable[NodeId]] = None,
    blocked_right: Optional[Iterable[NodeId]] = None,
) -> np.ndarray:
    """Optimal one-to-one selection maximizing total selected score.

    Only candidates with ``score > threshold`` may be selected, matching
    the greedy's admissibility rule so the two are directly comparable.
    """
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if scores.shape[0] != len(pairs):
        raise ConstraintViolationError(
            f"{scores.shape[0]} scores for {len(pairs)} candidate links"
        )
    blocked_left_set: Set[NodeId] = set(blocked_left) if blocked_left else set()
    blocked_right_set: Set[NodeId] = set(blocked_right) if blocked_right else set()

    admissible = [
        index
        for index in range(len(pairs))
        if scores[index] > threshold
        and pairs[index][0] not in blocked_left_set
        and pairs[index][1] not in blocked_right_set
    ]
    labels = np.zeros(len(pairs), dtype=np.int64)
    if not admissible:
        return labels

    left_users: List[NodeId] = []
    right_users: List[NodeId] = []
    left_index: Dict[NodeId, int] = {}
    right_index: Dict[NodeId, int] = {}
    for index in admissible:
        left_user, right_user = pairs[index]
        if left_user not in left_index:
            left_index[left_user] = len(left_users)
            left_users.append(left_user)
        if right_user not in right_index:
            right_index[right_user] = len(right_users)
            right_users.append(right_user)

    # Maximize selected score == minimize negated utility; zero entries
    # mean "leave unmatched", so only strictly-positive utilities count.
    utility = np.zeros((len(left_users), len(right_users)), dtype=np.float64)
    candidate_at: Dict[tuple, int] = {}
    for index in admissible:
        left_user, right_user = pairs[index]
        i, j = left_index[left_user], right_index[right_user]
        if scores[index] > utility[i, j]:
            utility[i, j] = scores[index]
            candidate_at[(i, j)] = index

    row_ind, col_ind = linear_sum_assignment(-utility)
    for i, j in zip(row_ind, col_ind):
        if utility[i, j] > threshold and (i, j) in candidate_at:
            labels[candidate_at[(i, j)]] = 1
    return labels
