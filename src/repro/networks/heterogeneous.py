"""The attributed heterogeneous social network container (Definition 1).

:class:`HeterogeneousNetwork` stores typed nodes, typed directed edges and
typed attribute values.  Attribute values (a concrete timestamp bin, a
location cell, a word) are *shared vocabulary items*: two posts in two
different networks can point at the same attribute value, which is what
inter-network meta paths P5/P6 traverse.

Internally the class keeps hash-map adjacency (cheap mutation, O(1)
membership) and exposes :meth:`typed_adjacency` / :meth:`attribute_matrix`
to export scipy CSR matrices for the meta-structure counting engine.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np
from scipy import sparse

from repro.exceptions import NetworkError, SchemaError
from repro.networks.schema import NetworkSchema
from repro.types import AttributeValue, NodeId


class HeterogeneousNetwork:
    """One attributed heterogeneous social network ``G = (V, E, T)``.

    Parameters
    ----------
    schema:
        The :class:`~repro.networks.schema.NetworkSchema` this network
        must conform to.
    name:
        Optional instance name (defaults to the schema name).

    Notes
    -----
    * Nodes are identified by arbitrary hashable ids, unique *within a
      node type*.  ``("user", 3)`` and ``("post", 3)`` do not collide.
    * Edges are directed; undirected relations (per the schema) are
      expanded to both directions by :meth:`typed_adjacency` on request.
    * Attribute values live in per-attribute-type vocabularies and are
      attached to nodes via :meth:`attach_attribute`.
    """

    def __init__(self, schema: NetworkSchema, name: Optional[str] = None) -> None:
        self.schema = schema
        self.name = name if name is not None else schema.name
        # node_type -> ordered list of node ids, and reverse index.
        self._nodes: Dict[str, List[NodeId]] = {t: [] for t in schema.node_types}
        self._node_index: Dict[str, Dict[NodeId, int]] = {
            t: {} for t in schema.node_types
        }
        # relation -> source id -> set of target ids.
        self._out: Dict[str, Dict[NodeId, Set[NodeId]]] = {
            r: defaultdict(set) for r in schema.edge_types
        }
        self._in: Dict[str, Dict[NodeId, Set[NodeId]]] = {
            r: defaultdict(set) for r in schema.edge_types
        }
        self._edge_counts: Dict[str, int] = {r: 0 for r in schema.edge_types}
        # attribute name -> ordered vocabulary + reverse index.
        self._attr_values: Dict[str, List[AttributeValue]] = {
            a: [] for a in schema.attribute_types
        }
        self._attr_index: Dict[str, Dict[AttributeValue, int]] = {
            a: {} for a in schema.attribute_types
        }
        # attribute name -> node id -> multiset (dict value->count).
        self._attr_links: Dict[str, Dict[NodeId, Dict[AttributeValue, int]]] = {
            a: defaultdict(dict) for a in schema.attribute_types
        }
        self._attr_link_counts: Dict[str, int] = {a: 0 for a in schema.attribute_types}

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_node(self, node_type: str, node_id: NodeId) -> None:
        """Add a node of ``node_type``.  Adding twice is an error."""
        self._require_node_type(node_type)
        index = self._node_index[node_type]
        if node_id in index:
            raise NetworkError(
                f"node {node_id!r} of type {node_type!r} already exists "
                f"in network {self.name!r}"
            )
        index[node_id] = len(self._nodes[node_type])
        self._nodes[node_type].append(node_id)

    def add_nodes(self, node_type: str, node_ids: Iterable[NodeId]) -> None:
        """Add many nodes of one type."""
        for node_id in node_ids:
            self.add_node(node_type, node_id)

    def has_node(self, node_type: str, node_id: NodeId) -> bool:
        """Return whether the node exists."""
        self._require_node_type(node_type)
        return node_id in self._node_index[node_type]

    def nodes(self, node_type: str) -> List[NodeId]:
        """Return the ordered list of node ids of ``node_type`` (a copy)."""
        self._require_node_type(node_type)
        return list(self._nodes[node_type])

    def node_count(self, node_type: str) -> int:
        """Number of nodes of ``node_type``."""
        self._require_node_type(node_type)
        return len(self._nodes[node_type])

    def node_position(self, node_type: str, node_id: NodeId) -> int:
        """Dense index of a node within its type (for matrix exports)."""
        self._require_node_type(node_type)
        try:
            return self._node_index[node_type][node_id]
        except KeyError:
            raise NetworkError(
                f"unknown {node_type!r} node {node_id!r} in network {self.name!r}"
            ) from None

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(self, relation: str, source: NodeId, target: NodeId) -> None:
        """Add a typed edge ``source --relation--> target``.

        Duplicate edges are ignored (social graphs are simple graphs);
        self-loops on ``follow``-like relations are rejected.
        """
        spec = self.schema.edge_type(relation)
        if not self.has_node(spec.source, source):
            raise NetworkError(
                f"cannot add {relation!r} edge: missing source "
                f"{spec.source!r} node {source!r}"
            )
        if not self.has_node(spec.target, target):
            raise NetworkError(
                f"cannot add {relation!r} edge: missing target "
                f"{spec.target!r} node {target!r}"
            )
        if spec.source == spec.target and source == target:
            raise NetworkError(f"self-loop {source!r} on relation {relation!r}")
        targets = self._out[relation][source]
        if target in targets:
            return
        targets.add(target)
        self._in[relation][target].add(source)
        self._edge_counts[relation] += 1

    def has_edge(self, relation: str, source: NodeId, target: NodeId) -> bool:
        """Return whether the typed edge exists."""
        self._require_relation(relation)
        return target in self._out[relation].get(source, ())

    def successors(self, relation: str, source: NodeId) -> Set[NodeId]:
        """Targets of out-edges of ``relation`` from ``source`` (a copy)."""
        self._require_relation(relation)
        return set(self._out[relation].get(source, ()))

    def predecessors(self, relation: str, target: NodeId) -> Set[NodeId]:
        """Sources of in-edges of ``relation`` into ``target`` (a copy)."""
        self._require_relation(relation)
        return set(self._in[relation].get(target, ()))

    def edge_count(self, relation: str) -> int:
        """Number of stored edges of ``relation``."""
        self._require_relation(relation)
        return self._edge_counts[relation]

    def edges(self, relation: str) -> Iterator[Tuple[NodeId, NodeId]]:
        """Iterate ``(source, target)`` pairs of ``relation``."""
        self._require_relation(relation)
        for source, targets in self._out[relation].items():
            for target in targets:
                yield (source, target)

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------
    def attach_attribute(
        self, attribute: str, node_id: NodeId, value: AttributeValue, count: int = 1
    ) -> None:
        """Attach ``value`` of ``attribute`` to ``node_id`` (multiset add).

        ``count`` lets callers record repeated occurrences (a word used
        three times in a post) in one call.
        """
        spec = self.schema.attribute_type(attribute)
        if count < 1:
            raise NetworkError(f"attribute count must be >= 1, got {count}")
        if not self.has_node(spec.node_type, node_id):
            raise NetworkError(
                f"cannot attach attribute {attribute!r}: missing "
                f"{spec.node_type!r} node {node_id!r}"
            )
        vocab_index = self._attr_index[attribute]
        if value not in vocab_index:
            vocab_index[value] = len(self._attr_values[attribute])
            self._attr_values[attribute].append(value)
        bag = self._attr_links[attribute][node_id]
        bag[value] = bag.get(value, 0) + count
        self._attr_link_counts[attribute] += count

    def attribute_values(self, attribute: str) -> List[AttributeValue]:
        """Ordered vocabulary of an attribute type (a copy)."""
        self._require_attribute(attribute)
        return list(self._attr_values[attribute])

    def attribute_vocabulary_size(self, attribute: str) -> int:
        """Number of distinct values seen for ``attribute``."""
        self._require_attribute(attribute)
        return len(self._attr_values[attribute])

    def attribute_link_count(self, attribute: str) -> int:
        """Total number of (node, value) attachments including repeats."""
        self._require_attribute(attribute)
        return self._attr_link_counts[attribute]

    def node_attributes(self, attribute: str, node_id: NodeId) -> Dict[AttributeValue, int]:
        """Multiset of attribute values attached to a node (a copy)."""
        self._require_attribute(attribute)
        return dict(self._attr_links[attribute].get(node_id, {}))

    # ------------------------------------------------------------------
    # Matrix exports (consumed by repro.meta.counting)
    # ------------------------------------------------------------------
    def typed_adjacency(self, relation: str) -> sparse.csr_matrix:
        """CSR adjacency of one relation: ``A[i, j] = 1`` iff edge exists.

        Rows are indexed by the relation's source node type order, columns
        by its target node type order (see :meth:`nodes`).
        """
        spec = self.schema.edge_type(relation)
        n_rows = self.node_count(spec.source)
        n_cols = self.node_count(spec.target)
        rows: List[int] = []
        cols: List[int] = []
        src_index = self._node_index[spec.source]
        dst_index = self._node_index[spec.target]
        for source, targets in self._out[relation].items():
            i = src_index[source]
            for target in targets:
                rows.append(i)
                cols.append(dst_index[target])
        data = np.ones(len(rows), dtype=np.float64)
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=(n_rows, n_cols)
        )

    def attribute_matrix(
        self,
        attribute: str,
        vocabulary: Optional[List[AttributeValue]] = None,
        binary: bool = True,
    ) -> sparse.csr_matrix:
        """CSR node-by-attribute-value incidence matrix.

        Parameters
        ----------
        attribute:
            Attribute type name.
        vocabulary:
            Column ordering to use.  Two aligned networks must export
            against a *shared* vocabulary so that column ``j`` means the
            same timestamp/location/word in both matrices; pass the union
            vocabulary here.  Defaults to this network's own vocabulary.
        binary:
            If true (default), entries are 0/1 existence indicators; the
            paper counts path *instances*, where a post either has the
            attribute value or not.  If false, multiset counts are kept.

        Raises
        ------
        NetworkError
            If ``vocabulary`` omits a value present in this network.
        """
        spec = self.schema.attribute_type(attribute)
        if vocabulary is None:
            vocabulary = self._attr_values[attribute]
            value_index: Dict[AttributeValue, int] = self._attr_index[attribute]
        else:
            value_index = {value: j for j, value in enumerate(vocabulary)}
        n_rows = self.node_count(spec.node_type)
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        node_index = self._node_index[spec.node_type]
        for node_id, bag in self._attr_links[attribute].items():
            i = node_index[node_id]
            for value, count in bag.items():
                try:
                    j = value_index[value]
                except KeyError:
                    raise NetworkError(
                        f"vocabulary for attribute {attribute!r} omits value "
                        f"{value!r} present in network {self.name!r}"
                    ) from None
                rows.append(i)
                cols.append(j)
                data.append(1.0 if binary else float(count))
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=(n_rows, len(vocabulary))
        )

    # ------------------------------------------------------------------
    # Internal guards
    # ------------------------------------------------------------------
    def _require_node_type(self, node_type: str) -> None:
        if not self.schema.has_node_type(node_type):
            raise SchemaError(
                f"unknown node type {node_type!r} in schema {self.schema.name!r}"
            )

    def _require_relation(self, relation: str) -> None:
        self.schema.edge_type(relation)

    def _require_attribute(self, attribute: str) -> None:
        self.schema.attribute_type(attribute)

    def __repr__(self) -> str:
        node_summary = ", ".join(
            f"{t}={len(ids)}" for t, ids in sorted(self._nodes.items())
        )
        edge_summary = ", ".join(
            f"{r}={c}" for r, c in sorted(self._edge_counts.items())
        )
        return f"HeterogeneousNetwork({self.name!r}, {node_summary}; {edge_summary})"
