"""The attributed heterogeneous social network container (Definition 1).

:class:`HeterogeneousNetwork` stores typed nodes, typed directed edges and
typed attribute values.  Attribute values (a concrete timestamp bin, a
location cell, a word) are *shared vocabulary items*: two posts in two
different networks can point at the same attribute value, which is what
inter-network meta paths P5/P6 traverse.

Internally the class keeps hash-map adjacency (cheap mutation, O(1)
membership) and exposes :meth:`typed_adjacency` / :meth:`attribute_matrix`
to export scipy CSR matrices for the meta-structure counting engine.

Removal support models real churn: :meth:`remove_edge` deletes one
typed edge, and :meth:`remove_node` deletes a node with all its
incident edges and attribute attachments.  Removed nodes leave a
**tombstone**: their slot in the type's index order is kept (as
``None``), so every position handed out earlier stays valid and matrix
exports keep their shape with zeroed rows/columns at the dead slots —
the append-only contract the engine's delta algebra relies on survives
removal unchanged.  :meth:`compact` drops the tombstones (positions
shift) for long-drift housekeeping; callers must rebuild anything
position-derived afterwards.

Every successful mutation bumps a per-type / per-relation / per-
attribute **mutation epoch** (:meth:`node_epoch` and friends).  Unlike
raw counts, epochs are strictly monotone under removal too, so equal
epochs prove an exported matrix cannot have changed — the property
:func:`repro.meta.context.bag_fingerprints` builds on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np
from scipy import sparse

from dataclasses import dataclass

from repro.exceptions import NetworkError, SchemaError
from repro.networks.schema import NetworkSchema
from repro.types import AttributeValue, NodeId


@dataclass(frozen=True)
class NodeRemoval:
    """What :meth:`HeterogeneousNetwork.remove_node` actually deleted.

    Positions are captured *before* the slot is tombstoned, so the
    record is self-contained: ``edges`` holds ``(relation, source_slot,
    target_slot)`` triples of every cascaded edge, ``attributes`` holds
    ``(attribute, slot, value)`` triples of the node's attachments.
    The event-sourced delta path turns these directly into ``-1``
    entries of the affected incidence matrices.
    """

    node_type: str
    node_id: NodeId
    slot: int
    edges: Tuple[Tuple[str, int, int], ...]
    attributes: Tuple[Tuple[str, int, AttributeValue], ...]


class HeterogeneousNetwork:
    """One attributed heterogeneous social network ``G = (V, E, T)``.

    Parameters
    ----------
    schema:
        The :class:`~repro.networks.schema.NetworkSchema` this network
        must conform to.
    name:
        Optional instance name (defaults to the schema name).

    Notes
    -----
    * Nodes are identified by arbitrary hashable ids, unique *within a
      node type*.  ``("user", 3)`` and ``("post", 3)`` do not collide.
    * Edges are directed; undirected relations (per the schema) are
      expanded to both directions by :meth:`typed_adjacency` on request.
    * Attribute values live in per-attribute-type vocabularies and are
      attached to nodes via :meth:`attach_attribute`.
    """

    def __init__(self, schema: NetworkSchema, name: Optional[str] = None) -> None:
        self.schema = schema
        self.name = name if name is not None else schema.name
        # node_type -> ordered list of node ids, and reverse index.
        self._nodes: Dict[str, List[NodeId]] = {t: [] for t in schema.node_types}
        self._node_index: Dict[str, Dict[NodeId, int]] = {
            t: {} for t in schema.node_types
        }
        # relation -> source id -> set of target ids.
        self._out: Dict[str, Dict[NodeId, Set[NodeId]]] = {
            r: defaultdict(set) for r in schema.edge_types
        }
        self._in: Dict[str, Dict[NodeId, Set[NodeId]]] = {
            r: defaultdict(set) for r in schema.edge_types
        }
        self._edge_counts: Dict[str, int] = {r: 0 for r in schema.edge_types}
        # attribute name -> ordered vocabulary + reverse index.
        self._attr_values: Dict[str, List[AttributeValue]] = {
            a: [] for a in schema.attribute_types
        }
        self._attr_index: Dict[str, Dict[AttributeValue, int]] = {
            a: {} for a in schema.attribute_types
        }
        # attribute name -> node id -> multiset (dict value->count).
        self._attr_links: Dict[str, Dict[NodeId, Dict[AttributeValue, int]]] = {
            a: defaultdict(dict) for a in schema.attribute_types
        }
        self._attr_link_counts: Dict[str, int] = {a: 0 for a in schema.attribute_types}
        # Tombstone bookkeeping: removed nodes keep their slot (as None
        # in the order list) so earlier positions never shift.
        self._tombstones: Dict[str, int] = {t: 0 for t in schema.node_types}
        # Strictly monotone mutation epochs, one per type/relation/
        # attribute — the removal-safe change-detection counters.
        self._node_epochs: Dict[str, int] = {t: 0 for t in schema.node_types}
        self._edge_epochs: Dict[str, int] = {r: 0 for r in schema.edge_types}
        self._attr_epochs: Dict[str, int] = {a: 0 for a in schema.attribute_types}

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_node(self, node_type: str, node_id: NodeId) -> None:
        """Add a node of ``node_type``.  Adding twice is an error."""
        self._require_node_type(node_type)
        index = self._node_index[node_type]
        if node_id in index:
            raise NetworkError(
                f"node {node_id!r} of type {node_type!r} already exists "
                f"in network {self.name!r}"
            )
        index[node_id] = len(self._nodes[node_type])
        self._nodes[node_type].append(node_id)
        self._node_epochs[node_type] += 1

    def add_nodes(self, node_type: str, node_ids: Iterable[NodeId]) -> None:
        """Add many nodes of one type."""
        for node_id in node_ids:
            self.add_node(node_type, node_id)

    def has_node(self, node_type: str, node_id: NodeId) -> bool:
        """Return whether the node exists."""
        self._require_node_type(node_type)
        return node_id in self._node_index[node_type]

    def nodes(self, node_type: str) -> List[NodeId]:
        """Ordered ids of the *live* nodes of ``node_type`` (a copy).

        Tombstoned slots are skipped; the relative order of live nodes
        is their slot order.
        """
        self._require_node_type(node_type)
        if self._tombstones[node_type]:
            return [
                node_id
                for node_id in self._nodes[node_type]
                if node_id is not None
            ]
        return list(self._nodes[node_type])

    def slots(self, node_type: str) -> List[Optional[NodeId]]:
        """The full slot list of ``node_type``: ids, ``None`` at tombstones.

        Index ``i`` of this list is exactly matrix row/column ``i`` of
        every export over the type, which is what streaming consumers
        iterate when they need slot-aligned user lists.
        """
        self._require_node_type(node_type)
        return list(self._nodes[node_type])

    def node_count(self, node_type: str) -> int:
        """Number of *live* nodes of ``node_type``."""
        self._require_node_type(node_type)
        return len(self._nodes[node_type]) - self._tombstones[node_type]

    def slot_count(self, node_type: str) -> int:
        """Number of index slots (live nodes plus tombstones).

        This — not :meth:`node_count` — is the matrix dimension every
        export of the type uses; the two agree until a node is removed.
        """
        self._require_node_type(node_type)
        return len(self._nodes[node_type])

    def tombstone_count(self, node_type: str) -> int:
        """Number of tombstoned (removed, slot-preserving) nodes."""
        self._require_node_type(node_type)
        return self._tombstones[node_type]

    def node_position(self, node_type: str, node_id: NodeId) -> int:
        """Dense index of a node within its type (for matrix exports)."""
        self._require_node_type(node_type)
        try:
            return self._node_index[node_type][node_id]
        except KeyError:
            raise NetworkError(
                f"unknown {node_type!r} node {node_id!r} in network {self.name!r}"
            ) from None

    def node_epoch(self, node_type: str) -> int:
        """Mutation epoch of one node type (bumps on add/remove/compact)."""
        self._require_node_type(node_type)
        return self._node_epochs[node_type]

    def edge_epoch(self, relation: str) -> int:
        """Mutation epoch of one relation (bumps on add/remove)."""
        self._require_relation(relation)
        return self._edge_epochs[relation]

    def attribute_epoch(self, attribute: str) -> int:
        """Mutation epoch of one attribute type (bumps on attach/remove)."""
        self._require_attribute(attribute)
        return self._attr_epochs[attribute]

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(self, relation: str, source: NodeId, target: NodeId) -> bool:
        """Add a typed edge ``source --relation--> target``.

        Duplicate edges are ignored (social graphs are simple graphs);
        self-loops on ``follow``-like relations are rejected.  Returns
        whether the edge was actually inserted — the signal the
        event-sourced delta path uses to emit exactly the adjacency
        entries that changed.
        """
        spec = self.schema.edge_type(relation)
        if not self.has_node(spec.source, source):
            raise NetworkError(
                f"cannot add {relation!r} edge: missing source "
                f"{spec.source!r} node {source!r}"
            )
        if not self.has_node(spec.target, target):
            raise NetworkError(
                f"cannot add {relation!r} edge: missing target "
                f"{spec.target!r} node {target!r}"
            )
        if spec.source == spec.target and source == target:
            raise NetworkError(f"self-loop {source!r} on relation {relation!r}")
        targets = self._out[relation][source]
        if target in targets:
            return False
        targets.add(target)
        self._in[relation][target].add(source)
        self._edge_counts[relation] += 1
        self._edge_epochs[relation] += 1
        return True

    def remove_edge(self, relation: str, source: NodeId, target: NodeId) -> None:
        """Remove one typed edge; raises if it does not exist."""
        self._require_relation(relation)
        targets = self._out[relation].get(source)
        if targets is None or target not in targets:
            raise NetworkError(
                f"cannot remove missing {relation!r} edge "
                f"{source!r} -> {target!r} from network {self.name!r}"
            )
        targets.discard(target)
        self._in[relation][target].discard(source)
        self._edge_counts[relation] -= 1
        self._edge_epochs[relation] += 1

    def has_edge(self, relation: str, source: NodeId, target: NodeId) -> bool:
        """Return whether the typed edge exists."""
        self._require_relation(relation)
        return target in self._out[relation].get(source, ())

    def successors(self, relation: str, source: NodeId) -> Set[NodeId]:
        """Targets of out-edges of ``relation`` from ``source`` (a copy)."""
        self._require_relation(relation)
        return set(self._out[relation].get(source, ()))

    def predecessors(self, relation: str, target: NodeId) -> Set[NodeId]:
        """Sources of in-edges of ``relation`` into ``target`` (a copy)."""
        self._require_relation(relation)
        return set(self._in[relation].get(target, ()))

    def edge_count(self, relation: str) -> int:
        """Number of stored edges of ``relation``."""
        self._require_relation(relation)
        return self._edge_counts[relation]

    def edges(self, relation: str) -> Iterator[Tuple[NodeId, NodeId]]:
        """Iterate ``(source, target)`` pairs of ``relation``."""
        self._require_relation(relation)
        for source, targets in self._out[relation].items():
            for target in targets:
                yield (source, target)

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------
    def attach_attribute(
        self, attribute: str, node_id: NodeId, value: AttributeValue, count: int = 1
    ) -> Tuple[bool, bool]:
        """Attach ``value`` of ``attribute`` to ``node_id`` (multiset add).

        ``count`` lets callers record repeated occurrences (a word used
        three times in a post) in one call.  Returns ``(new_value,
        new_incidence)``: whether the value is new to this network's
        vocabulary, and whether the ``(node, value)`` cell went from
        absent to present — the two facts the event-sourced delta path
        needs to patch binary incidence matrices without re-exporting.
        """
        spec = self.schema.attribute_type(attribute)
        if count < 1:
            raise NetworkError(f"attribute count must be >= 1, got {count}")
        if not self.has_node(spec.node_type, node_id):
            raise NetworkError(
                f"cannot attach attribute {attribute!r}: missing "
                f"{spec.node_type!r} node {node_id!r}"
            )
        vocab_index = self._attr_index[attribute]
        new_value = value not in vocab_index
        if new_value:
            vocab_index[value] = len(self._attr_values[attribute])
            self._attr_values[attribute].append(value)
        bag = self._attr_links[attribute][node_id]
        new_incidence = value not in bag
        bag[value] = bag.get(value, 0) + count
        self._attr_link_counts[attribute] += count
        self._attr_epochs[attribute] += 1
        return new_value, new_incidence

    def detach_attributes(
        self, attribute: str, node_id: NodeId
    ) -> Dict[AttributeValue, int]:
        """Remove every ``attribute`` attachment of one node.

        Returns the removed multiset (empty when nothing was attached).
        The vocabulary never shrinks — values stay addressable so
        matrix columns keep their meaning.
        """
        self._require_attribute(attribute)
        bag = self._attr_links[attribute].pop(node_id, None)
        if not bag:
            return {}
        self._attr_link_counts[attribute] -= sum(bag.values())
        self._attr_epochs[attribute] += 1
        return dict(bag)

    # ------------------------------------------------------------------
    # Removal & compaction
    # ------------------------------------------------------------------
    def remove_node(self, node_type: str, node_id: NodeId) -> NodeRemoval:
        """Remove a node, cascading its edges and attribute attachments.

        The node's slot is tombstoned — kept in the index order as
        ``None`` — so positions of every other node are unchanged and
        matrix exports keep their shape (the dead slot becomes an
        all-zero row/column).  Returns a :class:`NodeRemoval` record of
        everything deleted, with slot positions captured before the
        tombstone lands.
        """
        self._require_node_type(node_type)
        index = self._node_index[node_type]
        if node_id not in index:
            raise NetworkError(
                f"cannot remove unknown {node_type!r} node {node_id!r} "
                f"from network {self.name!r}"
            )
        slot = index[node_id]
        removed_edges: List[Tuple[str, int, int]] = []
        for relation, spec in self.schema.edge_types.items():
            if spec.source == node_type:
                targets = self._out[relation].pop(node_id, None)
                if targets:
                    dst_index = self._node_index[spec.target]
                    for target in targets:
                        self._in[relation][target].discard(node_id)
                        removed_edges.append((relation, slot, dst_index[target]))
                    self._edge_counts[relation] -= len(targets)
                    self._edge_epochs[relation] += 1
            if spec.target == node_type:
                sources = self._in[relation].pop(node_id, None)
                if sources:
                    src_index = self._node_index[spec.source]
                    for source in sources:
                        self._out[relation][source].discard(node_id)
                        removed_edges.append((relation, src_index[source], slot))
                    self._edge_counts[relation] -= len(sources)
                    self._edge_epochs[relation] += 1
        removed_attributes: List[Tuple[str, int, AttributeValue]] = []
        for attribute, spec in self.schema.attribute_types.items():
            if spec.node_type != node_type:
                continue
            for value in self.detach_attributes(attribute, node_id):
                removed_attributes.append((attribute, slot, value))
        self._nodes[node_type][slot] = None
        del index[node_id]
        self._tombstones[node_type] += 1
        self._node_epochs[node_type] += 1
        return NodeRemoval(
            node_type=node_type,
            node_id=node_id,
            slot=slot,
            edges=tuple(removed_edges),
            attributes=tuple(removed_attributes),
        )

    def compact(self) -> Dict[str, np.ndarray]:
        """Drop tombstoned slots, renumbering the survivors.

        Positions *shift*: anything position-derived (exported matrices,
        cached index maps) must be rebuilt by the caller.  Returns, for
        each node type that had tombstones, the array of **old** slot
        indices of the surviving nodes in their new order — exactly the
        fancy-index needed to slice old matrices down to the compacted
        shape (``new = old[kept][:, kept]``).
        """
        kept: Dict[str, np.ndarray] = {}
        for node_type, order in self._nodes.items():
            if not self._tombstones[node_type]:
                continue
            live = [
                (old_slot, node_id)
                for old_slot, node_id in enumerate(order)
                if node_id is not None
            ]
            kept[node_type] = np.array(
                [old_slot for old_slot, _ in live], dtype=np.int64
            )
            self._nodes[node_type] = [node_id for _, node_id in live]
            self._node_index[node_type] = {
                node_id: new_slot for new_slot, (_, node_id) in enumerate(live)
            }
            self._tombstones[node_type] = 0
            self._node_epochs[node_type] += 1
        return kept

    def attribute_values(self, attribute: str) -> List[AttributeValue]:
        """Ordered vocabulary of an attribute type (a copy)."""
        self._require_attribute(attribute)
        return list(self._attr_values[attribute])

    def attribute_vocabulary_size(self, attribute: str) -> int:
        """Number of distinct values seen for ``attribute``."""
        self._require_attribute(attribute)
        return len(self._attr_values[attribute])

    def attribute_link_count(self, attribute: str) -> int:
        """Total number of (node, value) attachments including repeats."""
        self._require_attribute(attribute)
        return self._attr_link_counts[attribute]

    def node_attributes(self, attribute: str, node_id: NodeId) -> Dict[AttributeValue, int]:
        """Multiset of attribute values attached to a node (a copy)."""
        self._require_attribute(attribute)
        return dict(self._attr_links[attribute].get(node_id, {}))

    # ------------------------------------------------------------------
    # Matrix exports (consumed by repro.meta.counting)
    # ------------------------------------------------------------------
    def typed_adjacency(self, relation: str) -> sparse.csr_matrix:
        """CSR adjacency of one relation: ``A[i, j] = 1`` iff edge exists.

        Rows are indexed by the relation's source node type order, columns
        by its target node type order (see :meth:`nodes`).
        """
        spec = self.schema.edge_type(relation)
        n_rows = self.slot_count(spec.source)
        n_cols = self.slot_count(spec.target)
        rows: List[int] = []
        cols: List[int] = []
        src_index = self._node_index[spec.source]
        dst_index = self._node_index[spec.target]
        for source, targets in self._out[relation].items():
            i = src_index[source]
            for target in targets:
                rows.append(i)
                cols.append(dst_index[target])
        data = np.ones(len(rows), dtype=np.float64)
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=(n_rows, n_cols)
        )

    def attribute_matrix(
        self,
        attribute: str,
        vocabulary: Optional[List[AttributeValue]] = None,
        binary: bool = True,
    ) -> sparse.csr_matrix:
        """CSR node-by-attribute-value incidence matrix.

        Parameters
        ----------
        attribute:
            Attribute type name.
        vocabulary:
            Column ordering to use.  Two aligned networks must export
            against a *shared* vocabulary so that column ``j`` means the
            same timestamp/location/word in both matrices; pass the union
            vocabulary here.  Defaults to this network's own vocabulary.
        binary:
            If true (default), entries are 0/1 existence indicators; the
            paper counts path *instances*, where a post either has the
            attribute value or not.  If false, multiset counts are kept.

        Raises
        ------
        NetworkError
            If ``vocabulary`` omits a value present in this network.
        """
        spec = self.schema.attribute_type(attribute)
        if vocabulary is None:
            vocabulary = self._attr_values[attribute]
            value_index: Dict[AttributeValue, int] = self._attr_index[attribute]
        else:
            value_index = {value: j for j, value in enumerate(vocabulary)}
        n_rows = self.slot_count(spec.node_type)
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        node_index = self._node_index[spec.node_type]
        for node_id, bag in self._attr_links[attribute].items():
            i = node_index[node_id]
            for value, count in bag.items():
                try:
                    j = value_index[value]
                except KeyError:
                    raise NetworkError(
                        f"vocabulary for attribute {attribute!r} omits value "
                        f"{value!r} present in network {self.name!r}"
                    ) from None
                rows.append(i)
                cols.append(j)
                data.append(1.0 if binary else float(count))
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=(n_rows, len(vocabulary))
        )

    # ------------------------------------------------------------------
    # Internal guards
    # ------------------------------------------------------------------
    def _require_node_type(self, node_type: str) -> None:
        if not self.schema.has_node_type(node_type):
            raise SchemaError(
                f"unknown node type {node_type!r} in schema {self.schema.name!r}"
            )

    def _require_relation(self, relation: str) -> None:
        self.schema.edge_type(relation)

    def _require_attribute(self, attribute: str) -> None:
        self.schema.attribute_type(attribute)

    def __repr__(self) -> str:
        node_summary = ", ".join(
            f"{t}={len(ids)}" for t, ids in sorted(self._nodes.items())
        )
        edge_summary = ", ".join(
            f"{r}={c}" for r, c in sorted(self._edge_counts.items())
        )
        return f"HeterogeneousNetwork({self.name!r}, {node_summary}; {edge_summary})"
