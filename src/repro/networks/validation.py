"""Structural integrity checks for networks and aligned pairs.

Generators, loaders and hand-built fixtures can all produce subtly
broken data (orphan posts, users with no presence, anchors between
inactive accounts).  :func:`check_network` / :func:`check_aligned_pair`
return a structured report of findings; nothing here raises, because
most findings are legitimate in small or synthetic data — callers
decide which findings are errors for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.networks.aligned import AlignedPair
from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.networks.schema import FOLLOW, POST, USER, WRITE


@dataclass(frozen=True)
class Finding:
    """One integrity finding.

    ``severity`` is ``"warning"`` (unusual but plausible) or ``"info"``
    (worth knowing when debugging data quality).
    """

    code: str
    severity: str
    message: str
    count: int


@dataclass
class IntegrityReport:
    """All findings for one network or aligned pair."""

    subject: str
    findings: List[Finding] = field(default_factory=list)

    def add(self, code: str, severity: str, message: str, count: int) -> None:
        """Record a finding when ``count`` is positive."""
        if count > 0:
            self.findings.append(Finding(code, severity, message, count))

    @property
    def warning_count(self) -> int:
        """Number of warning-severity findings."""
        return sum(1 for f in self.findings if f.severity == "warning")

    def format(self) -> str:
        """Plain-text rendering of the report."""
        lines = [f"Integrity report: {self.subject}"]
        if not self.findings:
            lines.append("  no findings")
        for finding in self.findings:
            lines.append(
                f"  [{finding.severity}] {finding.code}: "
                f"{finding.message} (n={finding.count})"
            )
        return "\n".join(lines)


def check_network(network: HeterogeneousNetwork) -> IntegrityReport:
    """Run structural checks on one social network."""
    report = IntegrityReport(subject=network.name)

    orphan_posts = sum(
        1
        for post in network.nodes(POST)
        if not network.predecessors(WRITE, post)
    )
    report.add(
        "orphan-post",
        "warning",
        "posts with no author (unreachable by any meta path)",
        orphan_posts,
    )

    isolated_users = sum(
        1
        for user in network.nodes(USER)
        if not network.successors(FOLLOW, user)
        and not network.predecessors(FOLLOW, user)
        and not network.successors(WRITE, user)
    )
    report.add(
        "isolated-user",
        "warning",
        "users with no follows and no posts (no alignment evidence)",
        isolated_users,
    )

    silent_users = sum(
        1
        for user in network.nodes(USER)
        if not network.successors(WRITE, user)
    )
    report.add(
        "silent-user",
        "info",
        "users who never post (only structural evidence available)",
        silent_users,
    )

    bare_posts = 0
    for post in network.nodes(POST):
        has_any = any(
            network.node_attributes(attribute, post)
            for attribute in network.schema.attribute_types
        )
        if not has_any:
            bare_posts += 1
    report.add(
        "bare-post",
        "info",
        "posts carrying no attributes (invisible to attribute paths)",
        bare_posts,
    )
    return report


def check_aligned_pair(pair: AlignedPair) -> IntegrityReport:
    """Run checks spanning both networks and the anchor set."""
    report = IntegrityReport(
        subject=f"{pair.left.name} <-> {pair.right.name}"
    )

    def _has_evidence(network: HeterogeneousNetwork, user) -> bool:
        return bool(
            network.successors(FOLLOW, user)
            or network.predecessors(FOLLOW, user)
            or network.successors(WRITE, user)
        )

    blind_anchors = sum(
        1
        for left_user, right_user in pair.anchors
        if not _has_evidence(pair.left, left_user)
        or not _has_evidence(pair.right, right_user)
    )
    report.add(
        "evidence-free-anchor",
        "warning",
        "anchors where at least one account has no structure or activity "
        "(unlearnable positives; they cap achievable recall)",
        blind_anchors,
    )

    unanchored_left = sum(
        1
        for user in pair.left_users()
        if pair.anchored_right(user) is None
    )
    unanchored_right = sum(
        1
        for user in pair.right_users()
        if pair.anchored_left(user) is None
    )
    report.add(
        "unanchored-left-user",
        "info",
        f"{pair.left.name} users with no ground-truth partner",
        unanchored_left,
    )
    report.add(
        "unanchored-right-user",
        "info",
        f"{pair.right.name} users with no ground-truth partner",
        unanchored_right,
    )

    shared_timestamp = len(
        set(pair.left.attribute_values("timestamp"))
        & set(pair.right.attribute_values("timestamp"))
    )
    shared_location = len(
        set(pair.left.attribute_values("location"))
        & set(pair.right.attribute_values("location"))
    )
    if shared_timestamp == 0 and shared_location == 0:
        report.add(
            "no-shared-attribute-values",
            "warning",
            "the attribute vocabularies are disjoint: attribute meta paths "
            "(P5/P6) will be identically zero",
            1,
        )
    return report
