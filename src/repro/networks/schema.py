"""Network schema objects (Definition 3 of the paper).

A schema declares which node types, edge types and attribute types a
heterogeneous network may contain, and which (source, relation, target)
triples are legal.  Networks validate against their schema at mutation
time, so malformed data is rejected early rather than surfacing as a
silent zero in a proximity matrix much later.

The module also ships the concrete schema used throughout the paper:
users who *follow* users and *write* posts; posts annotated *at* a
timestamp, *checkin* at a location, and *contain* words.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Tuple

from repro.exceptions import SchemaError

# Canonical type names used by the paper's Foursquare/Twitter setting.
USER = "user"
POST = "post"

FOLLOW = "follow"
WRITE = "write"

TIMESTAMP = "timestamp"
LOCATION = "location"
WORD = "word"

AT = "at"          # post  -> timestamp
CHECKIN = "checkin"  # post -> location
CONTAIN = "contain"  # post -> word

#: The relation type of anchor links between two aligned networks.
ANCHOR = "anchor"


@dataclass(frozen=True)
class EdgeTypeSpec:
    """Declaration of one legal edge type.

    Attributes
    ----------
    name:
        Relation name (e.g. ``"follow"``).
    source:
        Node type the edge starts from.
    target:
        Node type the edge points to.
    directed:
        Whether edge direction is meaningful.  ``follow`` is directed;
        an undirected relation is stored internally as a single arc and
        expanded on demand.
    """

    name: str
    source: str
    target: str
    directed: bool = True

    def key(self) -> Tuple[str, str, str]:
        """Hashable identity of this edge type: ``(source, name, target)``."""
        return (self.source, self.name, self.target)


@dataclass(frozen=True)
class AttributeTypeSpec:
    """Declaration of one attribute type attached to a node type.

    Attribute values behave like nodes of their own type when meta paths
    traverse them (the paper treats Timestamp/Location/Word as node types
    in the schema graph of Figure 2); ``relation`` names the association
    edge (e.g. ``"at"`` for post->timestamp).
    """

    name: str
    node_type: str
    relation: str


class NetworkSchema:
    """Schema of one attributed heterogeneous social network.

    Parameters
    ----------
    name:
        Human-readable schema name (e.g. ``"twitter"``).
    node_types:
        Iterable of node type names.
    edge_types:
        Iterable of :class:`EdgeTypeSpec`.
    attribute_types:
        Iterable of :class:`AttributeTypeSpec`.

    Raises
    ------
    SchemaError
        If an edge or attribute type references an undeclared node type,
        or declarations collide.
    """

    def __init__(
        self,
        name: str,
        node_types: Iterable[str],
        edge_types: Iterable[EdgeTypeSpec] = (),
        attribute_types: Iterable[AttributeTypeSpec] = (),
    ) -> None:
        self.name = name
        self._node_types: FrozenSet[str] = frozenset(node_types)
        if not self._node_types:
            raise SchemaError("a schema must declare at least one node type")

        self._edge_types: Dict[str, EdgeTypeSpec] = {}
        for spec in edge_types:
            if spec.name in self._edge_types:
                raise SchemaError(f"duplicate edge type {spec.name!r}")
            for endpoint in (spec.source, spec.target):
                if endpoint not in self._node_types:
                    raise SchemaError(
                        f"edge type {spec.name!r} references undeclared "
                        f"node type {endpoint!r}"
                    )
            self._edge_types[spec.name] = spec

        self._attribute_types: Dict[str, AttributeTypeSpec] = {}
        for attr in attribute_types:
            if attr.name in self._attribute_types:
                raise SchemaError(f"duplicate attribute type {attr.name!r}")
            if attr.node_type not in self._node_types:
                raise SchemaError(
                    f"attribute type {attr.name!r} references undeclared "
                    f"node type {attr.node_type!r}"
                )
            self._attribute_types[attr.name] = attr

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def node_types(self) -> FrozenSet[str]:
        """The set of declared node type names."""
        return self._node_types

    @property
    def edge_types(self) -> Dict[str, EdgeTypeSpec]:
        """Mapping from relation name to its :class:`EdgeTypeSpec`."""
        return dict(self._edge_types)

    @property
    def attribute_types(self) -> Dict[str, AttributeTypeSpec]:
        """Mapping from attribute name to its :class:`AttributeTypeSpec`."""
        return dict(self._attribute_types)

    def has_node_type(self, node_type: str) -> bool:
        """Return whether ``node_type`` is declared."""
        return node_type in self._node_types

    def edge_type(self, relation: str) -> EdgeTypeSpec:
        """Return the spec for ``relation`` or raise :class:`SchemaError`."""
        try:
            return self._edge_types[relation]
        except KeyError:
            raise SchemaError(
                f"unknown edge type {relation!r} in schema {self.name!r}"
            ) from None

    def attribute_type(self, name: str) -> AttributeTypeSpec:
        """Return the spec for attribute ``name`` or raise :class:`SchemaError`."""
        try:
            return self._attribute_types[name]
        except KeyError:
            raise SchemaError(
                f"unknown attribute type {name!r} in schema {self.name!r}"
            ) from None

    def validate_edge(self, relation: str, source_type: str, target_type: str) -> None:
        """Check that an edge of ``relation`` may connect the given types.

        Raises
        ------
        SchemaError
            If the relation is undeclared or endpoint types mismatch.
        """
        spec = self.edge_type(relation)
        if (source_type, target_type) != (spec.source, spec.target):
            raise SchemaError(
                f"edge type {relation!r} connects {spec.source!r}->{spec.target!r}, "
                f"got {source_type!r}->{target_type!r}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NetworkSchema):
            return NotImplemented
        return (
            self._node_types == other._node_types
            and self._edge_types == other._edge_types
            and self._attribute_types == other._attribute_types
        )

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return hash((self._node_types, tuple(sorted(self._edge_types))))

    def __repr__(self) -> str:
        return (
            f"NetworkSchema({self.name!r}, nodes={sorted(self._node_types)}, "
            f"edges={sorted(self._edge_types)}, "
            f"attributes={sorted(self._attribute_types)})"
        )


def social_network_schema(name: str = "social") -> NetworkSchema:
    """Build the paper's Foursquare/Twitter-style schema (Figure 2).

    Node types: ``user``, ``post``.  Edge types: ``follow`` (user->user,
    directed) and ``write`` (user->post).  Attribute types on posts:
    ``timestamp`` (via ``at``), ``location`` (via ``checkin``) and
    ``word`` (via ``contain``).
    """
    return NetworkSchema(
        name=name,
        node_types=[USER, POST],
        edge_types=[
            EdgeTypeSpec(FOLLOW, USER, USER, directed=True),
            EdgeTypeSpec(WRITE, USER, POST, directed=True),
        ],
        attribute_types=[
            AttributeTypeSpec(TIMESTAMP, POST, AT),
            AttributeTypeSpec(LOCATION, POST, CHECKIN),
            AttributeTypeSpec(WORD, POST, CONTAIN),
        ],
    )


@dataclass(frozen=True)
class AlignedSchema:
    """Schema of a pair of aligned networks (Definition 3).

    The two component schemas plus the ``anchor`` relation connecting the
    shared-entity node type (``user`` in the paper's setting).
    """

    left: NetworkSchema
    right: NetworkSchema
    anchor_node_type: str = USER
    anchor_relation: str = field(default=ANCHOR)

    def __post_init__(self) -> None:
        for side, schema in (("left", self.left), ("right", self.right)):
            if not schema.has_node_type(self.anchor_node_type):
                raise SchemaError(
                    f"{side} schema {schema.name!r} lacks anchor node type "
                    f"{self.anchor_node_type!r}"
                )
