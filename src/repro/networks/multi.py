"""Multiple aligned social networks (Definition 2 for n > 2 networks).

The paper develops its model on a pair and notes that "simple
extensions of the model can be applied to multiple (more than two)
aligned social networks".  This module provides that extension's data
substrate: a collection of networks with pairwise anchor sets that

* exposes every pair as an :class:`~repro.networks.aligned.AlignedPair`
  (so the whole pairwise machinery applies unchanged), and
* validates *transitive consistency* — if a~b and b~c are anchored,
  any recorded a~c anchor must close the triangle with the same
  accounts (anchors identify natural persons, so identity must be an
  equivalence relation on the recorded links).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.exceptions import AlignmentError
from repro.networks.aligned import AlignedPair
from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.networks.schema import USER
from repro.types import LinkPair, NodeId


class MultiAlignedNetworks:
    """n attributed heterogeneous networks with pairwise anchor links.

    Parameters
    ----------
    networks:
        The component networks; names must be unique.
    anchors:
        Mapping from a network-name pair (order defines left/right) to
        that pair's anchor links.
    anchor_node_type:
        Node type connected by anchors.
    """

    def __init__(
        self,
        networks: Sequence[HeterogeneousNetwork],
        anchors: Mapping[Tuple[str, str], Iterable[LinkPair]],
        anchor_node_type: str = USER,
    ) -> None:
        if len(networks) < 2:
            raise AlignmentError("need at least two networks")
        self._networks: Dict[str, HeterogeneousNetwork] = {}
        for network in networks:
            if network.name in self._networks:
                raise AlignmentError(f"duplicate network name {network.name!r}")
            self._networks[network.name] = network
        self.anchor_node_type = anchor_node_type

        self._pairs: Dict[Tuple[str, str], AlignedPair] = {}
        for (left_name, right_name), links in anchors.items():
            if left_name == right_name:
                raise AlignmentError(f"cannot align {left_name!r} with itself")
            for name in (left_name, right_name):
                if name not in self._networks:
                    raise AlignmentError(f"unknown network {name!r} in anchors")
            key = (left_name, right_name)
            if key in self._pairs or (right_name, left_name) in self._pairs:
                raise AlignmentError(
                    f"duplicate anchor declaration for {key!r}"
                )
            self._pairs[key] = AlignedPair(
                self._networks[left_name],
                self._networks[right_name],
                links,
                anchor_node_type=anchor_node_type,
            )
        self.validate_transitivity()

    # ------------------------------------------------------------------
    @property
    def network_names(self) -> List[str]:
        """Names of the component networks (insertion order)."""
        return list(self._networks)

    def network(self, name: str) -> HeterogeneousNetwork:
        """Component network by name."""
        try:
            return self._networks[name]
        except KeyError:
            raise AlignmentError(f"unknown network {name!r}") from None

    def pair_names(self) -> List[Tuple[str, str]]:
        """Declared (left, right) name pairs."""
        return list(self._pairs)

    def pair(self, left_name: str, right_name: str) -> AlignedPair:
        """The aligned pair between two networks (order-insensitive).

        Requesting the reversed orientation returns a *new* pair with
        sides swapped, so the caller's (left, right) convention holds.
        """
        if (left_name, right_name) in self._pairs:
            return self._pairs[(left_name, right_name)]
        if (right_name, left_name) in self._pairs:
            original = self._pairs[(right_name, left_name)]
            return AlignedPair(
                original.right,
                original.left,
                [(b, a) for a, b in original.anchors],
                anchor_node_type=self.anchor_node_type,
            )
        raise AlignmentError(
            f"no anchors declared between {left_name!r} and {right_name!r}"
        )

    # ------------------------------------------------------------------
    def validate_transitivity(self) -> None:
        """Check anchors form a consistent identity relation.

        For every network triple (a, b, c) with declared anchor sets
        a~b, b~c and a~c: whenever x~y and y~z are anchored, a recorded
        anchor from x into c must point at z.

        Raises
        ------
        AlignmentError
            Listing the first violating triangle found.
        """
        partner: Dict[Tuple[str, str], Dict[NodeId, NodeId]] = {}
        for (left_name, right_name), pair in self._pairs.items():
            forward: Dict[NodeId, NodeId] = {}
            backward: Dict[NodeId, NodeId] = {}
            for left_user, right_user in pair.anchors:
                forward[left_user] = right_user
                backward[right_user] = left_user
            partner[(left_name, right_name)] = forward
            partner[(right_name, left_name)] = backward

        names = self.network_names
        for a in names:
            for b in names:
                for c in names:
                    if len({a, b, c}) != 3:
                        continue
                    ab = partner.get((a, b))
                    bc = partner.get((b, c))
                    ac = partner.get((a, c))
                    if ab is None or bc is None or ac is None:
                        continue
                    for x, y in ab.items():
                        z = bc.get(y)
                        recorded = ac.get(x)
                        if z is not None and recorded is not None and recorded != z:
                            raise AlignmentError(
                                f"anchor transitivity violated: {x!r}~{y!r}~{z!r} "
                                f"but {x!r} is anchored to {recorded!r} in "
                                f"({a!r}, {c!r})"
                            )

    def infer_transitive_anchors(self) -> Dict[Tuple[str, str], Set[LinkPair]]:
        """Close the anchor relation transitively across declared pairs.

        Returns, per declared pair, the anchors *implied* by two-hop
        identity chains but missing from the declaration — useful both
        as free extra supervision and as a data-quality report.
        """
        implied: Dict[Tuple[str, str], Set[LinkPair]] = {
            key: set() for key in self._pairs
        }
        partner: Dict[Tuple[str, str], Dict[NodeId, NodeId]] = {}
        for (left_name, right_name), pair in self._pairs.items():
            forward = dict(pair.anchors)
            partner[(left_name, right_name)] = forward
            partner[(right_name, left_name)] = {
                b: a for a, b in forward.items()
            }
        for (a, c), pair in self._pairs.items():
            existing = set(pair.anchors)
            for b in self.network_names:
                if b in (a, c):
                    continue
                ab = partner.get((a, b))
                bc = partner.get((b, c))
                if ab is None or bc is None:
                    continue
                for x, y in ab.items():
                    z = bc.get(y)
                    if z is not None and (x, z) not in existing:
                        implied[(a, c)].add((x, z))
        return implied

    def __repr__(self) -> str:
        return (
            f"MultiAlignedNetworks(networks={self.network_names}, "
            f"pairs={self.pair_names()})"
        )
