"""Aligned network pairs and anchor-link bookkeeping (Definition 2).

An :class:`AlignedPair` couples two :class:`HeterogeneousNetwork` objects
with the set of ground-truth anchor links between their user node sets.
It also owns the *shared attribute vocabularies*: the union, per attribute
type, of the values seen in either network, so matrix exports from the two
sides agree column-for-column.

Evolving networks are modeled as :class:`NetworkDelta` events — plain
picklable records of one side's churn (new nodes/edges/attribute
attachments, and since the removal-delta work also ``removed_nodes`` /
``removed_edges``) that :meth:`AlignedPair.apply_delta` validates and
applies in place.  Node additions append to the end of each type's
order and removals tombstone their slot, so matrix exports taken
before a delta stay index-compatible with exports taken after it: old
entries never move, growth is pure padding and shrinkage is pure
zeroing.  That append-only contract is what lets the engine layer fold
exact sparse count deltas instead of recounting
(:mod:`repro.engine.incremental`).

:meth:`AlignedPair.apply_delta` returns a :class:`DeltaApplication`
describing what *actually* changed in slot coordinates (duplicate edge
adds are silently ignored, attribute matrices are binary, node removal
cascades) — the record the session's event-sourced fast path folds
without re-exporting either side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np
from scipy import sparse

from repro.exceptions import AlignmentError
from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.networks.schema import USER, AlignedSchema
from repro.types import AttributeValue, LinkPair, NodeId


@dataclass(frozen=True)
class NetworkDelta:
    """One evolution event of an aligned pair — plain picklable data.

    Attributes
    ----------
    side:
        Which component network grows: ``"left"`` or ``"right"``.
    added_nodes:
        ``node_type -> tuple of new node ids`` (e.g. new users, new
        posts).  Ids must not already exist in the network.
    added_edges:
        ``(relation, source, target)`` triples.  Endpoints may be
        existing nodes or nodes added by this same delta.  Duplicate
        edges are ignored (networks are simple graphs).
    updated_attributes:
        ``(attribute, node, value, count)`` attachment records (new
        posts' timestamps/locations/words, or extra attachments to
        existing nodes).
    added_anchors:
        New ground-truth anchor links, e.g. when a freshly added user is
        known to exist on both platforms.  Ground truth only — the
        *known* anchor set of a model/session is unaffected.
    removed_nodes:
        ``node_type -> tuple of node ids`` to remove.  Removal cascades
        (incident edges and attribute attachments go too) and
        tombstones the slot; a user removal also drops any ground-truth
        anchor through it.  Removals are applied *before* additions, so
        one delta can remove a node and re-add the same id (it gets a
        fresh slot at the end of the order).
    removed_edges:
        ``(relation, source, target)`` triples of edges to remove.
        Each must currently exist.

    Notes
    -----
    Deltas are replayed from checkpoints, so they must stay plain data:
    every field is a tuple of hashables, and
    :meth:`AlignedPair.apply_delta` re-validates on every application.
    """

    side: str
    added_nodes: Tuple[Tuple[str, Tuple[NodeId, ...]], ...] = ()
    added_edges: Tuple[Tuple[str, NodeId, NodeId], ...] = ()
    updated_attributes: Tuple[
        Tuple[str, NodeId, AttributeValue, int], ...
    ] = ()
    added_anchors: Tuple[LinkPair, ...] = ()
    removed_nodes: Tuple[Tuple[str, Tuple[NodeId, ...]], ...] = ()
    removed_edges: Tuple[Tuple[str, NodeId, NodeId], ...] = ()

    @classmethod
    def build(
        cls,
        side: str,
        added_nodes: Optional[Mapping[str, Iterable[NodeId]]] = None,
        added_edges: Iterable[Tuple[str, NodeId, NodeId]] = (),
        updated_attributes: Iterable[Tuple] = (),
        added_anchors: Iterable[LinkPair] = (),
        removed_nodes: Optional[Mapping[str, Iterable[NodeId]]] = None,
        removed_edges: Iterable[Tuple[str, NodeId, NodeId]] = (),
    ) -> "NetworkDelta":
        """Normalize loose inputs (dicts, lists, 3-tuples) into a delta.

        ``added_edges`` / ``removed_edges`` entries are ``(relation,
        source, target)``; ``updated_attributes`` entries are
        ``(attribute, node, value)`` or ``(attribute, node, value,
        count)``.
        """
        nodes = tuple(
            (node_type, tuple(ids))
            for node_type, ids in (added_nodes or {}).items()
        )
        attributes = []
        for record in updated_attributes:
            if len(record) == 3:
                attribute, node, value = record
                count = 1
            else:
                attribute, node, value, count = record
            attributes.append((attribute, node, value, int(count)))
        return cls(
            side=side,
            added_nodes=nodes,
            added_edges=tuple(tuple(edge) for edge in added_edges),
            updated_attributes=tuple(attributes),
            added_anchors=tuple(tuple(pair) for pair in added_anchors),
            removed_nodes=tuple(
                (node_type, tuple(ids))
                for node_type, ids in (removed_nodes or {}).items()
            ),
            removed_edges=tuple(tuple(edge) for edge in removed_edges),
        )

    @property
    def n_nodes(self) -> int:
        """Total nodes added across all node types."""
        return sum(len(ids) for _, ids in self.added_nodes)

    @property
    def n_edges(self) -> int:
        """Edges added."""
        return len(self.added_edges)

    @property
    def n_attributes(self) -> int:
        """Attribute attachments added (counting repeats once)."""
        return len(self.updated_attributes)

    @property
    def n_removed_nodes(self) -> int:
        """Total nodes removed across all node types."""
        return sum(len(ids) for _, ids in self.removed_nodes)

    @property
    def n_removed_edges(self) -> int:
        """Edges removed explicitly (node cascades not included)."""
        return len(self.removed_edges)

    @property
    def has_removals(self) -> bool:
        """Whether the delta shrinks the network at all."""
        return bool(self.removed_nodes or self.removed_edges)

    def summary(self) -> str:
        """One-line human-readable rendering."""
        text = (
            f"{self.side}: +{self.n_nodes} nodes, +{self.n_edges} edges, "
            f"+{self.n_attributes} attribute links, "
            f"+{len(self.added_anchors)} anchors"
        )
        if self.has_removals:
            text += (
                f", -{self.n_removed_nodes} nodes, "
                f"-{self.n_removed_edges} edges"
            )
        return text


@dataclass(frozen=True)
class DeltaApplication:
    """What one :meth:`AlignedPair.apply_delta` call *actually* changed.

    The :class:`NetworkDelta` record alone is not enough to build exact
    matrix deltas: duplicate edge adds are silently ignored, attribute
    incidence matrices are binary (a repeat attachment changes no
    cell), and node removal cascades through edges and attachments.
    This report states the net effect in **slot coordinates** — row and
    column indices of the matrix exports — which is exactly what the
    engine's event-sourced fold consumes.

    Attributes
    ----------
    side:
        Which component network changed.
    added_slots:
        ``(node_type, n_added)`` pairs — pure padding at the end of the
        type's slot order.
    inserted_edges:
        ``(relation, source_slot, target_slot)`` triples of edges that
        went from absent to present.
    removed_edges:
        Same shape, edges that went from present to absent (explicit
        removals plus node-removal cascades).
    new_attribute_cells:
        ``(attribute, node_slot, value)`` cells that went 0 → 1 in the
        binary incidence matrix.  Values are raw vocabulary items; the
        caller maps them onto shared-vocabulary columns.
    removed_attribute_cells:
        Same shape, cells that went 1 → 0 (node-removal cascades).
    new_vocabulary:
        ``(attribute, value)`` pairs new to this side's vocabulary —
        the signal that the shared vocabulary may have grown or (for a
        left-side value landing mid-order) reordered.
    removed_nodes:
        ``(node_type, node_id, slot)`` of every tombstoned node.
    removed_anchors:
        Ground-truth anchor links dropped because a user endpoint was
        removed.
    """

    side: str
    added_slots: Tuple[Tuple[str, int], ...] = ()
    inserted_edges: Tuple[Tuple[str, int, int], ...] = ()
    removed_edges: Tuple[Tuple[str, int, int], ...] = ()
    new_attribute_cells: Tuple[Tuple[str, int, AttributeValue], ...] = ()
    removed_attribute_cells: Tuple[Tuple[str, int, AttributeValue], ...] = ()
    new_vocabulary: Tuple[Tuple[str, AttributeValue], ...] = ()
    removed_nodes: Tuple[Tuple[str, NodeId, int], ...] = ()
    removed_anchors: Tuple[LinkPair, ...] = ()


class AlignedPair:
    """Two heterogeneous networks plus anchor links between shared users.

    Parameters
    ----------
    left, right:
        The two component networks (``G^(1)`` and ``G^(2)``).
    anchors:
        Ground-truth anchor links as ``(left_user, right_user)`` pairs.
        Must satisfy the one-to-one constraint: no user appears in two
        anchors.
    anchor_node_type:
        Node type connected by anchors (``"user"`` in the paper).
    """

    def __init__(
        self,
        left: HeterogeneousNetwork,
        right: HeterogeneousNetwork,
        anchors: Iterable[LinkPair] = (),
        anchor_node_type: str = USER,
    ) -> None:
        self.left = left
        self.right = right
        self.anchor_node_type = anchor_node_type
        self.schema = AlignedSchema(
            left.schema, right.schema, anchor_node_type=anchor_node_type
        )
        self._anchors: Set[LinkPair] = set()
        self._left_to_right: Dict[NodeId, NodeId] = {}
        self._right_to_left: Dict[NodeId, NodeId] = {}
        for pair in anchors:
            self.add_anchor(pair)

    # ------------------------------------------------------------------
    # Anchor links
    # ------------------------------------------------------------------
    def add_anchor(self, pair: LinkPair) -> None:
        """Register a ground-truth anchor link.

        Raises
        ------
        AlignmentError
            If either endpoint is missing from its network or already
            anchored (one-to-one violation).
        """
        left_user, right_user = pair
        if not self.left.has_node(self.anchor_node_type, left_user):
            raise AlignmentError(
                f"anchor endpoint {left_user!r} missing from left network "
                f"{self.left.name!r}"
            )
        if not self.right.has_node(self.anchor_node_type, right_user):
            raise AlignmentError(
                f"anchor endpoint {right_user!r} missing from right network "
                f"{self.right.name!r}"
            )
        if left_user in self._left_to_right:
            raise AlignmentError(
                f"left user {left_user!r} already anchored to "
                f"{self._left_to_right[left_user]!r} (one-to-one violation)"
            )
        if right_user in self._right_to_left:
            raise AlignmentError(
                f"right user {right_user!r} already anchored to "
                f"{self._right_to_left[right_user]!r} (one-to-one violation)"
            )
        self._anchors.add((left_user, right_user))
        self._left_to_right[left_user] = right_user
        self._right_to_left[right_user] = left_user

    @property
    def anchors(self) -> Set[LinkPair]:
        """The ground-truth anchor set (a copy)."""
        return set(self._anchors)

    def anchor_count(self) -> int:
        """Number of ground-truth anchors."""
        return len(self._anchors)

    def is_anchor(self, pair: LinkPair) -> bool:
        """Whether ``pair`` is a ground-truth anchor."""
        return pair in self._anchors

    def anchored_right(self, left_user: NodeId) -> Optional[NodeId]:
        """The right-side partner of ``left_user`` or ``None``."""
        return self._left_to_right.get(left_user)

    def anchored_left(self, right_user: NodeId) -> Optional[NodeId]:
        """The left-side partner of ``right_user`` or ``None``."""
        return self._right_to_left.get(right_user)

    # ------------------------------------------------------------------
    # Network evolution
    # ------------------------------------------------------------------
    def _delta_network(self, delta: NetworkDelta) -> HeterogeneousNetwork:
        if delta.side == "left":
            return self.left
        if delta.side == "right":
            return self.right
        raise AlignmentError(
            f"delta side must be 'left' or 'right', got {delta.side!r}"
        )

    def _validate_delta(self, delta: NetworkDelta) -> None:
        """Reject a bad delta before any state changes (best-effort atomicity)."""
        network = self._delta_network(delta)
        removed: Dict[str, Set[NodeId]] = {}
        for node_type, ids in delta.removed_nodes:
            network.schema.has_node_type(node_type)
            bucket = removed.setdefault(node_type, set())
            for node_id in ids:
                if not network.has_node(node_type, node_id):
                    raise AlignmentError(
                        f"delta removes unknown {node_type!r} node "
                        f"{node_id!r} on the {delta.side} side"
                    )
                if node_id in bucket:
                    raise AlignmentError(
                        f"delta removes {node_type!r} node {node_id!r} twice"
                    )
                bucket.add(node_id)
        seen_removed_edges: Set[Tuple[str, NodeId, NodeId]] = set()
        for relation, source, target in delta.removed_edges:
            network.schema.edge_type(relation)  # raises if unknown
            if not network.has_edge(relation, source, target):
                raise AlignmentError(
                    f"delta removes missing {relation!r} edge "
                    f"{source!r} -> {target!r} on the {delta.side} side"
                )
            if (relation, source, target) in seen_removed_edges:
                raise AlignmentError(
                    f"delta removes {relation!r} edge "
                    f"{source!r} -> {target!r} twice"
                )
            seen_removed_edges.add((relation, source, target))
        added: Dict[str, Set[NodeId]] = {}
        for node_type, ids in delta.added_nodes:
            bucket = added.setdefault(node_type, set())
            for node_id in ids:
                survives = network.has_node(node_type, node_id) and (
                    node_id not in removed.get(node_type, ())
                )
                if survives or node_id in bucket:
                    raise AlignmentError(
                        f"delta re-adds existing {node_type!r} node "
                        f"{node_id!r} on the {delta.side} side"
                    )
                bucket.add(node_id)

        def will_exist(node_type: str, node_id: NodeId) -> bool:
            if node_id in added.get(node_type, ()):
                return True
            if node_id in removed.get(node_type, ()):
                return False
            return network.has_node(node_type, node_id)

        for relation, source, target in delta.added_edges:
            spec = network.schema.edge_type(relation)  # raises if unknown
            if not will_exist(spec.source, source):
                raise AlignmentError(
                    f"delta edge {relation!r} references missing "
                    f"{spec.source!r} node {source!r}"
                )
            if not will_exist(spec.target, target):
                raise AlignmentError(
                    f"delta edge {relation!r} references missing "
                    f"{spec.target!r} node {target!r}"
                )
            if spec.source == spec.target and source == target:
                raise AlignmentError(
                    f"delta adds self-loop {source!r} on relation {relation!r}"
                )
        for attribute, node_id, _value, count in delta.updated_attributes:
            spec = network.schema.attribute_type(attribute)
            if count < 1:
                raise AlignmentError(
                    f"attribute count must be >= 1, got {count}"
                )
            if not will_exist(spec.node_type, node_id):
                raise AlignmentError(
                    f"delta attribute {attribute!r} references missing "
                    f"{spec.node_type!r} node {node_id!r}"
                )
        anchored_left = set(self._left_to_right)
        anchored_right = set(self._right_to_left)
        # A removed user takes its ground-truth anchor with it, freeing
        # both endpoints within the same delta.
        for removed_user in removed.get(self.anchor_node_type, ()):
            if delta.side == "left":
                partner = self._left_to_right.get(removed_user)
                anchored_left.discard(removed_user)
                if partner is not None:
                    anchored_right.discard(partner)
            else:
                partner = self._right_to_left.get(removed_user)
                anchored_right.discard(removed_user)
                if partner is not None:
                    anchored_left.discard(partner)
        left_added = added if delta.side == "left" else {}
        right_added = added if delta.side == "right" else {}
        left_removed = removed if delta.side == "left" else {}
        right_removed = removed if delta.side == "right" else {}
        for left_user, right_user in delta.added_anchors:
            left_ok = left_user in left_added.get(self.anchor_node_type, ()) or (
                self.left.has_node(self.anchor_node_type, left_user)
                and left_user not in left_removed.get(self.anchor_node_type, ())
            )
            right_ok = right_user in right_added.get(
                self.anchor_node_type, ()
            ) or (
                self.right.has_node(self.anchor_node_type, right_user)
                and right_user
                not in right_removed.get(self.anchor_node_type, ())
            )
            if not left_ok or not right_ok:
                raise AlignmentError(
                    f"delta anchor ({left_user!r}, {right_user!r}) "
                    "references a missing user"
                )
            if left_user in anchored_left or right_user in anchored_right:
                raise AlignmentError(
                    f"delta anchor ({left_user!r}, {right_user!r}) violates "
                    "the one-to-one constraint"
                )
            anchored_left.add(left_user)
            anchored_right.add(right_user)

    def _drop_anchors_of(self, side: str, user: NodeId) -> List[LinkPair]:
        """Drop the ground-truth anchor through ``user`` (if any)."""
        if side == "left":
            partner = self._left_to_right.pop(user, None)
            if partner is None:
                return []
            pair = (user, partner)
            self._right_to_left.pop(partner, None)
        else:
            partner = self._right_to_left.pop(user, None)
            if partner is None:
                return []
            pair = (partner, user)
            self._left_to_right.pop(partner, None)
        self._anchors.discard(pair)
        return [pair]

    def apply_delta(self, delta: NetworkDelta) -> DeltaApplication:
        """Apply one evolution event in place (validated first).

        Removals happen before additions; new nodes append to the end
        of each type's order and removed nodes tombstone their slot, so
        matrices exported before this call stay index-compatible: the
        engine layer relies on growth being pure padding and shrinkage
        pure zeroing.  A delta that fails validation leaves the pair
        untouched.  Returns the :class:`DeltaApplication` report of the
        net changes in slot coordinates.
        """
        self._validate_delta(delta)
        network = self._delta_network(delta)
        removed_edges: List[Tuple[str, int, int]] = []
        removed_cells: List[Tuple[str, int, AttributeValue]] = []
        removed_nodes: List[Tuple[str, NodeId, int]] = []
        removed_anchors: List[LinkPair] = []
        for relation, source, target in delta.removed_edges:
            spec = network.schema.edge_type(relation)
            removed_edges.append(
                (
                    relation,
                    network.node_position(spec.source, source),
                    network.node_position(spec.target, target),
                )
            )
            network.remove_edge(relation, source, target)
        for node_type, ids in delta.removed_nodes:
            for node_id in ids:
                removal = network.remove_node(node_type, node_id)
                removed_nodes.append((node_type, node_id, removal.slot))
                removed_edges.extend(removal.edges)
                removed_cells.extend(removal.attributes)
                if node_type == self.anchor_node_type:
                    removed_anchors.extend(
                        self._drop_anchors_of(delta.side, node_id)
                    )
        added_slots = tuple(
            (node_type, len(ids)) for node_type, ids in delta.added_nodes if ids
        )
        for node_type, ids in delta.added_nodes:
            network.add_nodes(node_type, ids)
        inserted_edges: List[Tuple[str, int, int]] = []
        for relation, source, target in delta.added_edges:
            if network.add_edge(relation, source, target):
                spec = network.schema.edge_type(relation)
                inserted_edges.append(
                    (
                        relation,
                        network.node_position(spec.source, source),
                        network.node_position(spec.target, target),
                    )
                )
        new_cells: List[Tuple[str, int, AttributeValue]] = []
        new_vocabulary: List[Tuple[str, AttributeValue]] = []
        for attribute, node_id, value, count in delta.updated_attributes:
            new_value, new_incidence = network.attach_attribute(
                attribute, node_id, value, count=count
            )
            if new_value:
                new_vocabulary.append((attribute, value))
            if new_incidence:
                spec = network.schema.attribute_type(attribute)
                new_cells.append(
                    (
                        attribute,
                        network.node_position(spec.node_type, node_id),
                        value,
                    )
                )
        for pair in delta.added_anchors:
            self.add_anchor(tuple(pair))
        return DeltaApplication(
            side=delta.side,
            added_slots=added_slots,
            inserted_edges=tuple(inserted_edges),
            removed_edges=tuple(removed_edges),
            new_attribute_cells=tuple(new_cells),
            removed_attribute_cells=tuple(removed_cells),
            new_vocabulary=tuple(new_vocabulary),
            removed_nodes=tuple(removed_nodes),
            removed_anchors=tuple(removed_anchors),
        )

    def compact(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Compact both component networks, dropping tombstoned slots.

        Returns ``{"left": ..., "right": ...}`` with each side's
        surviving-old-slot arrays (see
        :meth:`~repro.networks.heterogeneous.HeterogeneousNetwork.compact`).
        Anything position-derived — exported matrices, cached index
        maps, candidate views — must be rebuilt by the caller.
        """
        return {"left": self.left.compact(), "right": self.right.compact()}

    # ------------------------------------------------------------------
    # Candidate space
    # ------------------------------------------------------------------
    def candidate_space_size(self) -> int:
        """``|H| = |U^(1)| x |U^(2)|``, the full candidate link count."""
        return self.left.node_count(self.anchor_node_type) * self.right.node_count(
            self.anchor_node_type
        )

    def left_users(self) -> List[NodeId]:
        """Ordered *live* left-side user ids (tombstones skipped)."""
        return self.left.nodes(self.anchor_node_type)

    def right_users(self) -> List[NodeId]:
        """Ordered *live* right-side user ids (tombstones skipped)."""
        return self.right.nodes(self.anchor_node_type)

    def left_user_slots(self) -> List[Optional[NodeId]]:
        """Full left-side user slot list: index ``i`` is matrix row ``i``."""
        return self.left.slots(self.anchor_node_type)

    def right_user_slots(self) -> List[Optional[NodeId]]:
        """Full right-side user slot list: index ``j`` is matrix column ``j``."""
        return self.right.slots(self.anchor_node_type)

    # ------------------------------------------------------------------
    # Shared vocabularies and matrix exports
    # ------------------------------------------------------------------
    def shared_vocabulary(self, attribute: str) -> List:
        """Union vocabulary of ``attribute`` across both networks.

        Values present in the left network keep their left order and are
        followed by right-only values; the ordering is deterministic for
        reproducibility.
        """
        left_values = self.left.attribute_values(attribute)
        seen = set(left_values)
        right_only = [
            value
            for value in self.right.attribute_values(attribute)
            if value not in seen
        ]
        return left_values + right_only

    def attribute_matrices(
        self, attribute: str, binary: bool = True
    ) -> Tuple[sparse.csr_matrix, sparse.csr_matrix]:
        """Export both sides' node-by-value matrices on the shared vocabulary."""
        vocabulary = self.shared_vocabulary(attribute)
        left = self.left.attribute_matrix(attribute, vocabulary, binary=binary)
        right = self.right.attribute_matrix(attribute, vocabulary, binary=binary)
        return left, right

    def anchor_matrix(
        self, anchors: Optional[Iterable[LinkPair]] = None
    ) -> sparse.csr_matrix:
        """CSR |U1| x |U2| indicator matrix of anchor links.

        Parameters
        ----------
        anchors:
            The anchor subset to encode.  Model code passes the *known*
            (training + queried) anchors here so unknown test anchors do
            not leak into path counting.  Defaults to all ground-truth
            anchors.
        """
        if anchors is None:
            anchors = self._anchors
        n_left = self.left.slot_count(self.anchor_node_type)
        n_right = self.right.slot_count(self.anchor_node_type)
        rows: List[int] = []
        cols: List[int] = []
        for left_user, right_user in anchors:
            rows.append(self.left.node_position(self.anchor_node_type, left_user))
            cols.append(self.right.node_position(self.anchor_node_type, right_user))
        data = np.ones(len(rows), dtype=np.float64)
        return sparse.csr_matrix((data, (rows, cols)), shape=(n_left, n_right))

    def pairs_to_indices(
        self, pairs: Sequence[LinkPair]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Convert ``(left_user, right_user)`` pairs to dense index arrays."""
        left_idx = np.array(
            [
                self.left.node_position(self.anchor_node_type, left_user)
                for left_user, _ in pairs
            ],
            dtype=np.int64,
        )
        right_idx = np.array(
            [
                self.right.node_position(self.anchor_node_type, right_user)
                for _, right_user in pairs
            ],
            dtype=np.int64,
        )
        return left_idx, right_idx

    def __repr__(self) -> str:
        return (
            f"AlignedPair(left={self.left.name!r}, right={self.right.name!r}, "
            f"anchors={len(self._anchors)})"
        )
