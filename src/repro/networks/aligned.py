"""Aligned network pairs and anchor-link bookkeeping (Definition 2).

An :class:`AlignedPair` couples two :class:`HeterogeneousNetwork` objects
with the set of ground-truth anchor links between their user node sets.
It also owns the *shared attribute vocabularies*: the union, per attribute
type, of the values seen in either network, so matrix exports from the two
sides agree column-for-column.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy import sparse

from repro.exceptions import AlignmentError
from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.networks.schema import USER, AlignedSchema
from repro.types import LinkPair, NodeId


class AlignedPair:
    """Two heterogeneous networks plus anchor links between shared users.

    Parameters
    ----------
    left, right:
        The two component networks (``G^(1)`` and ``G^(2)``).
    anchors:
        Ground-truth anchor links as ``(left_user, right_user)`` pairs.
        Must satisfy the one-to-one constraint: no user appears in two
        anchors.
    anchor_node_type:
        Node type connected by anchors (``"user"`` in the paper).
    """

    def __init__(
        self,
        left: HeterogeneousNetwork,
        right: HeterogeneousNetwork,
        anchors: Iterable[LinkPair] = (),
        anchor_node_type: str = USER,
    ) -> None:
        self.left = left
        self.right = right
        self.anchor_node_type = anchor_node_type
        self.schema = AlignedSchema(
            left.schema, right.schema, anchor_node_type=anchor_node_type
        )
        self._anchors: Set[LinkPair] = set()
        self._left_to_right: Dict[NodeId, NodeId] = {}
        self._right_to_left: Dict[NodeId, NodeId] = {}
        for pair in anchors:
            self.add_anchor(pair)

    # ------------------------------------------------------------------
    # Anchor links
    # ------------------------------------------------------------------
    def add_anchor(self, pair: LinkPair) -> None:
        """Register a ground-truth anchor link.

        Raises
        ------
        AlignmentError
            If either endpoint is missing from its network or already
            anchored (one-to-one violation).
        """
        left_user, right_user = pair
        if not self.left.has_node(self.anchor_node_type, left_user):
            raise AlignmentError(
                f"anchor endpoint {left_user!r} missing from left network "
                f"{self.left.name!r}"
            )
        if not self.right.has_node(self.anchor_node_type, right_user):
            raise AlignmentError(
                f"anchor endpoint {right_user!r} missing from right network "
                f"{self.right.name!r}"
            )
        if left_user in self._left_to_right:
            raise AlignmentError(
                f"left user {left_user!r} already anchored to "
                f"{self._left_to_right[left_user]!r} (one-to-one violation)"
            )
        if right_user in self._right_to_left:
            raise AlignmentError(
                f"right user {right_user!r} already anchored to "
                f"{self._right_to_left[right_user]!r} (one-to-one violation)"
            )
        self._anchors.add((left_user, right_user))
        self._left_to_right[left_user] = right_user
        self._right_to_left[right_user] = left_user

    @property
    def anchors(self) -> Set[LinkPair]:
        """The ground-truth anchor set (a copy)."""
        return set(self._anchors)

    def anchor_count(self) -> int:
        """Number of ground-truth anchors."""
        return len(self._anchors)

    def is_anchor(self, pair: LinkPair) -> bool:
        """Whether ``pair`` is a ground-truth anchor."""
        return pair in self._anchors

    def anchored_right(self, left_user: NodeId) -> Optional[NodeId]:
        """The right-side partner of ``left_user`` or ``None``."""
        return self._left_to_right.get(left_user)

    def anchored_left(self, right_user: NodeId) -> Optional[NodeId]:
        """The left-side partner of ``right_user`` or ``None``."""
        return self._right_to_left.get(right_user)

    # ------------------------------------------------------------------
    # Candidate space
    # ------------------------------------------------------------------
    def candidate_space_size(self) -> int:
        """``|H| = |U^(1)| x |U^(2)|``, the full candidate link count."""
        return self.left.node_count(self.anchor_node_type) * self.right.node_count(
            self.anchor_node_type
        )

    def left_users(self) -> List[NodeId]:
        """Ordered left-side user ids."""
        return self.left.nodes(self.anchor_node_type)

    def right_users(self) -> List[NodeId]:
        """Ordered right-side user ids."""
        return self.right.nodes(self.anchor_node_type)

    # ------------------------------------------------------------------
    # Shared vocabularies and matrix exports
    # ------------------------------------------------------------------
    def shared_vocabulary(self, attribute: str) -> List:
        """Union vocabulary of ``attribute`` across both networks.

        Values present in the left network keep their left order and are
        followed by right-only values; the ordering is deterministic for
        reproducibility.
        """
        left_values = self.left.attribute_values(attribute)
        seen = set(left_values)
        right_only = [
            value
            for value in self.right.attribute_values(attribute)
            if value not in seen
        ]
        return left_values + right_only

    def attribute_matrices(
        self, attribute: str, binary: bool = True
    ) -> Tuple[sparse.csr_matrix, sparse.csr_matrix]:
        """Export both sides' node-by-value matrices on the shared vocabulary."""
        vocabulary = self.shared_vocabulary(attribute)
        left = self.left.attribute_matrix(attribute, vocabulary, binary=binary)
        right = self.right.attribute_matrix(attribute, vocabulary, binary=binary)
        return left, right

    def anchor_matrix(
        self, anchors: Optional[Iterable[LinkPair]] = None
    ) -> sparse.csr_matrix:
        """CSR |U1| x |U2| indicator matrix of anchor links.

        Parameters
        ----------
        anchors:
            The anchor subset to encode.  Model code passes the *known*
            (training + queried) anchors here so unknown test anchors do
            not leak into path counting.  Defaults to all ground-truth
            anchors.
        """
        if anchors is None:
            anchors = self._anchors
        n_left = self.left.node_count(self.anchor_node_type)
        n_right = self.right.node_count(self.anchor_node_type)
        rows: List[int] = []
        cols: List[int] = []
        for left_user, right_user in anchors:
            rows.append(self.left.node_position(self.anchor_node_type, left_user))
            cols.append(self.right.node_position(self.anchor_node_type, right_user))
        data = np.ones(len(rows), dtype=np.float64)
        return sparse.csr_matrix((data, (rows, cols)), shape=(n_left, n_right))

    def pairs_to_indices(
        self, pairs: Sequence[LinkPair]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Convert ``(left_user, right_user)`` pairs to dense index arrays."""
        left_idx = np.array(
            [
                self.left.node_position(self.anchor_node_type, left_user)
                for left_user, _ in pairs
            ],
            dtype=np.int64,
        )
        right_idx = np.array(
            [
                self.right.node_position(self.anchor_node_type, right_user)
                for _, right_user in pairs
            ],
            dtype=np.int64,
        )
        return left_idx, right_idx

    def __repr__(self) -> str:
        return (
            f"AlignedPair(left={self.left.name!r}, right={self.right.name!r}, "
            f"anchors={len(self._anchors)})"
        )
