"""Descriptive statistics for networks and aligned pairs (Table II analog)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.networks.aligned import AlignedPair
from repro.networks.heterogeneous import HeterogeneousNetwork


@dataclass(frozen=True)
class NetworkStats:
    """Node/edge/attribute counts of one heterogeneous network."""

    name: str
    node_counts: Dict[str, int]
    edge_counts: Dict[str, int]
    attribute_vocab_sizes: Dict[str, int]
    attribute_link_counts: Dict[str, int]


def network_stats(network: HeterogeneousNetwork) -> NetworkStats:
    """Compute counts for one network."""
    schema = network.schema
    return NetworkStats(
        name=network.name,
        node_counts={t: network.node_count(t) for t in sorted(schema.node_types)},
        edge_counts={r: network.edge_count(r) for r in sorted(schema.edge_types)},
        attribute_vocab_sizes={
            a: network.attribute_vocabulary_size(a)
            for a in sorted(schema.attribute_types)
        },
        attribute_link_counts={
            a: network.attribute_link_count(a) for a in sorted(schema.attribute_types)
        },
    )


@dataclass(frozen=True)
class AlignedPairStats:
    """Statistics of an aligned pair, mirroring the paper's Table II."""

    left: NetworkStats
    right: NetworkStats
    anchor_count: int
    candidate_space: int


def aligned_pair_stats(pair: AlignedPair) -> AlignedPairStats:
    """Compute statistics of an aligned pair."""
    return AlignedPairStats(
        left=network_stats(pair.left),
        right=network_stats(pair.right),
        anchor_count=pair.anchor_count(),
        candidate_space=pair.candidate_space_size(),
    )


def format_table2(stats: AlignedPairStats) -> str:
    """Render the Table II analog as aligned plain text.

    One row per statistic, one column per network, paper-style.
    """
    rows: List[tuple] = []
    left, right = stats.left, stats.right
    for node_type in left.node_counts:
        rows.append(
            (f"# node: {node_type}", left.node_counts[node_type],
             right.node_counts.get(node_type, 0))
        )
    for attribute in left.attribute_vocab_sizes:
        rows.append(
            (f"# attr values: {attribute}", left.attribute_vocab_sizes[attribute],
             right.attribute_vocab_sizes.get(attribute, 0))
        )
    for relation in left.edge_counts:
        rows.append(
            (f"# link: {relation}", left.edge_counts[relation],
             right.edge_counts.get(relation, 0))
        )
    rows.append(("# anchor links", stats.anchor_count, ""))
    rows.append(("|H| candidate pairs", stats.candidate_space, ""))

    label_width = max(len(str(row[0])) for row in rows)
    header = (
        f"{'property':<{label_width}}  {left.name:>14}  {right.name:>14}"
    )
    lines = [header, "-" * len(header)]
    for label, left_value, right_value in rows:
        lines.append(
            f"{label:<{label_width}}  {str(left_value):>14}  {str(right_value):>14}"
        )
    return "\n".join(lines)
