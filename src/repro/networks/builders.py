"""Convenience builders for social networks.

:class:`SocialNetworkBuilder` wraps the raw :class:`HeterogeneousNetwork`
mutation API with domain verbs (``add_user``, ``follow``, ``post``) so
examples and generators read like the scenario they model.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.networks.schema import (
    FOLLOW,
    LOCATION,
    POST,
    TIMESTAMP,
    USER,
    WORD,
    WRITE,
    social_network_schema,
)
from repro.types import AttributeValue, NodeId


class SocialNetworkBuilder:
    """Fluent builder for one Foursquare/Twitter-style network.

    Example
    -------
    >>> net = (
    ...     SocialNetworkBuilder("demo")
    ...     .add_users(["alice", "bob"])
    ...     .follow("alice", "bob")
    ...     .post("alice", "p1", timestamp=12, location=(3, 4), words=["hi"])
    ...     .build()
    ... )
    >>> net.node_count("user")
    2
    """

    def __init__(self, name: str = "social") -> None:
        self._network = HeterogeneousNetwork(social_network_schema(name), name)
        self._post_counter = 0

    def add_user(self, user: NodeId) -> "SocialNetworkBuilder":
        """Add one user node."""
        self._network.add_node(USER, user)
        return self

    def add_users(self, users: Iterable[NodeId]) -> "SocialNetworkBuilder":
        """Add many user nodes."""
        for user in users:
            self.add_user(user)
        return self

    def follow(self, follower: NodeId, followee: NodeId) -> "SocialNetworkBuilder":
        """Record ``follower`` following ``followee``."""
        self._network.add_edge(FOLLOW, follower, followee)
        return self

    def befriend(self, user_a: NodeId, user_b: NodeId) -> "SocialNetworkBuilder":
        """Record a mutual follow (Foursquare-style friendship)."""
        self._network.add_edge(FOLLOW, user_a, user_b)
        self._network.add_edge(FOLLOW, user_b, user_a)
        return self

    def post(
        self,
        author: NodeId,
        post_id: Optional[NodeId] = None,
        timestamp: Optional[AttributeValue] = None,
        location: Optional[AttributeValue] = None,
        words: Iterable[AttributeValue] = (),
    ) -> "SocialNetworkBuilder":
        """Add one post written by ``author`` with optional attributes."""
        if post_id is None:
            post_id = f"{self._network.name}:post:{self._post_counter}"
            self._post_counter += 1
        self._network.add_node(POST, post_id)
        self._network.add_edge(WRITE, author, post_id)
        if timestamp is not None:
            self._network.attach_attribute(TIMESTAMP, post_id, timestamp)
        if location is not None:
            self._network.attach_attribute(LOCATION, post_id, location)
        for word in words:
            self._network.attach_attribute(WORD, post_id, word)
        return self

    def build(self) -> HeterogeneousNetwork:
        """Return the built network."""
        return self._network
