"""Attributed heterogeneous social network substrate.

This subpackage implements Definitions 1-3 of the paper: typed networks,
schemas, aligned network pairs with anchor links, plus builders, JSON
round-tripping and descriptive statistics.
"""

from repro.networks.aligned import AlignedPair, NetworkDelta
from repro.networks.builders import SocialNetworkBuilder
from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.networks.multi import MultiAlignedNetworks
from repro.networks.io import (
    aligned_pair_from_dict,
    aligned_pair_to_dict,
    load_aligned_pair,
    network_from_dict,
    network_to_dict,
    save_aligned_pair,
)
from repro.networks.schema import (
    ANCHOR,
    AT,
    CHECKIN,
    CONTAIN,
    FOLLOW,
    LOCATION,
    POST,
    TIMESTAMP,
    USER,
    WORD,
    WRITE,
    AlignedSchema,
    AttributeTypeSpec,
    EdgeTypeSpec,
    NetworkSchema,
    social_network_schema,
)
from repro.networks.stats import (
    AlignedPairStats,
    NetworkStats,
    aligned_pair_stats,
    format_table2,
    network_stats,
)

__all__ = [
    "ANCHOR",
    "AT",
    "CHECKIN",
    "CONTAIN",
    "FOLLOW",
    "LOCATION",
    "POST",
    "TIMESTAMP",
    "USER",
    "WORD",
    "WRITE",
    "AlignedPair",
    "AlignedPairStats",
    "AlignedSchema",
    "AttributeTypeSpec",
    "EdgeTypeSpec",
    "HeterogeneousNetwork",
    "NetworkDelta",
    "NetworkSchema",
    "MultiAlignedNetworks",
    "NetworkStats",
    "SocialNetworkBuilder",
    "aligned_pair_from_dict",
    "aligned_pair_stats",
    "aligned_pair_to_dict",
    "format_table2",
    "load_aligned_pair",
    "network_from_dict",
    "network_stats",
    "network_to_dict",
    "save_aligned_pair",
    "social_network_schema",
]
