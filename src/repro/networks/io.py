"""JSON (de)serialization of networks and aligned pairs.

The on-disk format is a single JSON document that round-trips every node,
edge, attribute attachment and anchor link.  Hashable-but-not-JSON node
ids (tuples, ints) are encoded with a small tagging scheme so round trips
are exact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.exceptions import NetworkError
from repro.networks.aligned import AlignedPair
from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.networks.schema import (
    AttributeTypeSpec,
    EdgeTypeSpec,
    NetworkSchema,
)

_FORMAT_VERSION = 1


def _encode_id(value: Any) -> Any:
    """Encode a hashable id into a JSON-safe tagged value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_id(item) for item in value]}
    raise NetworkError(f"cannot serialize node id of type {type(value).__name__}")


def _decode_id(value: Any) -> Any:
    """Invert :func:`_encode_id`."""
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(_decode_id(item) for item in value["__tuple__"])
    return value


def schema_to_dict(schema: NetworkSchema) -> Dict[str, Any]:
    """Serialize a schema to a plain dict."""
    return {
        "name": schema.name,
        "node_types": sorted(schema.node_types),
        "edge_types": [
            {
                "name": spec.name,
                "source": spec.source,
                "target": spec.target,
                "directed": spec.directed,
            }
            for spec in sorted(schema.edge_types.values(), key=lambda s: s.name)
        ],
        "attribute_types": [
            {"name": spec.name, "node_type": spec.node_type, "relation": spec.relation}
            for spec in sorted(schema.attribute_types.values(), key=lambda s: s.name)
        ],
    }


def schema_from_dict(payload: Dict[str, Any]) -> NetworkSchema:
    """Deserialize a schema from :func:`schema_to_dict` output."""
    return NetworkSchema(
        name=payload["name"],
        node_types=payload["node_types"],
        edge_types=[EdgeTypeSpec(**spec) for spec in payload["edge_types"]],
        attribute_types=[
            AttributeTypeSpec(**spec) for spec in payload["attribute_types"]
        ],
    )


def network_to_dict(network: HeterogeneousNetwork) -> Dict[str, Any]:
    """Serialize a network to a plain dict."""
    payload: Dict[str, Any] = {
        "name": network.name,
        "schema": schema_to_dict(network.schema),
        "nodes": {
            node_type: [_encode_id(node) for node in network.nodes(node_type)]
            for node_type in sorted(network.schema.node_types)
        },
        "edges": {
            relation: [
                [_encode_id(source), _encode_id(target)]
                for source, target in sorted(
                    network.edges(relation), key=lambda e: (repr(e[0]), repr(e[1]))
                )
            ]
            for relation in sorted(network.schema.edge_types)
        },
        "attributes": {},
    }
    for attribute in sorted(network.schema.attribute_types):
        spec = network.schema.attribute_type(attribute)
        attachments: List[List[Any]] = []
        for node in network.nodes(spec.node_type):
            for value, count in sorted(
                network.node_attributes(attribute, node).items(), key=repr
            ):
                attachments.append([_encode_id(node), _encode_id(value), count])
        payload["attributes"][attribute] = attachments
    return payload


def network_from_dict(payload: Dict[str, Any]) -> HeterogeneousNetwork:
    """Deserialize a network from :func:`network_to_dict` output."""
    schema = schema_from_dict(payload["schema"])
    network = HeterogeneousNetwork(schema, payload["name"])
    for node_type, nodes in payload["nodes"].items():
        network.add_nodes(node_type, [_decode_id(node) for node in nodes])
    for relation, edges in payload["edges"].items():
        for source, target in edges:
            network.add_edge(relation, _decode_id(source), _decode_id(target))
    for attribute, attachments in payload["attributes"].items():
        for node, value, count in attachments:
            network.attach_attribute(
                attribute, _decode_id(node), _decode_id(value), count=count
            )
    return network


def aligned_pair_to_dict(pair: AlignedPair) -> Dict[str, Any]:
    """Serialize an aligned pair to a plain dict."""
    return {
        "format_version": _FORMAT_VERSION,
        "anchor_node_type": pair.anchor_node_type,
        "left": network_to_dict(pair.left),
        "right": network_to_dict(pair.right),
        "anchors": [
            [_encode_id(left_user), _encode_id(right_user)]
            for left_user, right_user in sorted(pair.anchors, key=repr)
        ],
    }


def aligned_pair_from_dict(payload: Dict[str, Any]) -> AlignedPair:
    """Deserialize an aligned pair from :func:`aligned_pair_to_dict` output."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise NetworkError(
            f"unsupported aligned-pair format version {version!r}; "
            f"expected {_FORMAT_VERSION}"
        )
    left = network_from_dict(payload["left"])
    right = network_from_dict(payload["right"])
    anchors = [
        (_decode_id(left_user), _decode_id(right_user))
        for left_user, right_user in payload["anchors"]
    ]
    return AlignedPair(
        left, right, anchors, anchor_node_type=payload["anchor_node_type"]
    )


def save_aligned_pair(pair: AlignedPair, path: Union[str, Path]) -> None:
    """Write an aligned pair to a JSON file."""
    Path(path).write_text(json.dumps(aligned_pair_to_dict(pair)))


def load_aligned_pair(path: Union[str, Path]) -> AlignedPair:
    """Read an aligned pair from a JSON file."""
    return aligned_pair_from_dict(json.loads(Path(path).read_text()))
