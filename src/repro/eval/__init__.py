"""Evaluation harness: protocol, experiment runner, studies, reporting."""

from repro.eval.convergence import (
    ConvergenceTrace,
    convergence_study,
    format_convergence,
)
from repro.eval.experiment import (
    ExperimentOutcome,
    MethodResult,
    MethodSpec,
    run_experiment,
    run_split,
    standard_methods,
)
from repro.eval.persistence import (
    load_outcome,
    outcome_from_dict,
    outcome_to_dict,
    save_outcome,
)
from repro.eval.plots import ascii_line_chart, sparkline
from repro.eval.protocol import (
    ExperimentSplit,
    ProtocolConfig,
    assign_folds,
    build_splits,
    sample_negatives,
)
from repro.eval.significance import (
    PairedComparison,
    bootstrap_mean_ci,
    compare_methods,
    comparison_table,
)
from repro.eval.sweeps import (
    SweepRunner,
    evolve_series,
    evolve_sweep_methods,
    run_evolve_sweep,
)
from repro.eval.report import (
    format_cell,
    format_single_outcome,
    format_sweep_table,
)
from repro.eval.timing import (
    TimingPoint,
    fit_linear_trend,
    format_timing,
    scalability_study,
)

__all__ = [
    "ConvergenceTrace",
    "ExperimentOutcome",
    "ExperimentSplit",
    "MethodResult",
    "MethodSpec",
    "PairedComparison",
    "ProtocolConfig",
    "SweepRunner",
    "evolve_series",
    "evolve_sweep_methods",
    "run_evolve_sweep",
    "TimingPoint",
    "ascii_line_chart",
    "assign_folds",
    "bootstrap_mean_ci",
    "build_splits",
    "compare_methods",
    "comparison_table",
    "convergence_study",
    "fit_linear_trend",
    "format_cell",
    "format_convergence",
    "format_single_outcome",
    "format_sweep_table",
    "format_timing",
    "load_outcome",
    "outcome_from_dict",
    "outcome_to_dict",
    "run_experiment",
    "run_split",
    "sample_negatives",
    "save_outcome",
    "sparkline",
    "scalability_study",
    "standard_methods",
]
