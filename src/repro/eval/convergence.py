"""Convergence analysis harness (Figure 3).

The paper plots Δy = ‖yᵢ − yᵢ₋₁‖₁ per alternating iteration for
NP-ratios {10, 30, 50} at sample-ratio 100%.  This harness reruns that
study on any aligned pair: it builds one split per NP-ratio, fits the
iterative engine and returns the recorded traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


from repro.core.base import AlignmentTask
from repro.core.itermpmd import IterMPMD
from repro.eval.protocol import ProtocolConfig, build_splits
from repro.meta.features import FeatureExtractor
from repro.networks.aligned import AlignedPair


@dataclass(frozen=True)
class ConvergenceTrace:
    """Δy per iteration for one NP-ratio."""

    np_ratio: int
    deltas: Tuple[float, ...]

    @property
    def iterations_to_converge(self) -> int:
        """Iterations executed before the trace ended."""
        return len(self.deltas)


def convergence_study(
    pair: AlignedPair,
    np_ratios: Sequence[int] = (10, 30, 50),
    sample_ratio: float = 1.0,
    seed: int = 13,
    max_iterations: int = 15,
) -> List[ConvergenceTrace]:
    """Record label-vector convergence traces across NP-ratios."""
    traces: List[ConvergenceTrace] = []
    for np_ratio in np_ratios:
        config = ProtocolConfig(
            np_ratio=np_ratio,
            sample_ratio=sample_ratio,
            n_repeats=1,
            seed=seed,
        )
        split = next(iter(build_splits(pair, config)))
        extractor = FeatureExtractor(
            pair, known_anchors=split.train_positive_pairs
        )
        task = AlignmentTask(
            pairs=list(split.candidates),
            X=extractor.extract(list(split.candidates)),
            labeled_indices=split.train_indices,
            labeled_values=split.truth[split.train_indices],
        )
        model = IterMPMD(max_iterations=max_iterations, tol=0.0)
        model.fit(task)
        traces.append(
            ConvergenceTrace(
                np_ratio=np_ratio,
                deltas=tuple(model.result_.convergence_trace),
            )
        )
    return traces


def format_convergence(traces: Sequence[ConvergenceTrace]) -> str:
    """Plain-text rendering of Figure 3 (Δy per iteration per θ)."""
    lines = ["Convergence analysis (delta-y per iteration)"]
    for trace in traces:
        rendered = ", ".join(f"{delta:.0f}" for delta in trace.deltas)
        lines.append(f"  NP-ratio={trace.np_ratio:>3}: [{rendered}]")
    return "\n".join(lines)
