"""The paper's experimental protocol (§IV-B.1).

Construction of one experiment instance:

1. positives L+ = the ground-truth anchor set;
2. negatives: ``θ · |L+|`` non-anchor pairs sampled uniformly from
   H \\ L+ (θ is the NP-ratio, 5..50 in the paper);
3. positives and negatives are split into ``n_folds`` folds (10 in the
   paper); one fold trains, the rest test;
4. the training fold is further subsampled by the sample-ratio γ
   (10%..100%), simulating scarce labels;
5. folds rotate so every fold trains once; metrics are averaged.

For active methods, queried links are removed from the test set before
scoring (§IV-B.3) to keep the comparison fair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Set, Tuple

import numpy as np

from repro.exceptions import ExperimentError
from repro.networks.aligned import AlignedPair
from repro.types import LinkPair


@dataclass(frozen=True)
class ProtocolConfig:
    """Parameters of the evaluation protocol.

    Attributes
    ----------
    np_ratio:
        θ — negatives sampled per positive.
    sample_ratio:
        γ — fraction of the training fold actually used (0 < γ ≤ 1).
    n_folds:
        Number of folds (the paper uses 10).
    n_repeats:
        How many fold rotations to run (≤ n_folds); the paper runs all.
    seed:
        Seed for negative sampling, fold assignment and subsampling.
    """

    np_ratio: int = 10
    sample_ratio: float = 0.6
    n_folds: int = 10
    n_repeats: int = 10
    seed: int = 13

    def __post_init__(self) -> None:
        if self.np_ratio < 1:
            raise ExperimentError("np_ratio must be >= 1")
        if not 0.0 < self.sample_ratio <= 1.0:
            raise ExperimentError("sample_ratio must be in (0, 1]")
        if self.n_folds < 2:
            raise ExperimentError("n_folds must be >= 2")
        if not 1 <= self.n_repeats <= self.n_folds:
            raise ExperimentError("n_repeats must be in [1, n_folds]")


@dataclass(frozen=True)
class ExperimentSplit:
    """One train/test split over a sampled candidate set.

    Attributes
    ----------
    candidates:
        The sampled links (all positives followed by all negatives).
    truth:
        Ground-truth 0/1 labels parallel to ``candidates``.
    train_indices:
        Indices of training candidates (after γ subsampling).
    test_indices:
        Indices of test candidates.
    fold:
        Which fold served as the training fold.
    """

    candidates: Tuple[LinkPair, ...]
    truth: np.ndarray
    train_indices: np.ndarray
    test_indices: np.ndarray
    fold: int

    @property
    def train_pairs(self) -> List[LinkPair]:
        """Training candidate links."""
        return [self.candidates[i] for i in self.train_indices]

    @property
    def train_labels(self) -> np.ndarray:
        """Training labels (parallel to :attr:`train_pairs`)."""
        return self.truth[self.train_indices]

    @property
    def train_positive_pairs(self) -> List[LinkPair]:
        """Known positive links — the anchors visible to models."""
        return [
            self.candidates[i]
            for i in self.train_indices
            if self.truth[i] == 1
        ]


def sample_negatives(
    pair: AlignedPair, n_negatives: int, rng: np.random.Generator
) -> List[LinkPair]:
    """Sample distinct non-anchor pairs uniformly from H \\ L+.

    Uses rejection sampling over the index grid, which stays cheap while
    ``n_negatives`` is far below |H| − |L+| (always true for the paper's
    θ ≤ 50 regime).
    """
    left_users = pair.left_users()
    right_users = pair.right_users()
    capacity = len(left_users) * len(right_users) - pair.anchor_count()
    if n_negatives > capacity:
        raise ExperimentError(
            f"cannot sample {n_negatives} negatives from {capacity} non-anchors"
        )
    chosen: Set[LinkPair] = set()
    result: List[LinkPair] = []
    while len(result) < n_negatives:
        block = max(256, n_negatives - len(result))
        lefts = rng.integers(0, len(left_users), size=block)
        rights = rng.integers(0, len(right_users), size=block)
        for li, ri in zip(lefts, rights):
            candidate = (left_users[li], right_users[ri])
            if candidate in chosen or pair.is_anchor(candidate):
                continue
            chosen.add(candidate)
            result.append(candidate)
            if len(result) == n_negatives:
                break
    return result


def assign_folds(
    n_items: int, n_folds: int, rng: np.random.Generator
) -> np.ndarray:
    """Random balanced fold assignment for ``n_items`` items."""
    if n_items < n_folds:
        raise ExperimentError(
            f"cannot split {n_items} items into {n_folds} folds"
        )
    folds = np.arange(n_items) % n_folds
    rng.shuffle(folds)
    return folds


def build_splits(
    pair: AlignedPair, config: ProtocolConfig
) -> Iterator[ExperimentSplit]:
    """Yield one :class:`ExperimentSplit` per fold rotation.

    Negative sampling and fold assignment happen once (shared across
    rotations), matching the paper's "take 10 folds in turns" setup.
    """
    rng = np.random.default_rng(config.seed)
    positives = sorted(pair.anchors, key=repr)
    if not positives:
        raise ExperimentError("the aligned pair has no anchors to learn from")
    negatives = sample_negatives(pair, config.np_ratio * len(positives), rng)

    candidates: Tuple[LinkPair, ...] = tuple(positives) + tuple(negatives)
    truth = np.zeros(len(candidates), dtype=np.int64)
    truth[: len(positives)] = 1

    positive_folds = assign_folds(len(positives), config.n_folds, rng)
    negative_folds = assign_folds(len(negatives), config.n_folds, rng)
    folds = np.concatenate([positive_folds, negative_folds])

    for fold in range(config.n_repeats):
        fold_mask = folds == fold
        train_pool = np.flatnonzero(fold_mask)
        test_indices = np.flatnonzero(~fold_mask)
        if config.sample_ratio < 1.0:
            # Subsample positives and negatives separately so γ preserves
            # the class ratio of the training fold.
            train_parts = []
            for label in (1, 0):
                pool = train_pool[truth[train_pool] == label]
                keep = max(1, int(round(config.sample_ratio * pool.size)))
                train_parts.append(
                    rng.choice(pool, size=min(keep, pool.size), replace=False)
                )
            train_indices = np.sort(np.concatenate(train_parts))
        else:
            train_indices = train_pool
        yield ExperimentSplit(
            candidates=candidates,
            truth=truth,
            train_indices=train_indices,
            test_indices=test_indices,
            fold=fold,
        )
