"""Parameter sweep runner with result persistence.

Tables III/IV and Figure 5 are sweeps of one protocol parameter.
:class:`SweepRunner` structures that pattern: declare the axis, run
every point (skipping points whose results already exist on disk), and
collect the outcomes for table rendering.  Interrupted sweeps resume
for free.

:func:`run_evolve_sweep` is the *drifting* variant: instead of sweeping
a protocol parameter over a frozen network, it sweeps the **network
itself** through a scripted schedule of
:class:`~repro.networks.aligned.NetworkDelta` events and re-evaluates
the full method lineup — streamed SVM included — after every event,
riding the evolve scenario's sparse-delta feature maintenance.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.eval.experiment import (
    EvolveOutcome,
    ExperimentOutcome,
    MethodSpec,
    run_evolve_scenario,
    run_experiment,
)
from repro.eval.persistence import load_outcome, save_outcome
from repro.eval.protocol import ProtocolConfig
from repro.exceptions import ExperimentError
from repro.networks.aligned import AlignedPair, NetworkDelta

#: Sweepable ProtocolConfig fields.
_AXES = ("np_ratio", "sample_ratio")


class SweepRunner:
    """Run one experiment per value of a protocol parameter.

    Parameters
    ----------
    pair:
        The aligned networks.
    base_config:
        Protocol configuration; the swept field is replaced per point.
    axis:
        ``"np_ratio"`` or ``"sample_ratio"``.
    methods:
        Method lineup (defaults handled by :func:`run_experiment`).
    cache_dir:
        When given, each point's outcome is persisted as
        ``<axis>=<value>.json`` there and reloaded on reruns.
    """

    def __init__(
        self,
        pair: AlignedPair,
        base_config: ProtocolConfig,
        axis: str,
        methods: Optional[Sequence[MethodSpec]] = None,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if axis not in _AXES:
            raise ExperimentError(
                f"unknown sweep axis {axis!r}; choose from {_AXES}"
            )
        self.pair = pair
        self.base_config = base_config
        self.axis = axis
        self.methods = methods
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.outcomes: Dict[object, ExperimentOutcome] = {}

    def _cache_path(self, value) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{self.axis}={value}.json"

    def run_point(self, value) -> ExperimentOutcome:
        """Run (or reload) one sweep point."""
        cache_path = self._cache_path(value)
        if cache_path is not None and cache_path.exists():
            outcome = load_outcome(cache_path)
        else:
            config = replace(self.base_config, **{self.axis: value})
            outcome = run_experiment(self.pair, config, self.methods)
            if cache_path is not None:
                cache_path.parent.mkdir(parents=True, exist_ok=True)
                save_outcome(outcome, cache_path)
        self.outcomes[value] = outcome
        return outcome

    def run(self, values: Sequence) -> Dict[object, ExperimentOutcome]:
        """Run every sweep point in order; returns value -> outcome."""
        for value in values:
            self.run_point(value)
        return dict(self.outcomes)

    def series(
        self, method: str, metric: str = "f1"
    ) -> List[tuple]:
        """(value, mean metric) series for plotting one method."""
        points = []
        for value, outcome in self.outcomes.items():
            points.append((value, outcome.method(method).mean(metric)))
        return sorted(points, key=lambda item: item[0])


def evolve_sweep_methods(budget: int = 20) -> List[MethodSpec]:
    """The drifting sweep's default lineup.

    One representative per family, including the streamed SVM path the
    model-backend seam opened: the PU iterative model, the dense SVM
    baseline, its streamed twin (labeled-row gathers + block scoring),
    and a budgeted active method.
    """
    return [
        MethodSpec(name="Iter-MPMD", kind="iterative"),
        MethodSpec(name="SVM-MPMD", kind="svm"),
        MethodSpec(name="SVM-MPMD-streamed", kind="svm", streamed=True),
        MethodSpec(name=f"ActiveIter-{budget}", kind="active", budget=budget),
    ]


def run_evolve_sweep(
    make_pair: Callable[[], AlignedPair],
    config: ProtocolConfig,
    schedule: Sequence[NetworkDelta],
    methods: Optional[Sequence[MethodSpec]] = None,
    seed: int = 0,
    session_options=None,
) -> EvolveOutcome:
    """Re-evaluate a method lineup at every scheduled network delta.

    A thin sweep front-end over :func:`~repro.eval.experiment.run_evolve_scenario`
    with per-event evaluation switched on: the outcome carries one
    :class:`~repro.eval.experiment.EvolvePhase` per event (plus the
    initial and final phases), so the per-method metric trajectory
    across the drift can be tabulated like any other sweep axis.  The
    delta-vs-recount exactness race of the underlying scenario is
    preserved — the sweep adds evaluation points, never changing the
    drift it measures.
    """
    if methods is None:
        methods = evolve_sweep_methods()
    return run_evolve_scenario(
        make_pair,
        config,
        schedule,
        methods=methods,
        seed=seed,
        evaluate_every_event=True,
        session_options=session_options,
    )


def evolve_series(
    outcome: EvolveOutcome, method: str, metric: str = "f1"
) -> List[tuple]:
    """(phase name, metric) trajectory of one method across the drift."""
    points = []
    for phase in outcome.phases:
        report = phase.reports.get(method)
        if report is not None:
            points.append((phase.name, report.as_dict()[metric]))
    return points
