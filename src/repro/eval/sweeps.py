"""Parameter sweep runner with result persistence.

Tables III/IV and Figure 5 are sweeps of one protocol parameter.
:class:`SweepRunner` structures that pattern: declare the axis, run
every point (skipping points whose results already exist on disk), and
collect the outcomes for table rendering.  Interrupted sweeps resume
for free.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.eval.experiment import (
    ExperimentOutcome,
    MethodSpec,
    run_experiment,
)
from repro.eval.persistence import load_outcome, save_outcome
from repro.eval.protocol import ProtocolConfig
from repro.exceptions import ExperimentError
from repro.networks.aligned import AlignedPair

#: Sweepable ProtocolConfig fields.
_AXES = ("np_ratio", "sample_ratio")


class SweepRunner:
    """Run one experiment per value of a protocol parameter.

    Parameters
    ----------
    pair:
        The aligned networks.
    base_config:
        Protocol configuration; the swept field is replaced per point.
    axis:
        ``"np_ratio"`` or ``"sample_ratio"``.
    methods:
        Method lineup (defaults handled by :func:`run_experiment`).
    cache_dir:
        When given, each point's outcome is persisted as
        ``<axis>=<value>.json`` there and reloaded on reruns.
    """

    def __init__(
        self,
        pair: AlignedPair,
        base_config: ProtocolConfig,
        axis: str,
        methods: Optional[Sequence[MethodSpec]] = None,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if axis not in _AXES:
            raise ExperimentError(
                f"unknown sweep axis {axis!r}; choose from {_AXES}"
            )
        self.pair = pair
        self.base_config = base_config
        self.axis = axis
        self.methods = methods
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.outcomes: Dict[object, ExperimentOutcome] = {}

    def _cache_path(self, value) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{self.axis}={value}.json"

    def run_point(self, value) -> ExperimentOutcome:
        """Run (or reload) one sweep point."""
        cache_path = self._cache_path(value)
        if cache_path is not None and cache_path.exists():
            outcome = load_outcome(cache_path)
        else:
            config = replace(self.base_config, **{self.axis: value})
            outcome = run_experiment(self.pair, config, self.methods)
            if cache_path is not None:
                cache_path.parent.mkdir(parents=True, exist_ok=True)
                save_outcome(outcome, cache_path)
        self.outcomes[value] = outcome
        return outcome

    def run(self, values: Sequence) -> Dict[object, ExperimentOutcome]:
        """Run every sweep point in order; returns value -> outcome."""
        for value in values:
            self.run_point(value)
        return dict(self.outcomes)

    def series(
        self, method: str, metric: str = "f1"
    ) -> List[tuple]:
        """(value, mean metric) series for plotting one method."""
        points = []
        for value, outcome in self.outcomes.items():
            points.append((value, outcome.method(method).mean(metric)))
        return sorted(points, key=lambda item: item[0])
