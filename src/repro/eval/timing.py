"""Scalability analysis harness (Figure 4).

Measures end-to-end ActiveIter fit time while the NP-ratio θ (and with
it the candidate count |H| = (1 + θ)·|L+|) grows.  The paper's claim is
*near-linear* growth; :func:`fit_linear_trend` quantifies it with a
least-squares line and its R².
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.active.oracle import LabelOracle
from repro.core.activeiter import ActiveIter
from repro.core.base import AlignmentTask
from repro.engine.session import AlignmentSession, SessionStats
from repro.eval.protocol import ProtocolConfig, build_splits
from repro.meta.features import FeatureExtractor
from repro.networks.aligned import AlignedPair


@dataclass(frozen=True)
class TimingPoint:
    """Wall-clock measurement at one NP-ratio."""

    np_ratio: int
    n_candidates: int
    seconds: float


def scalability_study(
    pair: AlignedPair,
    np_ratios: Sequence[int] = (5, 10, 20, 30, 40, 50),
    budget: int = 50,
    sample_ratio: float = 1.0,
    seed: int = 13,
) -> List[TimingPoint]:
    """Time one ActiveIter fit per NP-ratio (features pre-extracted).

    Feature extraction cost is excluded: the paper's complexity analysis
    (§III-E) concerns the learning loop, and extraction is a fixed
    preprocessing stage shared by every method.
    """
    points: List[TimingPoint] = []
    for np_ratio in np_ratios:
        config = ProtocolConfig(
            np_ratio=np_ratio,
            sample_ratio=sample_ratio,
            n_repeats=1,
            seed=seed,
        )
        split = next(iter(build_splits(pair, config)))
        extractor = FeatureExtractor(
            pair, known_anchors=split.train_positive_pairs
        )
        task = AlignmentTask(
            pairs=list(split.candidates),
            X=extractor.extract(list(split.candidates)),
            labeled_indices=split.train_indices,
            labeled_values=split.truth[split.train_indices],
        )
        positives = {
            split.candidates[i]
            for i in range(len(split.candidates))
            if split.truth[i] == 1
        }
        model = ActiveIter(LabelOracle(positives, budget=budget))
        started = time.perf_counter()
        model.fit(task)
        elapsed = time.perf_counter() - started
        points.append(
            TimingPoint(
                np_ratio=np_ratio,
                n_candidates=len(split.candidates),
                seconds=elapsed,
            )
        )
    return points


@dataclass(frozen=True)
class IncrementalComparison:
    """Result of racing the incremental session against full recompute.

    Attributes
    ----------
    full_seconds, incremental_seconds:
        Wall-clock fit time of the two feature-refresh paths.
    n_rounds:
        Query rounds executed (identical for both paths).
    identical_labels:
        Whether the two paths produced byte-identical label vectors —
        the delta update's exactness guarantee, asserted downstream.
    full_stats, incremental_stats:
        The sessions' work counters.
    """

    full_seconds: float
    incremental_seconds: float
    n_rounds: int
    identical_labels: bool
    full_stats: SessionStats
    incremental_stats: SessionStats

    @property
    def speedup(self) -> float:
        """Full-recompute time over incremental time."""
        if self.incremental_seconds <= 0:
            return float("inf")
        return self.full_seconds / self.incremental_seconds


def compare_incremental_paths(
    pair: AlignedPair,
    np_ratio: int = 20,
    sample_ratio: float = 1.0,
    budget: int = 30,
    batch_size: int = 2,
    seed: int = 13,
) -> IncrementalComparison:
    """Race ActiveIter-with-refresh on delta vs full-recompute sessions.

    Both runs share one split, the same oracle budget and the same
    query strategy; the only difference is the session's ``incremental``
    flag.  Because the delta update is bit-exact, every round's scores —
    and therefore the queried links and the final labels — must agree
    byte for byte; :attr:`IncrementalComparison.identical_labels`
    records that check for callers to assert on.
    """
    config = ProtocolConfig(
        np_ratio=np_ratio, sample_ratio=sample_ratio, n_repeats=1, seed=seed
    )
    split = next(iter(build_splits(pair, config)))
    positives = {
        split.candidates[i]
        for i in range(len(split.candidates))
        if split.truth[i] == 1
    }

    def run(incremental: bool):
        session = AlignmentSession(
            pair,
            known_anchors=split.train_positive_pairs,
            incremental=incremental,
        )
        candidates = list(split.candidates)  # shared with the session view
        task = AlignmentTask(
            pairs=candidates,
            X=session.extract(candidates),
            labeled_indices=split.train_indices,
            labeled_values=split.truth[split.train_indices],
        )
        model = ActiveIter(
            LabelOracle(positives, budget=budget),
            batch_size=batch_size,
            session=session,
            refresh_features=True,
        )
        started = time.perf_counter()
        model.fit(task)
        elapsed = time.perf_counter() - started
        return model, session, elapsed

    full_model, full_session, full_seconds = run(incremental=False)
    incr_model, incr_session, incr_seconds = run(incremental=True)
    return IncrementalComparison(
        full_seconds=full_seconds,
        incremental_seconds=incr_seconds,
        n_rounds=incr_model.result_.n_rounds,
        identical_labels=bool(
            np.array_equal(full_model.labels_, incr_model.labels_)
            and full_model.queried_ == incr_model.queried_
        ),
        full_stats=full_session.stats,
        incremental_stats=incr_session.stats,
    )


def format_incremental_comparison(comparison: IncrementalComparison) -> str:
    """Plain-text rendering of the incremental-vs-full race."""
    lines = [
        "Incremental session vs full recompute (ActiveIter with feature refresh)",
        f"{'path':<14}{'seconds':>10}  session stats",
        (
            f"{'full':<14}{comparison.full_seconds:>10.4f}  "
            f"{comparison.full_stats.summary()}"
        ),
        (
            f"{'incremental':<14}{comparison.incremental_seconds:>10.4f}  "
            f"{comparison.incremental_stats.summary()}"
        ),
        (
            f"speedup: {comparison.speedup:.2f}x over {comparison.n_rounds} "
            f"query rounds; labels identical: {comparison.identical_labels}"
        ),
    ]
    return "\n".join(lines)


def fit_linear_trend(points: Sequence[TimingPoint]) -> Tuple[float, float, float]:
    """Least-squares ``seconds ~ a * n_candidates + b`` with R².

    Returns ``(slope, intercept, r_squared)``; an R² near 1 supports the
    paper's near-linear scalability claim.
    """
    x = np.array([p.n_candidates for p in points], dtype=np.float64)
    y = np.array([p.seconds for p in points], dtype=np.float64)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    total = float(((y - y.mean()) ** 2).sum())
    residual = float(((y - predicted) ** 2).sum())
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return float(slope), float(intercept), r_squared


def format_timing(points: Sequence[TimingPoint]) -> str:
    """Plain-text rendering of Figure 4."""
    lines = ["Scalability analysis (ActiveIter fit time)"]
    lines.append(f"{'NP-ratio':>8}  {'|H|':>8}  {'seconds':>9}")
    for point in points:
        lines.append(
            f"{point.np_ratio:>8}  {point.n_candidates:>8}  {point.seconds:>9.4f}"
        )
    slope, intercept, r_squared = fit_linear_trend(points)
    lines.append(
        f"linear fit: {slope:.3e} s/link + {intercept:.3e}s  (R^2={r_squared:.3f})"
    )
    return "\n".join(lines)
