"""Scalability analysis harness (Figure 4).

Measures end-to-end ActiveIter fit time while the NP-ratio θ (and with
it the candidate count |H| = (1 + θ)·|L+|) grows.  The paper's claim is
*near-linear* growth; :func:`fit_linear_trend` quantifies it with a
least-squares line and its R².
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.active.oracle import LabelOracle
from repro.core.activeiter import ActiveIter
from repro.core.base import AlignmentTask
from repro.eval.protocol import ProtocolConfig, build_splits
from repro.meta.features import FeatureExtractor
from repro.networks.aligned import AlignedPair


@dataclass(frozen=True)
class TimingPoint:
    """Wall-clock measurement at one NP-ratio."""

    np_ratio: int
    n_candidates: int
    seconds: float


def scalability_study(
    pair: AlignedPair,
    np_ratios: Sequence[int] = (5, 10, 20, 30, 40, 50),
    budget: int = 50,
    sample_ratio: float = 1.0,
    seed: int = 13,
) -> List[TimingPoint]:
    """Time one ActiveIter fit per NP-ratio (features pre-extracted).

    Feature extraction cost is excluded: the paper's complexity analysis
    (§III-E) concerns the learning loop, and extraction is a fixed
    preprocessing stage shared by every method.
    """
    points: List[TimingPoint] = []
    for np_ratio in np_ratios:
        config = ProtocolConfig(
            np_ratio=np_ratio,
            sample_ratio=sample_ratio,
            n_repeats=1,
            seed=seed,
        )
        split = next(iter(build_splits(pair, config)))
        extractor = FeatureExtractor(
            pair, known_anchors=split.train_positive_pairs
        )
        task = AlignmentTask(
            pairs=list(split.candidates),
            X=extractor.extract(list(split.candidates)),
            labeled_indices=split.train_indices,
            labeled_values=split.truth[split.train_indices],
        )
        positives = {
            split.candidates[i]
            for i in range(len(split.candidates))
            if split.truth[i] == 1
        }
        model = ActiveIter(LabelOracle(positives, budget=budget))
        started = time.perf_counter()
        model.fit(task)
        elapsed = time.perf_counter() - started
        points.append(
            TimingPoint(
                np_ratio=np_ratio,
                n_candidates=len(split.candidates),
                seconds=elapsed,
            )
        )
    return points


def fit_linear_trend(points: Sequence[TimingPoint]) -> Tuple[float, float, float]:
    """Least-squares ``seconds ~ a * n_candidates + b`` with R².

    Returns ``(slope, intercept, r_squared)``; an R² near 1 supports the
    paper's near-linear scalability claim.
    """
    x = np.array([p.n_candidates for p in points], dtype=np.float64)
    y = np.array([p.seconds for p in points], dtype=np.float64)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    total = float(((y - y.mean()) ** 2).sum())
    residual = float(((y - predicted) ** 2).sum())
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return float(slope), float(intercept), r_squared


def format_timing(points: Sequence[TimingPoint]) -> str:
    """Plain-text rendering of Figure 4."""
    lines = ["Scalability analysis (ActiveIter fit time)"]
    lines.append(f"{'NP-ratio':>8}  {'|H|':>8}  {'seconds':>9}")
    for point in points:
        lines.append(
            f"{point.np_ratio:>8}  {point.n_candidates:>8}  {point.seconds:>9.4f}"
        )
    slope, intercept, r_squared = fit_linear_trend(points)
    lines.append(
        f"linear fit: {slope:.3e} s/link + {intercept:.3e}s  (R^2={r_squared:.3f})"
    )
    return "\n".join(lines)
