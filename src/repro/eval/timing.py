"""Scalability analysis harness (Figure 4).

Measures end-to-end ActiveIter fit time while the NP-ratio θ (and with
it the candidate count |H| = (1 + θ)·|L+|) grows.  The paper's claim is
*near-linear* growth; :func:`fit_linear_trend` quantifies it with a
least-squares line and its R².
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.active.oracle import LabelOracle
from repro.core.activeiter import ActiveIter
from repro.core.base import AlignmentTask
from repro.engine.candidates import (
    CandidateGenerator,
    linear_scorer,
    streamed_selection,
)
from repro.engine.session import AlignmentSession, SessionStats
from repro.engine.streaming import StreamedAlignmentTask, blockify
from repro.eval.protocol import ProtocolConfig, build_splits
from repro.meta.diagrams import standard_diagram_family
from repro.meta.features import FeatureExtractor
from repro.networks.aligned import AlignedPair


@dataclass(frozen=True)
class TimingPoint:
    """Wall-clock measurement at one NP-ratio."""

    np_ratio: int
    n_candidates: int
    seconds: float


def scalability_study(
    pair: AlignedPair,
    np_ratios: Sequence[int] = (5, 10, 20, 30, 40, 50),
    budget: int = 50,
    sample_ratio: float = 1.0,
    seed: int = 13,
) -> List[TimingPoint]:
    """Time one ActiveIter fit per NP-ratio (features pre-extracted).

    Feature extraction cost is excluded: the paper's complexity analysis
    (§III-E) concerns the learning loop, and extraction is a fixed
    preprocessing stage shared by every method.
    """
    points: List[TimingPoint] = []
    for np_ratio in np_ratios:
        config = ProtocolConfig(
            np_ratio=np_ratio,
            sample_ratio=sample_ratio,
            n_repeats=1,
            seed=seed,
        )
        split = next(iter(build_splits(pair, config)))
        extractor = FeatureExtractor(
            pair, known_anchors=split.train_positive_pairs
        )
        task = AlignmentTask(
            pairs=list(split.candidates),
            X=extractor.extract(list(split.candidates)),
            labeled_indices=split.train_indices,
            labeled_values=split.truth[split.train_indices],
        )
        positives = {
            split.candidates[i]
            for i in range(len(split.candidates))
            if split.truth[i] == 1
        }
        model = ActiveIter(LabelOracle(positives, budget=budget))
        started = time.perf_counter()
        model.fit(task)
        elapsed = time.perf_counter() - started
        points.append(
            TimingPoint(
                np_ratio=np_ratio,
                n_candidates=len(split.candidates),
                seconds=elapsed,
            )
        )
    return points


@dataclass(frozen=True)
class IncrementalComparison:
    """Result of racing the incremental session against full recompute.

    Attributes
    ----------
    full_seconds, incremental_seconds:
        Wall-clock fit time of the two feature-refresh paths.
    n_rounds:
        Query rounds executed (identical for both paths).
    identical_labels:
        Whether the two paths produced byte-identical label vectors —
        the delta update's exactness guarantee, asserted downstream.
    full_stats, incremental_stats:
        The sessions' work counters.
    """

    full_seconds: float
    incremental_seconds: float
    n_rounds: int
    identical_labels: bool
    full_stats: SessionStats
    incremental_stats: SessionStats

    @property
    def speedup(self) -> float:
        """Full-recompute time over incremental time."""
        if self.incremental_seconds <= 0:
            return float("inf")
        return self.full_seconds / self.incremental_seconds


def compare_incremental_paths(
    pair: AlignedPair,
    np_ratio: int = 20,
    sample_ratio: float = 1.0,
    budget: int = 30,
    batch_size: int = 2,
    seed: int = 13,
) -> IncrementalComparison:
    """Race ActiveIter-with-refresh on delta vs full-recompute sessions.

    Both runs share one split, the same oracle budget and the same
    query strategy; the only difference is the session's ``incremental``
    flag.  Because the delta update is bit-exact, every round's scores —
    and therefore the queried links and the final labels — must agree
    byte for byte; :attr:`IncrementalComparison.identical_labels`
    records that check for callers to assert on.
    """
    config = ProtocolConfig(
        np_ratio=np_ratio, sample_ratio=sample_ratio, n_repeats=1, seed=seed
    )
    split = next(iter(build_splits(pair, config)))
    positives = {
        split.candidates[i]
        for i in range(len(split.candidates))
        if split.truth[i] == 1
    }

    def run(incremental: bool):
        session = AlignmentSession(
            pair,
            known_anchors=split.train_positive_pairs,
            incremental=incremental,
        )
        candidates = list(split.candidates)  # shared with the session view
        task = AlignmentTask(
            pairs=candidates,
            X=session.extract(candidates),
            labeled_indices=split.train_indices,
            labeled_values=split.truth[split.train_indices],
        )
        model = ActiveIter(
            LabelOracle(positives, budget=budget),
            batch_size=batch_size,
            session=session,
            refresh_features=True,
        )
        started = time.perf_counter()
        model.fit(task)
        elapsed = time.perf_counter() - started
        return model, session, elapsed

    full_model, full_session, full_seconds = run(incremental=False)
    incr_model, incr_session, incr_seconds = run(incremental=True)
    return IncrementalComparison(
        full_seconds=full_seconds,
        incremental_seconds=incr_seconds,
        n_rounds=incr_model.result_.n_rounds,
        identical_labels=bool(
            np.array_equal(full_model.labels_, incr_model.labels_)
            and full_model.queried_ == incr_model.queried_
        ),
        full_stats=full_session.stats,
        incremental_stats=incr_session.stats,
    )


def format_incremental_comparison(comparison: IncrementalComparison) -> str:
    """Plain-text rendering of the incremental-vs-full race."""
    lines = [
        "Incremental session vs full recompute (ActiveIter with feature refresh)",
        f"{'path':<14}{'seconds':>10}  session stats",
        (
            f"{'full':<14}{comparison.full_seconds:>10.4f}  "
            f"{comparison.full_stats.summary()}"
        ),
        (
            f"{'incremental':<14}{comparison.incremental_seconds:>10.4f}  "
            f"{comparison.incremental_stats.summary()}"
        ),
        (
            f"speedup: {comparison.speedup:.2f}x over {comparison.n_rounds} "
            f"query rounds; labels identical: {comparison.identical_labels}"
        ),
    ]
    return "\n".join(lines)


@dataclass(frozen=True)
class ParallelComparison:
    """Result of racing the threaded execution layer against serial.

    Attributes
    ----------
    workers:
        Thread-pool size of the threaded run.
    serial_seconds, threaded_seconds:
        Wall-clock time of the two runs over identical work: a full
        extraction, ``n_rounds`` delta anchor updates with in-place
        feature refresh, and one block-scored streamed selection.
    n_rounds:
        Anchor-update rounds executed (identical for both runs).
    identical_features:
        Whether the two runs produced byte-identical feature matrices.
    identical_selection:
        Whether the block-scored streamed selections matched exactly.
    serial_stats, threaded_stats:
        The sessions' work counters.
    """

    workers: int
    serial_seconds: float
    threaded_seconds: float
    n_rounds: int
    identical_features: bool
    identical_selection: bool
    serial_stats: SessionStats
    threaded_stats: SessionStats

    @property
    def speedup(self) -> float:
        """Serial time over threaded time."""
        if self.threaded_seconds <= 0:
            return float("inf")
        return self.serial_seconds / self.threaded_seconds

    @property
    def identical(self) -> bool:
        """Whether every compared output was byte-identical."""
        return self.identical_features and self.identical_selection


def _anchor_round_workload(
    pair: AlignedPair,
    np_ratio: int,
    sample_ratio: float,
    rounds: int,
    batch_size: int,
    seed: int,
):
    """Shared setup of the engine-race workload.

    Both :func:`compare_parallel_paths` and :func:`compare_store_paths`
    claim to run *the identical engine workload* under different
    execution configurations; building it in one place keeps that claim
    true by construction.  Returns ``(split, known, arrivals, weights)``
    — the split, the initially known anchors (half the split's
    positives, deterministically ordered), the batched anchor arrivals
    of the later rounds, and a fixed random scoring weight vector.
    """
    config = ProtocolConfig(
        np_ratio=np_ratio, sample_ratio=sample_ratio, n_repeats=1, seed=seed
    )
    split = next(iter(build_splits(pair, config)))
    positives = sorted(
        (
            split.candidates[i]
            for i in range(len(split.candidates))
            if split.truth[i] == 1
        ),
        key=repr,
    )
    start_known = max(1, len(positives) // 2)
    known = positives[:start_known]
    queue = positives[start_known:]
    arrivals = [
        queue[r * batch_size: (r + 1) * batch_size] for r in range(rounds)
    ]
    arrivals = [arrival for arrival in arrivals if arrival]
    n_features = len(standard_diagram_family().feature_names) + 1  # + bias
    weights = np.random.default_rng(seed).normal(scale=0.5, size=n_features)
    return split, known, arrivals, weights


def compare_parallel_paths(
    pair: AlignedPair,
    workers: int = 4,
    np_ratio: int = 20,
    sample_ratio: float = 1.0,
    rounds: int = 6,
    batch_size: int = 3,
    block_size: int = 1024,
    seed: int = 13,
) -> ParallelComparison:
    """Race a ``workers``-threaded session against a serial one.

    Both runs execute the identical engine workload — initial feature
    extraction over the split's candidates, ``rounds`` batched anchor
    arrivals with delta updates and in-place refresh, then one
    block-scored streamed selection over the support-pruned candidate
    space.  The executor only changes scheduling, so the comparison
    asserts byte-identical features and selections alongside the
    wall-clock ratio.
    """
    split, known, arrivals, weights = _anchor_round_workload(
        pair, np_ratio, sample_ratio, rounds, batch_size, seed
    )

    def run(worker_count: int):
        # The context manager releases the thread pool the session
        # builds for worker_count > 1, even if the race raises.
        with AlignmentSession(
            pair, known_anchors=known, workers=worker_count
        ) as session:
            candidates = list(split.candidates)
            started = time.perf_counter()
            X = session.extract(candidates)
            current = list(known)
            for arrival in arrivals:
                current += arrival
                session.set_anchors(current)
                session.refresh_features(X, candidates)
            generator = CandidateGenerator.from_support(
                session, block_size=block_size
            )
            selected = streamed_selection(
                generator,
                linear_scorer(session, weights),
                threshold=0.5,
                workers=session.executor,
            )
            elapsed = time.perf_counter() - started
            return X, selected, session.stats, elapsed

    X_serial, sel_serial, stats_serial, serial_seconds = run(1)
    X_threaded, sel_threaded, stats_threaded, threaded_seconds = run(workers)
    return ParallelComparison(
        workers=workers,
        serial_seconds=serial_seconds,
        threaded_seconds=threaded_seconds,
        n_rounds=len(arrivals),
        identical_features=bool(np.array_equal(X_serial, X_threaded)),
        identical_selection=sel_serial == sel_threaded,
        serial_stats=stats_serial,
        threaded_stats=stats_threaded,
    )


def format_parallel_comparison(comparison: ParallelComparison) -> str:
    """Plain-text rendering of the threaded-vs-serial race."""
    lines = [
        (
            "Parallel execution layer vs serial "
            f"(workers={comparison.workers}, "
            f"{comparison.n_rounds} anchor rounds)"
        ),
        f"{'path':<14}{'seconds':>10}  session stats",
        (
            f"{'serial':<14}{comparison.serial_seconds:>10.4f}  "
            f"{comparison.serial_stats.summary()}"
        ),
        (
            f"{'threaded':<14}{comparison.threaded_seconds:>10.4f}  "
            f"{comparison.threaded_stats.summary()}"
        ),
        (
            f"speedup: {comparison.speedup:.2f}x; "
            f"features identical: {comparison.identical_features}; "
            f"selection identical: {comparison.identical_selection}"
        ),
    ]
    return "\n".join(lines)


@dataclass(frozen=True)
class StoreComparison:
    """Disk-backed store (+ chosen executor) vs the in-memory baseline.

    Both runs execute the identical engine workload; the store run
    spills every count matrix (and memoized product) to ``store_dir``
    and serves it memory-mapped.  ``identical_features`` /
    ``identical_selection`` record the subsystem's exactness guarantee.
    """

    executor: str
    workers: int
    memory_seconds: float
    store_seconds: float
    n_rounds: int
    identical_features: bool
    identical_selection: bool
    store_dir: str
    store_entries: int
    store_bytes: int

    @property
    def identical(self) -> bool:
        """Whether every compared output was byte-identical."""
        return self.identical_features and self.identical_selection


def compare_store_paths(
    pair: AlignedPair,
    store_dir,
    executor: str = "serial",
    workers: int = 1,
    np_ratio: int = 20,
    sample_ratio: float = 1.0,
    rounds: int = 4,
    batch_size: int = 3,
    block_size: int = 1024,
    seed: int = 13,
    addresses=None,
) -> StoreComparison:
    """Race a store-backed session against the in-memory baseline.

    The workload mirrors :func:`compare_parallel_paths` — extraction,
    batched anchor arrivals with in-place refresh, one streamed
    selection over the support-pruned candidate space — but the second
    run spills to ``store_dir`` and executes on
    ``make_executor(executor, workers, addresses)``; with
    ``executor="process"`` block scoring crosses process boundaries
    through the shared arena, and with ``executor="rpc"`` it fans out
    to the remote workers at ``addresses`` over the content-addressed
    arena transport.
    """
    from repro.engine.parallel import make_executor

    split, known, arrivals, weights = _anchor_round_workload(
        pair, np_ratio, sample_ratio, rounds, batch_size, seed
    )

    def run(store, executor_spec):
        with AlignmentSession(
            pair, known_anchors=known, workers=executor_spec, store=store
        ) as session:
            candidates = list(split.candidates)
            started = time.perf_counter()
            X = session.extract(candidates)
            current = list(known)
            for arrival in arrivals:
                current += arrival
                session.set_anchors(current)
                session.refresh_features(X, candidates)
            generator = CandidateGenerator.from_support(
                session, block_size=block_size
            )
            if session.arena is not None and session.executor.crosses_processes:
                from repro.store.procwork import ArenaLinearScorer

                score_fn = ArenaLinearScorer(
                    spec=session.flush_store(), weights=weights
                )
            else:
                score_fn = linear_scorer(session, weights)
            selected = streamed_selection(
                generator,
                score_fn,
                threshold=0.5,
                workers=session.executor,
            )
            elapsed = time.perf_counter() - started
            entries = (
                len(session.arena.keys()) if session.arena is not None else 0
            )
            size = session.arena.nbytes() if session.arena is not None else 0
            return X, selected, elapsed, entries, size

    X_memory, sel_memory, memory_seconds, _, _ = run(None, None)
    with make_executor(executor, workers, addresses) as store_executor:
        X_store, sel_store, store_seconds, entries, size = run(
            store_dir, store_executor
        )
    return StoreComparison(
        executor=executor,
        workers=workers,
        memory_seconds=memory_seconds,
        store_seconds=store_seconds,
        n_rounds=len(arrivals),
        identical_features=bool(np.array_equal(X_memory, X_store)),
        identical_selection=sel_memory == sel_store,
        store_dir=str(store_dir),
        store_entries=entries,
        store_bytes=size,
    )


def format_store_comparison(comparison: StoreComparison) -> str:
    """Plain-text rendering of the store-vs-memory race."""
    lines = [
        (
            "Disk-backed matrix store vs in-memory baseline "
            f"(executor={comparison.executor}, workers={comparison.workers}, "
            f"{comparison.n_rounds} anchor rounds)"
        ),
        f"{'path':<14}{'seconds':>10}",
        f"{'in-memory':<14}{comparison.memory_seconds:>10.4f}",
        (
            f"{'store':<14}{comparison.store_seconds:>10.4f}  "
            f"({comparison.store_entries} entries, "
            f"{comparison.store_bytes / 1024:.0f} KiB on disk)"
        ),
        (
            f"features identical: {comparison.identical_features}; "
            f"selection identical: {comparison.identical_selection}"
        ),
    ]
    return "\n".join(lines)


@dataclass(frozen=True)
class StreamedFitComparison:
    """Streamed active fit vs materialized active fit on one split.

    ``identical_queries`` / ``identical_labels`` record the exactness
    guarantee of the streaming refactor: the block-wise strategies must
    buy the same labels and converge to the same assignment.
    """

    n_candidates: int
    n_blocks: int
    materialized_seconds: float
    streamed_seconds: float
    identical_queries: bool
    identical_labels: bool


def compare_streamed_fit(
    pair: AlignedPair,
    np_ratio: int = 5,
    budget: int = 10,
    batch_size: int = 2,
    block_size: int = 256,
    seed: int = 13,
    model: str = "ridge",
    feature_map=None,
    unlabeled_C: float = 0.1,
) -> StreamedFitComparison:
    """Race ActiveIter on a streamed task against the materialized task.

    Both fits share one split and identical strategies; the streamed
    run never allocates the |H| x d matrix.  ``model``/``feature_map``
    select the model backend (see :mod:`repro.ml.backends`) — both runs
    ride the same backend configuration, so the race also demonstrates
    streamed-vs-materialized agreement for SVM and kernelized fits.
    """
    from repro.ml.backends import make_backend

    config = ProtocolConfig(
        np_ratio=np_ratio, sample_ratio=1.0, n_repeats=1, seed=seed
    )
    split = next(iter(build_splits(pair, config)))
    positives = {
        split.candidates[i]
        for i in range(len(split.candidates))
        if split.truth[i] == 1
    }

    def run(streamed: bool):
        session = AlignmentSession(pair, known_anchors=split.train_positive_pairs)
        candidates = list(split.candidates)
        backend = None
        if model != "ridge" or feature_map is not None:
            backend = make_backend(
                model,
                seed=seed,
                feature_map=feature_map,
                unlabeled_C=unlabeled_C,
            )
        model_ = ActiveIter(
            LabelOracle(positives, budget=budget),
            batch_size=batch_size,
            backend=backend,
            positive_threshold=0.0 if model.startswith("svm") else 0.5,
        )
        if streamed:
            task = StreamedAlignmentTask(
                session,
                blockify(candidates, block_size),
                split.train_indices,
                split.truth[split.train_indices],
            )
        else:
            task = AlignmentTask(
                pairs=candidates,
                X=session.extract(candidates),
                labeled_indices=split.train_indices,
                labeled_values=split.truth[split.train_indices],
            )
        started = time.perf_counter()
        model_.fit(task)
        elapsed = time.perf_counter() - started
        return model_, task, elapsed

    materialized, _, materialized_seconds = run(streamed=False)
    streamed, streamed_task, streamed_seconds = run(streamed=True)
    return StreamedFitComparison(
        n_candidates=streamed_task.n_candidates,
        n_blocks=streamed_task.n_blocks,
        materialized_seconds=materialized_seconds,
        streamed_seconds=streamed_seconds,
        identical_queries=materialized.queried_ == streamed.queried_,
        identical_labels=bool(
            np.array_equal(materialized.labels_, streamed.labels_)
        ),
    )


def format_streamed_fit(comparison: StreamedFitComparison) -> str:
    """Plain-text rendering of the streamed-vs-materialized fit race."""
    return "\n".join(
        [
            (
                "Streamed active fit vs materialized task "
                f"(|H|={comparison.n_candidates}, "
                f"{comparison.n_blocks} blocks)"
            ),
            (
                f"  materialized {comparison.materialized_seconds:.4f}s  "
                f"streamed {comparison.streamed_seconds:.4f}s"
            ),
            (
                f"  queried links identical: {comparison.identical_queries}; "
                f"labels identical: {comparison.identical_labels}"
            ),
        ]
    )


def fit_linear_trend(points: Sequence[TimingPoint]) -> Tuple[float, float, float]:
    """Least-squares ``seconds ~ a * n_candidates + b`` with R².

    Returns ``(slope, intercept, r_squared)``; an R² near 1 supports the
    paper's near-linear scalability claim.
    """
    x = np.array([p.n_candidates for p in points], dtype=np.float64)
    y = np.array([p.seconds for p in points], dtype=np.float64)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    total = float(((y - y.mean()) ** 2).sum())
    residual = float(((y - predicted) ** 2).sum())
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return float(slope), float(intercept), r_squared


def format_timing(points: Sequence[TimingPoint]) -> str:
    """Plain-text rendering of Figure 4."""
    lines = ["Scalability analysis (ActiveIter fit time)"]
    lines.append(f"{'NP-ratio':>8}  {'|H|':>8}  {'seconds':>9}")
    for point in points:
        lines.append(
            f"{point.np_ratio:>8}  {point.n_candidates:>8}  {point.seconds:>9.4f}"
        )
    slope, intercept, r_squared = fit_linear_trend(points)
    lines.append(
        f"linear fit: {slope:.3e} s/link + {intercept:.3e}s  (R^2={r_squared:.3f})"
    )
    return "\n".join(lines)
