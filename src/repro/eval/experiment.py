"""Experiment runner: the paper's method lineup over protocol splits.

Runs any subset of {ActiveIter-b, ActiveIter-Rand-b, Iter-MPMD,
SVM-MPMD, SVM-MP} on the splits produced by
:mod:`repro.eval.protocol`, computing the four paper metrics on the
test set (with queried links removed for active methods) and
aggregating mean ± std across fold rotations.

Feature economy: one :class:`~repro.engine.session.AlignmentSession`
is shared across *all* fold rotations — attribute-only structures are
counted exactly once per experiment, and each rotation only re-anchors
the session.  Within a split the full-family feature matrix is
extracted once; the meta-path-only matrix of SVM-MP is a *column
subset* of it, so adding SVM-MP costs no extra counting.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.active.oracle import LabelOracle
from repro.active.strategies import (
    ConflictFalseNegativeStrategy,
    MarginQueryStrategy,
    RandomQueryStrategy,
)
from repro.core.activeiter import ActiveIter
from repro.core.base import AlignmentModel, AlignmentTask
from repro.core.itermpmd import IterMPMD
from repro.core.svm_baselines import SVMAligner
from repro.engine.session import AlignmentSession, SessionStats
from repro.engine.streaming import AUTO_BLOCK_SIZE, StreamedAlignmentTask
from repro.exceptions import ExperimentError
from repro.eval.protocol import ExperimentSplit, ProtocolConfig, build_splits
from repro.meta.diagrams import standard_diagram_family
from repro.ml.backends import BACKEND_NAMES, make_backend
from repro.ml.kernels import FEATURE_MAP_NAMES
from repro.ml.metrics import ClassificationReport, classification_report
from repro.networks.aligned import AlignedPair, NetworkDelta

logger = logging.getLogger(__name__)

#: Query strategies addressable from a MethodSpec.
_STRATEGIES = {
    "conflict": ConflictFalseNegativeStrategy,
    "random": RandomQueryStrategy,
    "margin": MarginQueryStrategy,
}


@dataclass(frozen=True)
class MethodSpec:
    """Declarative description of one comparison method.

    Attributes
    ----------
    name:
        Display name (also the result key).
    kind:
        ``"active"`` (ActiveIter family), ``"iterative"`` (Iter-MPMD) or
        ``"svm"``.
    features:
        ``"full"`` for paths + meta diagrams (MPMD), ``"paths"`` for
        meta paths only (MP).
    budget:
        Query budget b (active methods only).
    strategy:
        ``"conflict"``, ``"random"`` or ``"margin"`` (active only).
    batch_size:
        Labels per query round k (active only).
    svm_C:
        SVM regularization (svm methods and the ``"svm"`` model
        backend).
    streamed:
        Run the fit over streamed candidate blocks instead of a
        materialized feature matrix.  Valid for every kind — active and
        iterative fits stream through the model-backend seam, and the
        SVM baselines gather only their labeled training rows.  Results
        match the materialized path (byte-identically for SVMs and the
        single-block ridge; selected query sets always agree).
    stream_block_size:
        Candidate block size of the streamed fit path; ``"auto"`` tunes
        it from a measured probe extraction.
    model:
        Model backend of the internal fit step for ``active`` and
        ``iterative`` methods: ``"ridge"`` (the paper, default),
        ``"svm"`` (supervised SVM refits inside the query loop) or
        ``"svm-pu"`` (the biased positive-unlabeled SVM: every
        candidate row trains as a weighted soft negative at
        ``unlabeled_C``, through the working-set streamed solver).
        Meaningless for ``kind="svm"`` — that *is* the SVM baseline.
    unlabeled_C:
        Box constraint of unlabeled rows under ``model="svm-pu"``
        (ignored otherwise).
    feature_map:
        Optional kernel feature map name (``"nystroem"``, ``"fourier"``,
        ``"poly"``, ``"linear"``) composed into the fit; streamed
        methods fit the map from the block stream (Nyström landmarks
        from a streamed reservoir sample).
    """

    name: str
    kind: str
    features: str = "full"
    budget: int = 0
    strategy: str = "conflict"
    batch_size: int = 5
    svm_C: float = 1.0
    streamed: bool = False
    stream_block_size: object = 2048
    model: str = "ridge"
    unlabeled_C: float = 0.1
    feature_map: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("active", "iterative", "svm"):
            raise ExperimentError(f"unknown method kind {self.kind!r}")
        if self.features not in ("full", "paths"):
            raise ExperimentError(f"unknown feature set {self.features!r}")
        if self.kind == "active" and self.budget < 1:
            raise ExperimentError("active methods need budget >= 1")
        if self.strategy not in _STRATEGIES:
            raise ExperimentError(f"unknown strategy {self.strategy!r}")
        if self.model not in BACKEND_NAMES:
            raise ExperimentError(
                f"unknown model backend {self.model!r}; "
                f"choose from {BACKEND_NAMES}"
            )
        if self.kind == "svm" and self.model != "ridge":
            raise ExperimentError(
                "model= selects the alternating-loop backend of active/"
                "iterative methods; kind='svm' already is the SVM baseline"
            )
        if self.feature_map is not None and (
            self.feature_map not in FEATURE_MAP_NAMES
        ):
            raise ExperimentError(
                f"unknown feature map {self.feature_map!r}; "
                f"choose from {FEATURE_MAP_NAMES}"
            )
        if self.streamed and self.features != "full":
            raise ExperimentError(
                "streamed fits extract the full feature family; "
                "features='paths' needs the materialized column subset"
            )
        if self.stream_block_size != AUTO_BLOCK_SIZE and (
            not isinstance(self.stream_block_size, int)
            or self.stream_block_size < 1
        ):
            raise ExperimentError(
                f"stream_block_size must be >= 1 or {AUTO_BLOCK_SIZE!r}"
            )


def standard_methods(
    budgets: Sequence[int] = (100, 50), random_budget: int = 50
) -> List[MethodSpec]:
    """The paper's Table III/IV lineup."""
    methods = [
        MethodSpec(name=f"ActiveIter-{b}", kind="active", budget=b)
        for b in budgets
    ]
    methods.append(
        MethodSpec(
            name=f"ActiveIter-Rand-{random_budget}",
            kind="active",
            budget=random_budget,
            strategy="random",
        )
    )
    methods.extend(
        [
            MethodSpec(name="Iter-MPMD", kind="iterative"),
            MethodSpec(name="SVM-MPMD", kind="svm"),
            MethodSpec(name="SVM-MP", kind="svm", features="paths"),
        ]
    )
    return methods


@dataclass
class MethodResult:
    """Aggregated metrics of one method across fold rotations."""

    name: str
    reports: List[ClassificationReport] = field(default_factory=list)
    runtimes: List[float] = field(default_factory=list)

    def mean(self, metric: str) -> float:
        """Mean of a metric across rotations."""
        return float(np.mean([r.as_dict()[metric] for r in self.reports]))

    def std(self, metric: str) -> float:
        """Standard deviation of a metric across rotations."""
        return float(np.std([r.as_dict()[metric] for r in self.reports]))

    @property
    def mean_runtime(self) -> float:
        """Mean wall-clock fit time (seconds)."""
        return float(np.mean(self.runtimes)) if self.runtimes else 0.0

    def summary(self) -> Dict[str, Tuple[float, float]]:
        """metric -> (mean, std) map."""
        return {
            metric: (self.mean(metric), self.std(metric))
            for metric in ("f1", "precision", "recall", "accuracy")
        }


@dataclass
class RuntimeMetadata:
    """Engine/runtime facts of one experiment run.

    Recorded on the outcome (and serialized by
    :mod:`repro.eval.persistence`) so archived results say *how* they
    were produced, not just what they measured.

    Attributes
    ----------
    workers:
        Parallelism degree of the shared session's executor.
    executor:
        Executor backend (``"serial"``, ``"thread"``, ``"process"`` or
        ``"rpc"``).
    store_dir:
        Directory of the disk-backed matrix store, or ``None`` for an
        in-memory run.
    peak_rss_bytes:
        Peak resident set size of the process at the end of the run
        (``0`` where the platform cannot report it).
    full_recounts:
        Structure count matrices the shared session evaluated from
        scratch over the whole run (initial evaluations included).
    fallback_invalidations:
        Updates that dropped a materialized structure because the
        sparse delta path could not serve them — the session's silent
        slow path, surfaced into outcome JSON (see
        :class:`~repro.engine.session.SessionStats`).
    removal_updates:
        Network events that shrank something (removed nodes/edges,
        detached cells, dropped known anchors) served through the
        removal delta path.
    compactions:
        Tombstone compactions the shared session performed during the
        run.
    rpc_jobs_shipped:
        Work units dispatched to remote workers when the run executed
        on an :class:`~repro.store.rpc.RPCExecutor` (0 otherwise, as
        for all ``rpc_*`` counters).
    rpc_bytes_synced:
        Arena bytes shipped over the content-addressed transport; a
        steady-state loop over an unchanged arena re-ships nothing.
    rpc_cache_hits:
        Arena blobs a worker already held (content digest matched) and
        therefore never crossed the wire.
    rpc_retries:
        Jobs re-queued after a worker died or timed out mid-flight.
    rpc_stragglers:
        Duplicate dispatches of the slowest in-flight tail.
    rpc_bytes_shipped:
        Total job/function envelope bytes written to workers (the
        protocol v3 dispatch side of the wire, distinct from the arena
        sync bytes above).
    rpc_jobs_batched:
        Jobs that rode a multi-job frame (protocol v3 batching); 0
        means every job paid its own round trip.
    rpc_fn_cache_hits:
        Job frames that referenced a function already registered on
        the worker by content digest instead of re-shipping its
        pickle (protocol v3 one-shot function shipping).
    metrics:
        The full ``repro.obs`` registry snapshot at the end of the run
        (session counters, executor ``rpc.*`` counters, phase-timing
        histograms), as returned by
        :meth:`~repro.engine.session.AlignmentSession.metrics_snapshot`.
        The flat counters above are a legacy subset kept for older
        readers; this carries everything (persistence format 6).
    """

    workers: int = 1
    executor: str = "serial"
    store_dir: Optional[str] = None
    peak_rss_bytes: int = 0
    full_recounts: int = 0
    fallback_invalidations: int = 0
    removal_updates: int = 0
    compactions: int = 0
    rpc_jobs_shipped: int = 0
    rpc_bytes_synced: int = 0
    rpc_cache_hits: int = 0
    rpc_retries: int = 0
    rpc_stragglers: int = 0
    rpc_bytes_shipped: int = 0
    rpc_jobs_batched: int = 0
    rpc_fn_cache_hits: int = 0
    metrics: Optional[Dict] = None


@dataclass
class ExperimentOutcome:
    """All method results of one experiment configuration."""

    config: ProtocolConfig
    methods: Dict[str, MethodResult]
    runtime: Optional[RuntimeMetadata] = None

    def method(self, name: str) -> MethodResult:
        """Result of one method by name."""
        try:
            return self.methods[name]
        except KeyError:
            raise ExperimentError(f"no results for method {name!r}") from None


def _paths_feature_columns(family, include_bias: bool = True) -> List[int]:
    """Column indices of the meta-path features inside the full matrix."""
    names = family.feature_names
    columns = [i for i, name in enumerate(names) if name in
               {p.name for p in family.paths}]
    if include_bias:
        columns.append(len(names))  # trailing bias column
    return columns


def _build_model(spec: MethodSpec, split: ExperimentSplit, seed: int) -> AlignmentModel:
    """Instantiate the model described by ``spec`` for one split."""
    if spec.kind == "svm":
        return SVMAligner(
            C=spec.svm_C, seed=seed, feature_map=spec.feature_map
        )
    backend = None
    if spec.model != "ridge" or spec.feature_map is not None:
        backend = make_backend(
            spec.model,
            svm_C=spec.svm_C,
            seed=seed,
            feature_map=spec.feature_map,
            unlabeled_C=spec.unlabeled_C,
        )
    # SVM decision scores live on the signed-margin scale; the greedy
    # selector's positive threshold moves to the decision boundary.
    positive_threshold = 0.0 if spec.model.startswith("svm") else 0.5
    if spec.kind == "iterative":
        return IterMPMD(backend=backend, positive_threshold=positive_threshold)
    positives = {
        split.candidates[i]
        for i in range(len(split.candidates))
        if split.truth[i] == 1
    }
    oracle = LabelOracle(positives, budget=spec.budget)
    if spec.strategy == "random":
        strategy = RandomQueryStrategy(seed=seed)
    else:
        strategy = _STRATEGIES[spec.strategy]()
    return ActiveIter(
        oracle=oracle,
        strategy=strategy,
        batch_size=spec.batch_size,
        backend=backend,
        positive_threshold=positive_threshold,
    )


def run_split(
    pair: AlignedPair,
    split: ExperimentSplit,
    methods: Sequence[MethodSpec],
    seed: int = 0,
    session: Optional[AlignmentSession] = None,
) -> Dict[str, Tuple[ClassificationReport, float]]:
    """Run every method on one split; returns name -> (report, runtime).

    ``session`` lets callers (notably :func:`run_experiment`) share one
    alignment session across splits; it is re-anchored to the split's
    training positives, reusing every anchor-independent cached count.
    """
    if session is None:
        session = AlignmentSession(
            pair,
            family=standard_diagram_family(),
            known_anchors=split.train_positive_pairs,
        )
    else:
        session.set_anchors(split.train_positive_pairs)
    family = session.family
    # Streamed methods never need the materialized |H| x d matrix; only
    # extract it when some method in the lineup actually fits on it.
    X_full: Optional[np.ndarray] = None
    X_paths: Optional[np.ndarray] = None
    if any(not spec.streamed for spec in methods):
        X_full = session.extract(list(split.candidates))
        path_columns = _paths_feature_columns(family)
        X_paths = X_full[:, path_columns]

    results: Dict[str, Tuple[ClassificationReport, float]] = {}
    for spec in methods:
        if spec.streamed:
            # Every kind rides the block stream: active/iterative fits
            # go through the model-backend seam, SVM baselines gather
            # only their labeled rows — no |H| x d matrix either way.
            task = StreamedAlignmentTask.from_pairs(
                session,
                list(split.candidates),
                split.train_indices,
                split.truth[split.train_indices],
                block_size=spec.stream_block_size,
            )
        else:
            X = X_paths if spec.features == "paths" else X_full
            task = AlignmentTask(
                pairs=list(split.candidates),
                X=X.copy(),
                labeled_indices=split.train_indices,
                labeled_values=split.truth[split.train_indices],
            )
        model = _build_model(spec, split, seed)
        started = time.perf_counter()
        model.fit(task)
        runtime = time.perf_counter() - started
        logger.debug(
            "fold %d: %s fitted in %.3fs", split.fold, spec.name, runtime
        )

        queried_pairs = {pair_ for pair_, _ in model.queried_}
        test_indices = np.array(
            [
                i
                for i in split.test_indices
                if split.candidates[i] not in queried_pairs
            ],
            dtype=np.int64,
        )
        report = classification_report(
            split.truth[test_indices], model.labels_[test_indices]
        )
        results[spec.name] = (report, runtime)
    return results


@dataclass
class EvolvePhase:
    """Method metrics at one point of an evolving-network run."""

    name: str
    n_left_users: int
    n_right_users: int
    reports: Dict[str, ClassificationReport]


@dataclass
class EvolveOutcome:
    """Result of the evolving-network scenario.

    One session lives through a scripted schedule of network deltas; its
    sparse delta path races a full-recount baseline over the identical
    drift.  ``identical_features`` records the generalized delta
    algebra's exactness guarantee — both paths must land on
    byte-identical feature matrices over the grown network.
    """

    n_events: int
    n_candidates: int
    delta_seconds: float
    recount_seconds: float
    identical_features: bool
    phases: List[EvolvePhase]
    delta_stats: SessionStats
    recount_stats: SessionStats

    @property
    def speedup(self) -> float:
        """Full-recount refresh time over delta-path refresh time."""
        if self.delta_seconds <= 0:
            return float("inf")
        return self.recount_seconds / self.delta_seconds


def run_evolve_scenario(
    make_pair: Callable[[], AlignedPair],
    config: ProtocolConfig,
    schedule: Sequence[NetworkDelta],
    methods: Optional[Sequence[MethodSpec]] = None,
    seed: int = 0,
    evaluate_every_event: bool = False,
    session_options: Optional[Dict] = None,
) -> EvolveOutcome:
    """Serve an evolving network: drift, refresh, re-fit, compare.

    ``make_pair`` must build the base pair deterministically — it is
    called twice so the delta path and the full-recount baseline each
    grow their own copy through the identical ``schedule``.  The method
    lineup (default: Iter-MPMD only) is evaluated on the first protocol
    split before and after the drift, re-using the evolving session's
    counts both times; the timing race measures only the
    feature-maintenance work the two paths do per event.

    With ``evaluate_every_event=True`` the lineup is additionally
    re-evaluated after *each* scheduled delta — the drifting method
    sweep (see :func:`repro.eval.sweeps.run_evolve_sweep`), one phase
    per event.  Method evaluation time is excluded from the timing race
    either way.

    ``session_options`` (e.g. ``{"compact_every": 8}`` or
    ``{"strict_deltas": True}``) are forwarded to **both** sessions, so
    the delta path and the recount baseline race under identical
    session policy.
    """
    if methods is None:
        methods = [MethodSpec(name="Iter-MPMD", kind="iterative")]
    pair = make_pair()
    split = next(iter(build_splits(pair, config)))
    candidates = list(split.candidates)

    def serve(incremental: bool):
        own_pair = pair if incremental else make_pair()
        session = AlignmentSession(
            own_pair,
            family=standard_diagram_family(),
            known_anchors=split.train_positive_pairs,
            incremental=incremental,
            **(session_options or {}),
        )
        X = session.extract(candidates)
        phases: List[EvolvePhase] = []
        if incremental:
            phases.append(
                _evolve_phase("initial", own_pair, split, methods, session, seed)
            )
        elapsed = 0.0
        for event_index, delta in enumerate(schedule, start=1):
            started = time.perf_counter()
            session.apply_network_delta(delta)
            if incremental:
                session.refresh_features(X, candidates)
            else:
                X = session.extract(candidates)
            elapsed += time.perf_counter() - started
            if incremental and evaluate_every_event:
                phases.append(
                    _evolve_phase(
                        f"event {event_index}",
                        own_pair,
                        split,
                        methods,
                        session,
                        seed,
                    )
                )
        if incremental:
            phases.append(
                _evolve_phase("evolved", own_pair, split, methods, session, seed)
            )
        return session, X, elapsed, phases

    delta_session, X_delta, delta_seconds, phases = serve(incremental=True)
    recount_session, X_recount, recount_seconds, _ = serve(incremental=False)
    return EvolveOutcome(
        n_events=len(schedule),
        n_candidates=len(candidates),
        delta_seconds=delta_seconds,
        recount_seconds=recount_seconds,
        identical_features=bool(np.array_equal(X_delta, X_recount)),
        phases=phases,
        delta_stats=delta_session.stats,
        recount_stats=recount_session.stats,
    )


def _evolve_phase(
    name: str,
    pair: AlignedPair,
    split: ExperimentSplit,
    methods: Sequence[MethodSpec],
    session: AlignmentSession,
    seed: int,
) -> EvolvePhase:
    """Run the method lineup once against the session's current state."""
    results = run_split(pair, split, methods, seed=seed, session=session)
    return EvolvePhase(
        name=name,
        n_left_users=len(pair.left_users()),
        n_right_users=len(pair.right_users()),
        reports={name_: report for name_, (report, _) in results.items()},
    )


def format_evolve_outcome(outcome: EvolveOutcome) -> str:
    """Plain-text rendering of the evolving-network scenario."""
    lines = [
        (
            f"Evolving-network scenario ({outcome.n_events} delta events, "
            f"|H|={outcome.n_candidates})"
        ),
        f"{'path':<14}{'seconds':>10}  session stats",
        (
            f"{'delta':<14}{outcome.delta_seconds:>10.4f}  "
            f"{outcome.delta_stats.summary()}"
        ),
        (
            f"{'full recount':<14}{outcome.recount_seconds:>10.4f}  "
            f"{outcome.recount_stats.summary()}"
        ),
        (
            f"speedup: {outcome.speedup:.2f}x; features identical: "
            f"{outcome.identical_features}"
        ),
    ]
    for phase in outcome.phases:
        lines.append(
            f"phase {phase.name!r} "
            f"(|U1|={phase.n_left_users}, |U2|={phase.n_right_users}):"
        )
        for method, report in phase.reports.items():
            lines.append(
                f"  {method:<18} f1={report.f1:.3f} "
                f"precision={report.precision:.3f} "
                f"recall={report.recall:.3f} "
                f"accuracy={report.accuracy:.3f}"
            )
    return "\n".join(lines)


def run_experiment(
    pair: AlignedPair,
    config: ProtocolConfig,
    methods: Optional[Sequence[MethodSpec]] = None,
    workers=None,
    store=None,
) -> ExperimentOutcome:
    """Run the full protocol: all fold rotations, all methods.

    ``workers`` is the engine execution-layer knob (see
    :class:`~repro.engine.session.AlignmentSession`): the shared
    session's per-structure counting, delta updates and extraction fan
    out across a thread pool, with bit-identical results.  ``store``
    (a directory path or shared arena) spills the session's count
    matrices to disk and serves them memory-mapped.  Both knobs are
    recorded in :attr:`ExperimentOutcome.runtime`, and the session —
    including any pool it built — is always released on exit.
    """
    from repro.store.memory import peak_rss_bytes

    if methods is None:
        methods = standard_methods()
    outcome = ExperimentOutcome(
        config=config,
        methods={spec.name: MethodResult(name=spec.name) for spec in methods},
    )
    with AlignmentSession(
        pair, family=standard_diagram_family(), workers=workers, store=store
    ) as session:
        for split in build_splits(pair, config):
            per_method = run_split(
                pair,
                split,
                methods,
                seed=config.seed + split.fold,
                session=session,
            )
            for name, (report, runtime) in per_method.items():
                outcome.methods[name].reports.append(report)
                outcome.methods[name].runtimes.append(runtime)
        rpc = getattr(session.executor, "metrics", None)
        outcome.runtime = RuntimeMetadata(
            workers=session.workers,
            executor=session.executor.kind,
            store_dir=(
                str(session.store_dir)
                if session.store_dir is not None
                else None
            ),
            peak_rss_bytes=peak_rss_bytes(),
            full_recounts=session.stats.full_recounts,
            fallback_invalidations=session.stats.fallback_invalidations,
            removal_updates=session.stats.removal_updates,
            compactions=session.stats.compactions,
            rpc_jobs_shipped=getattr(rpc, "jobs_shipped", 0),
            rpc_bytes_synced=getattr(rpc, "bytes_synced", 0),
            rpc_cache_hits=getattr(rpc, "sync_cache_hits", 0),
            rpc_retries=getattr(rpc, "retries", 0),
            rpc_stragglers=getattr(rpc, "stragglers_redispatched", 0),
            rpc_bytes_shipped=getattr(rpc, "bytes_shipped", 0),
            rpc_jobs_batched=getattr(rpc, "jobs_batched", 0),
            rpc_fn_cache_hits=getattr(rpc, "fn_cache_hits", 0),
            metrics=session.metrics_snapshot(),
        )
    logger.info(
        "experiment complete: %d method(s) x %d fold repeat(s), "
        "executor=%s peak_rss=%d",
        len(outcome.methods),
        config.n_repeats,
        outcome.runtime.executor,
        outcome.runtime.peak_rss_bytes,
    )
    return outcome
