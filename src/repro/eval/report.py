"""Paper-style table rendering for experiment outcomes.

Tables III/IV print one block per metric, one row per method and one
column per sweep value, each cell ``mean±std`` — the same layout the
paper uses, so side-by-side comparison with the published numbers is
mechanical.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.eval.experiment import ExperimentOutcome

_METRICS = ("f1", "precision", "recall", "accuracy")


def format_cell(mean: float, std: float) -> str:
    """Render one ``mean±std`` cell, paper-style."""
    return f"{mean:.3f}±{std:.2f}"


def format_sweep_table(
    title: str,
    sweep_label: str,
    sweep_values: Sequence,
    outcomes: Dict[object, ExperimentOutcome],
    metrics: Sequence[str] = _METRICS,
) -> str:
    """Render a Table III/IV style sweep.

    Parameters
    ----------
    title:
        Table caption.
    sweep_label:
        Name of the swept parameter (column header).
    sweep_values:
        Ordered sweep values; each must be a key of ``outcomes``.
    outcomes:
        sweep value -> :class:`ExperimentOutcome`.
    metrics:
        Metrics to print (defaults to the paper's four).
    """
    method_names: List[str] = []
    for value in sweep_values:
        for name in outcomes[value].methods:
            if name not in method_names:
                method_names.append(name)

    method_width = max(len(name) for name in method_names) + 2
    cell_width = 12
    lines = [title, "=" * len(title)]
    header = f"{sweep_label:<{method_width}}" + "".join(
        f"{str(value):>{cell_width}}" for value in sweep_values
    )
    for metric in metrics:
        lines.append("")
        lines.append(f"[{metric.upper()}]")
        lines.append(header)
        lines.append("-" * len(header))
        for name in method_names:
            cells = []
            for value in sweep_values:
                result = outcomes[value].methods.get(name)
                if result is None or not result.reports:
                    cells.append("-")
                else:
                    cells.append(format_cell(result.mean(metric), result.std(metric)))
            lines.append(
                f"{name:<{method_width}}"
                + "".join(f"{cell:>{cell_width}}" for cell in cells)
            )
    return "\n".join(lines)


def format_single_outcome(title: str, outcome: ExperimentOutcome) -> str:
    """Render one configuration's outcome as a compact table."""
    method_names = list(outcome.methods)
    method_width = max(len(name) for name in method_names) + 2
    lines = [title, "=" * len(title)]
    header = f"{'method':<{method_width}}" + "".join(
        f"{metric:>12}" for metric in _METRICS
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in method_names:
        result = outcome.methods[name]
        cells = [
            format_cell(result.mean(metric), result.std(metric))
            for metric in _METRICS
        ]
        lines.append(
            f"{name:<{method_width}}" + "".join(f"{cell:>12}" for cell in cells)
        )
    return "\n".join(lines)
