"""ASCII plotting for the paper's figures.

Terminal-friendly line charts so ``python -m repro.cli fig3|fig4|fig5``
can render *figure-shaped* output, not just tables.  Pure text — no
plotting dependency exists in this environment.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ExperimentError

#: Marker characters cycled across series.
_MARKERS = "ox+*#@%&"


def ascii_line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series as an ASCII chart with a legend.

    Points are plotted on a shared axis range; later series overwrite
    earlier ones on collisions (collisions render the later marker).
    """
    if not series:
        raise ExperimentError("no series to plot")
    points = [p for values in series.values() for p in values]
    if not points:
        raise ExperimentError("series contain no points")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in values:
            column = int(round((x - x_min) / x_span * (width - 1)))
            row = height - 1 - int(round((y - y_min) / y_span * (height - 1)))
            grid[row][column] = marker

    lines: List[str] = []
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{x_min:.3g}".ljust(width - 8) + f"{x_max:.3g}".rjust(8)
    lines.append(" " * (gutter + 1) + x_axis)
    lines.append(" " * (gutter + 1) + f"({x_label} -> ; {y_label} ^)")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (gutter + 1) + legend)
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend rendering (used for convergence traces)."""
    if not values:
        raise ExperimentError("no values to render")
    blocks = " ▁▂▃▄▅▆▇█"
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    return "".join(
        blocks[int((value - low) / span * (len(blocks) - 1))] for value in values
    )
