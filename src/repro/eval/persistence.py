"""JSON persistence of experiment outcomes.

Long sweeps are expensive; this module serializes
:class:`~repro.eval.experiment.ExperimentOutcome` objects (per-fold
reports and runtimes, not just aggregates) so results can be archived,
diffed across runs and re-rendered into tables without recomputation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.eval.experiment import ExperimentOutcome, MethodResult
from repro.eval.protocol import ProtocolConfig
from repro.exceptions import ExperimentError
from repro.ml.metrics import ClassificationReport

_FORMAT_VERSION = 1


def outcome_to_dict(outcome: ExperimentOutcome) -> Dict:
    """Serialize an outcome (full per-fold detail) to a plain dict."""
    return {
        "format_version": _FORMAT_VERSION,
        "config": {
            "np_ratio": outcome.config.np_ratio,
            "sample_ratio": outcome.config.sample_ratio,
            "n_folds": outcome.config.n_folds,
            "n_repeats": outcome.config.n_repeats,
            "seed": outcome.config.seed,
        },
        "methods": {
            name: {
                "reports": [report.as_dict() for report in result.reports],
                "runtimes": list(result.runtimes),
            }
            for name, result in outcome.methods.items()
        },
    }


def outcome_from_dict(payload: Dict) -> ExperimentOutcome:
    """Inverse of :func:`outcome_to_dict`."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ExperimentError(
            f"unsupported outcome format version {version!r}"
        )
    config = ProtocolConfig(**payload["config"])
    methods: Dict[str, MethodResult] = {}
    for name, data in payload["methods"].items():
        result = MethodResult(name=name)
        result.reports = [
            ClassificationReport(**report) for report in data["reports"]
        ]
        result.runtimes = list(data["runtimes"])
        methods[name] = result
    return ExperimentOutcome(config=config, methods=methods)


def save_outcome(outcome: ExperimentOutcome, path: Union[str, Path]) -> None:
    """Write an outcome to a JSON file."""
    Path(path).write_text(json.dumps(outcome_to_dict(outcome), indent=2))


def load_outcome(path: Union[str, Path]) -> ExperimentOutcome:
    """Read an outcome from a JSON file."""
    return outcome_from_dict(json.loads(Path(path).read_text()))
