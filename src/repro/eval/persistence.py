"""JSON persistence of experiment outcomes.

Long sweeps are expensive; this module serializes
:class:`~repro.eval.experiment.ExperimentOutcome` objects (per-fold
reports and runtimes, not just aggregates) so results can be archived,
diffed across runs and re-rendered into tables without recomputation.

Format history:

* **1** — config + per-method reports/runtimes;
* **2** — adds the optional ``runtime`` block
  (:class:`~repro.eval.experiment.RuntimeMetadata`: executor kind,
  workers, store directory, peak RSS).  Version-1 files load fine —
  their outcomes simply carry no runtime metadata.
* **3** — the runtime block gains the session's full-recount counters
  (``full_recounts``, ``fallback_invalidations``), so archived results
  show when a run silently fell off the sparse delta path.  Version-1
  and -2 files load fine — the new counters default to zero.
* **4** — the runtime block gains the churn counters
  (``removal_updates``, ``compactions``) of the event-sourced removal/
  compaction path.  Older files load fine — the counters default to
  zero.
* **5** — the runtime block gains the RPC transport counters
  (``rpc_jobs_shipped``, ``rpc_bytes_synced``, ``rpc_cache_hits``,
  ``rpc_retries``, ``rpc_stragglers``), so archived multi-host runs
  show how much the content-addressed arena transport shipped versus
  served from worker caches.  Older files load fine — the counters
  default to zero.
* **6** — the runtime block carries the full ``repro.obs`` metrics
  registry snapshot (``metrics``: every named counter/gauge/histogram
  of the session and its executor), superseding the hand-picked
  counter subset above — which remains populated for compatibility.
  Older files load fine — their ``metrics`` is ``None``.
* **7** — the runtime block gains the protocol v3 dispatch counters
  (``rpc_bytes_shipped``, ``rpc_jobs_batched``, ``rpc_fn_cache_hits``),
  so archived runs show how much the pipelined/batched/one-shot-fn
  dispatch path saved over re-shipping everything per job.  Older
  files load fine — the counters default to zero.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Union

from repro.eval.experiment import (
    ExperimentOutcome,
    MethodResult,
    RuntimeMetadata,
)
from repro.eval.protocol import ProtocolConfig
from repro.exceptions import ExperimentError
from repro.ml.metrics import ClassificationReport

_FORMAT_VERSION = 7

#: Versions :func:`outcome_from_dict` can read.
_READABLE_VERSIONS = (1, 2, 3, 4, 5, 6, 7)


def outcome_to_dict(outcome: ExperimentOutcome) -> Dict:
    """Serialize an outcome (full per-fold detail) to a plain dict."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "config": {
            "np_ratio": outcome.config.np_ratio,
            "sample_ratio": outcome.config.sample_ratio,
            "n_folds": outcome.config.n_folds,
            "n_repeats": outcome.config.n_repeats,
            "seed": outcome.config.seed,
        },
        "methods": {
            name: {
                "reports": [report.as_dict() for report in result.reports],
                "runtimes": list(result.runtimes),
            }
            for name, result in outcome.methods.items()
        },
    }
    if outcome.runtime is not None:
        payload["runtime"] = asdict(outcome.runtime)
    return payload


def outcome_from_dict(payload: Dict) -> ExperimentOutcome:
    """Inverse of :func:`outcome_to_dict` (reads every format in
    ``_READABLE_VERSIONS``)."""
    version = payload.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise ExperimentError(
            f"unsupported outcome format version {version!r}"
        )
    config = ProtocolConfig(**payload["config"])
    methods: Dict[str, MethodResult] = {}
    for name, data in payload["methods"].items():
        result = MethodResult(name=name)
        result.reports = [
            ClassificationReport(**report) for report in data["reports"]
        ]
        result.runtimes = list(data["runtimes"])
        methods[name] = result
    runtime = None
    if payload.get("runtime") is not None:
        runtime = RuntimeMetadata(**payload["runtime"])
    return ExperimentOutcome(config=config, methods=methods, runtime=runtime)


def save_outcome(outcome: ExperimentOutcome, path: Union[str, Path]) -> None:
    """Write an outcome to a JSON file."""
    Path(path).write_text(json.dumps(outcome_to_dict(outcome), indent=2))


def load_outcome(path: Union[str, Path]) -> ExperimentOutcome:
    """Read an outcome from a JSON file."""
    return outcome_from_dict(json.loads(Path(path).read_text()))
