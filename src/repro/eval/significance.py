"""Statistical significance of method comparisons.

The paper reports mean±std over 10 fold rotations but no significance
tests; with few rotations, eyeballing overlapping error bars misleads.
This module adds two standard paired analyses over per-fold reports:

* a **paired t-test** on per-fold metric differences (scipy);
* a **bootstrap confidence interval** of the mean difference, which
  stays valid for the small, non-normal samples fold rotations produce.

Both operate on :class:`~repro.eval.experiment.ExperimentOutcome`, so
any already-persisted outcome can be re-analyzed without recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import stats

from repro.eval.experiment import ExperimentOutcome
from repro.exceptions import ExperimentError


@dataclass(frozen=True)
class PairedComparison:
    """Result of comparing two methods on one metric.

    Attributes
    ----------
    method_a, method_b:
        The compared method names (differences are a − b).
    metric:
        Metric name.
    mean_difference:
        Mean per-fold difference.
    t_statistic, p_value:
        Paired t-test outcome (``nan`` when fewer than two folds).
    ci_low, ci_high:
        Bootstrap CI bounds of the mean difference.
    n_folds:
        Number of paired observations.
    """

    method_a: str
    method_b: str
    metric: str
    mean_difference: float
    t_statistic: float
    p_value: float
    ci_low: float
    ci_high: float
    n_folds: int

    @property
    def significant(self) -> bool:
        """Whether the bootstrap CI excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0

    def describe(self) -> str:
        """One-line human summary."""
        verdict = (
            f"{self.method_a} better"
            if self.mean_difference > 0
            else f"{self.method_b} better"
        )
        strength = "significant" if self.significant else "not significant"
        return (
            f"{self.metric}: {self.method_a} - {self.method_b} = "
            f"{self.mean_difference:+.4f} "
            f"[{self.ci_low:+.4f}, {self.ci_high:+.4f}] "
            f"(p={self.p_value:.3f}; {verdict}, {strength})"
        )


def _paired_metric_values(
    outcome: ExperimentOutcome, method_a: str, method_b: str, metric: str
) -> Tuple[np.ndarray, np.ndarray]:
    result_a = outcome.method(method_a)
    result_b = outcome.method(method_b)
    if len(result_a.reports) != len(result_b.reports):
        raise ExperimentError(
            f"methods ran different fold counts: "
            f"{len(result_a.reports)} vs {len(result_b.reports)}"
        )
    if not result_a.reports:
        raise ExperimentError("no fold reports to compare")
    values_a = np.array([r.as_dict()[metric] for r in result_a.reports])
    values_b = np.array([r.as_dict()[metric] for r in result_b.reports])
    return values_a, values_b


def bootstrap_mean_ci(
    differences: np.ndarray,
    n_resamples: int = 10_000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile bootstrap CI for the mean of ``differences``."""
    differences = np.asarray(differences, dtype=np.float64).ravel()
    if differences.size == 0:
        raise ExperimentError("cannot bootstrap zero observations")
    if not 0.0 < confidence < 1.0:
        raise ExperimentError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    samples = rng.choice(
        differences, size=(n_resamples, differences.size), replace=True
    )
    means = samples.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def compare_methods(
    outcome: ExperimentOutcome,
    method_a: str,
    method_b: str,
    metric: str = "f1",
    confidence: float = 0.95,
    seed: int = 0,
) -> PairedComparison:
    """Paired comparison of two methods on one metric."""
    values_a, values_b = _paired_metric_values(outcome, method_a, method_b, metric)
    differences = values_a - values_b
    if differences.size >= 2 and np.ptp(differences) > 0:
        t_statistic, p_value = stats.ttest_rel(values_a, values_b)
    else:
        t_statistic, p_value = float("nan"), float("nan")
    ci_low, ci_high = bootstrap_mean_ci(
        differences, confidence=confidence, seed=seed
    )
    return PairedComparison(
        method_a=method_a,
        method_b=method_b,
        metric=metric,
        mean_difference=float(differences.mean()),
        t_statistic=float(t_statistic),
        p_value=float(p_value),
        ci_low=ci_low,
        ci_high=ci_high,
        n_folds=int(differences.size),
    )


def comparison_table(
    outcome: ExperimentOutcome, baseline: str, metric: str = "f1"
) -> str:
    """Compare every method against a baseline; render as text."""
    lines = [f"Paired comparisons vs {baseline!r} on {metric}"]
    for name in outcome.methods:
        if name == baseline:
            continue
        comparison = compare_methods(outcome, name, baseline, metric=metric)
        lines.append("  " + comparison.describe())
    return "\n".join(lines)
