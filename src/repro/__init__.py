"""repro — reproduction of "Meta Diagram based Active Social Networks
Alignment" (Ren, Aggarwal, Zhang; ICDE 2019).

Public API tour:

* :mod:`repro.networks` — attributed heterogeneous social networks,
  aligned pairs, anchors, schemas, I/O.
* :mod:`repro.synth` / :mod:`repro.datasets` — synthetic aligned network
  generation (the documented stand-in for the paper's crawl).
* :mod:`repro.meta` — inter-network meta paths/diagrams, counting,
  proximities and link feature extraction.
* :mod:`repro.engine` — the incremental alignment engine: per-pair
  :class:`~repro.engine.session.AlignmentSession` state with sparse
  delta anchor updates, plus batched candidate streaming.
* :mod:`repro.core` — the ActiveIter model, Iter-MPMD and SVM baselines,
  plus the end-to-end :class:`~repro.core.pipeline.AlignmentPipeline`.
* :mod:`repro.matching`, :mod:`repro.active`, :mod:`repro.ml` —
  supporting subsystems (one-to-one selection, oracle/strategies, ML
  primitives).
* :mod:`repro.store` — disk-backed state: the memory-mapped
  :class:`~repro.store.arena.MatrixArena`, atomic
  :class:`~repro.store.checkpoint.SessionCheckpoint` snapshots with a
  byte-identical resume path, and the picklable work units of the
  process executor.
* :mod:`repro.eval` — the paper's full experimental protocol and the
  harnesses behind every table and figure.
"""

from repro.core import (
    ActiveIter,
    AlignmentPipeline,
    AlignmentResult,
    AlignmentTask,
    IterMPMD,
    SVMAligner,
)
from repro.datasets import foursquare_twitter_like
from repro.engine import (
    AlignmentSession,
    CandidateGenerator,
    StreamedAlignmentTask,
)
from repro.meta import FeatureExtractor, standard_diagram_family
from repro.networks import (
    AlignedPair,
    HeterogeneousNetwork,
    NetworkDelta,
    SocialNetworkBuilder,
)
from repro.store import MatrixArena, SessionCheckpoint
from repro.synth import WorldConfig, generate_aligned_pair
from repro.types import Labeled

__version__ = "1.0.0"

__all__ = [
    "ActiveIter",
    "AlignedPair",
    "AlignmentPipeline",
    "AlignmentResult",
    "AlignmentSession",
    "AlignmentTask",
    "CandidateGenerator",
    "StreamedAlignmentTask",
    "FeatureExtractor",
    "HeterogeneousNetwork",
    "IterMPMD",
    "Labeled",
    "MatrixArena",
    "NetworkDelta",
    "SVMAligner",
    "SessionCheckpoint",
    "SocialNetworkBuilder",
    "WorldConfig",
    "__version__",
    "foursquare_twitter_like",
    "generate_aligned_pair",
    "standard_diagram_family",
]
