"""Label oracle with budget accounting.

Stands in for the human expert of the ANNA problem: it knows the true
label of every candidate anchor link and answers queries until the
pre-specified budget ``b`` is exhausted.  All model code must obtain
extra labels through this class, so budget enforcement is centralized
and auditable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.exceptions import BudgetExhaustedError, ReproError
from repro.types import LinkPair


class LabelOracle:
    """Answers anchor-link label queries subject to a budget.

    Parameters
    ----------
    positives:
        The ground-truth positive anchor links.  Any queried pair not in
        this set is answered ``0``.
    budget:
        Maximum number of distinct links that may be queried.  Repeat
        queries of the same link are answered from memory for free.
    """

    def __init__(self, positives: Iterable[LinkPair], budget: int) -> None:
        if budget < 0:
            raise ReproError(f"budget must be >= 0, got {budget}")
        self._positives: Set[LinkPair] = set(positives)
        self._budget = int(budget)
        self._answers: Dict[LinkPair, int] = {}

    @property
    def budget(self) -> int:
        """The total query budget ``b``."""
        return self._budget

    @property
    def spent(self) -> int:
        """Number of distinct links queried so far."""
        return len(self._answers)

    @property
    def remaining(self) -> int:
        """Queries still available."""
        return self._budget - len(self._answers)

    @property
    def queried(self) -> Set[LinkPair]:
        """The set of links queried so far (a copy)."""
        return set(self._answers)

    def query(self, pair: LinkPair) -> int:
        """Return the true label of ``pair``, charging budget if new.

        Raises
        ------
        BudgetExhaustedError
            If the pair is new and no budget remains.
        """
        if pair in self._answers:
            return self._answers[pair]
        if self.remaining <= 0:
            raise BudgetExhaustedError(
                f"label budget of {self._budget} exhausted"
            )
        label = 1 if pair in self._positives else 0
        self._answers[pair] = label
        return label

    def snapshot(self) -> Dict:
        """Picklable budget-accounting state (for checkpoint/resume).

        Captures the answered-query memory, not the ground truth: a
        restored oracle charges and answers exactly as the original
        would from the same point.
        """
        return {"budget": self._budget, "answers": dict(self._answers)}

    def restore(self, state: Dict) -> None:
        """Restore a :meth:`snapshot` (budget must match this oracle)."""
        if state["budget"] != self._budget:
            raise ReproError(
                f"checkpoint oracle budget {state['budget']} does not match "
                f"this oracle's budget {self._budget}"
            )
        self._answers = dict(state["answers"])

    def query_batch(self, pairs: Iterable[LinkPair]) -> List[Tuple[LinkPair, int]]:
        """Query several links, stopping silently when budget runs out.

        Returns the ``(pair, label)`` tuples actually answered; callers
        use the length to notice truncation.
        """
        answered: List[Tuple[LinkPair, int]] = []
        for pair in pairs:
            if pair in self._answers:
                answered.append((pair, self._answers[pair]))
                continue
            if self.remaining <= 0:
                break
            answered.append((pair, self.query(pair)))
        return answered
