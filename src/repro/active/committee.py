"""Query-by-committee strategy (active-learning extension).

Trains a committee of ridge regressors on bootstrap resamples of the
clamped labels and queries the unlabeled links the committee disagrees
on most (score variance).  A classic strategy included to ablate the
paper's conflict-based rule against a stronger generic baseline than
margin sampling; it is *not* part of the paper.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import ReproError
from repro.ml.ridge import RidgeSolver
from repro.types import LinkPair


class CommitteeQueryStrategy:
    """Bootstrap-committee disagreement sampling.

    Parameters
    ----------
    n_members:
        Committee size.
    c:
        Ridge loss weight for committee members.
    seed:
        Bootstrap seed (deterministic given the seed).

    Notes
    -----
    The strategy re-fits its committee every round from the *current*
    labels ``y`` (treating them as soft supervision, as the main model
    does), so disagreement reflects the live state of the alternating
    optimization rather than the initial training set only.
    """

    def __init__(self, n_members: int = 7, c: float = 1.0, seed: int = 0) -> None:
        if n_members < 2:
            raise ReproError("a committee needs at least 2 members")
        self.n_members = int(n_members)
        self.c = float(c)
        self.seed = int(seed)
        self._round = 0

    def select(
        self,
        pairs: Sequence[LinkPair],
        scores: np.ndarray,
        labels: np.ndarray,
        queryable: np.ndarray,
        batch_size: int,
    ) -> List[int]:
        """Pick the queryable links with the highest committee variance."""
        labels = np.asarray(labels, dtype=np.float64).ravel()
        queryable = np.asarray(queryable, dtype=bool).ravel()
        if labels.shape[0] != len(pairs) or queryable.shape[0] != len(pairs):
            raise ReproError("labels/queryable length mismatch")
        X = getattr(self, "_X", None)
        if X is None or X.shape[0] != len(pairs):
            raise ReproError(
                "CommitteeQueryStrategy.bind(X) must be called with the "
                "task's feature matrix before selection"
            )
        rng = np.random.default_rng(self.seed + self._round)
        self._round += 1
        n = len(pairs)
        member_scores = np.zeros((self.n_members, n))
        for member in range(self.n_members):
            sample = rng.integers(0, n, size=n)
            solver = RidgeSolver(X[sample], c=self.c)
            w = solver.solve(labels[sample])
            member_scores[member] = X @ w
        disagreement = member_scores.std(axis=0)
        pool = np.flatnonzero(queryable)
        ranked = sorted(pool, key=lambda index: (-disagreement[index], index))
        return [int(index) for index in ranked[:batch_size]]

    def bind(self, X: np.ndarray) -> "CommitteeQueryStrategy":
        """Attach the task's feature matrix (required before selection)."""
        self._X = np.asarray(X, dtype=np.float64)
        return self
