"""Active learning components: the label oracle and query strategies."""

from repro.active.committee import CommitteeQueryStrategy
from repro.active.oracle import LabelOracle
from repro.active.strategies import (
    ConflictFalseNegativeStrategy,
    MarginQueryStrategy,
    QueryStrategy,
    RandomQueryStrategy,
    ScoredBlock,
    StreamedQueryStrategy,
)

__all__ = [
    "CommitteeQueryStrategy",
    "ConflictFalseNegativeStrategy",
    "LabelOracle",
    "MarginQueryStrategy",
    "QueryStrategy",
    "RandomQueryStrategy",
    "ScoredBlock",
    "StreamedQueryStrategy",
]
